"""The event-driven engine — readiness-scheduled cooperative execution.

Thread-per-filter burns a thread and a 50 ms polling wakeup per chain
element; a proxy hosting hundreds of streams spends its time context
switching instead of filtering.  ``EventEngine`` multiplexes every
*cooperative* element (filters and in-process sinks) onto one scheduler
thread that pumps an element only when it is ready:

* its DIS has buffered bytes (signalled by the stream's subscriber hook —
  no polling), or has reached end-of-stream and the filter must finalize;
* it has parked output to flush (after a boundary hold is released or a
  splice reattaches its DOS);
* it has been asked to stop.

Elements that block on *external* input (socket and callback sources,
socket sinks — anything marked ``cooperative_capable = False``) still get a
dedicated thread, because a cooperative scheduler must never block.
Non-blocking sources (:class:`~repro.core.endpoints.IterableSource`) are
pumped cooperatively too, their pacing handled by the scheduler's timer
wheel — so an N-stream proxy of in-process sources runs on *one* thread
instead of N × chain-length workers.

Sockets join the same loop through a :mod:`selectors`-based idle wait: a
cooperative element that exposes ``selectable_fileno()`` (the transport
layer's UDP sources, :class:`~repro.transport.endpoints.TransportSource`)
is registered with the scheduler's selector, and when the scheduler would
otherwise sleep it waits in ``selector.select`` instead — a readable socket
drops its element straight into the dirty set.  A self-pipe wakes the
select when an in-process notification lands first, so neither signal
source can stall the other.  N UDP streams therefore cost N *file
descriptors*, not N reader threads.

Flow control is cooperative too: a pump step delivers output with the
non-blocking ``DOS.try_write``/``try_write_many`` (which may overshoot the
downstream buffer's capacity by one pump step's worth of output — up to a
``pump_budget`` of transformed chunks) and the scheduler simply stops
pumping an element while its downstream buffer sits at or above capacity —
the classic high-water-mark pattern, with no blocking and therefore no
scheduler deadlock.

Batch granularity carries end to end: one readiness wakeup drains up to a
``pump_budget`` of chunks through :meth:`Filter.transform_chunks` (which
fused packet filters turn into a single vectorised call), the chunks
themselves are bytes-like objects moved by reference (``memoryview`` splits
included — see :mod:`repro.streams.buffer`), and a transport sink flushes
the whole budget through one ``send_many``.  The scheduler's dirty-set and
wakeup costs therefore amortize over the batch at every hop.

The composition protocol is unchanged: pause/drain/reconnect splices, the
boundary-hold handshake and quiesce all work against the same Filter state
machine; the ControlThread cannot tell which engine is underneath.
"""

from __future__ import annotations

import heapq
import os
import selectors
import socket
import threading
import time
from typing import Dict, List, Optional

from ..obs.metrics import register_engine as _obs_register_engine
from .base import EngineError, ExecutionEngine

#: Fallback wakeup period for the scheduler.  Every state change that can
#: make an element ready fires a notification, so this is a liveness safety
#: net, not a polling interval.
DEFAULT_HEARTBEAT_S = 0.5


class EventEngine(ExecutionEngine):
    """Single-threaded cooperative scheduler for high-stream-count proxies."""

    name = "event"

    def __init__(self, heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        if heartbeat_s <= 0:
            raise EngineError("heartbeat_s must be positive")
        self._heartbeat_s = heartbeat_s
        self._cond = threading.Condition()
        self._elements: List = []   # cooperatively pumped elements
        # Dirty-set scheduling: stream notifications mark the element whose
        # readiness changed, so a round touches O(notified) elements, not
        # O(all) — the difference between 8 and 256 streams on one thread.
        self._dirty: set = set()
        self._scan_all = False
        # Elements whose readiness depends on *another* element's progress
        # (downstream high-water, output parked across a splice); rechecked
        # every round.  Scheduler-thread-private, no lock needed.
        self._gated: set = set()
        # Timer wheel for paced sources: a (due, seq, element) min-heap.
        # Entries are popped into the round once due, so N idle paced
        # streams cost one heap entry each, not one readiness check per
        # round.  Scheduler-thread-private.
        self._timers: List = []
        self._timer_seq = 0
        self._wake = False
        self._stopping = False
        self._scheduler: Optional[threading.Thread] = None
        # Socket readiness: created lazily with the first selectable element
        # so purely in-process proxies never pay for a selector or the
        # self-pipe.  All guarded by self._cond.
        self._selector: Optional[selectors.BaseSelector] = None
        self._selectable_fds: Dict = {}           # element -> its wake-up fd
        # Elements whose fd is temporarily off the selector: an element
        # parked for a non-fd reason (boundary hold, backpressure) with a
        # readable socket would otherwise turn every idle select() into a
        # zero-sleep spin.  Scheduler-managed, mutated under self._cond.
        self._suspended: set = set()
        self._wakeup_send: Optional[socket.socket] = None
        self._wakeup_recv: Optional[socket.socket] = None
        self._selecting = False
        # Scheduler metrics: plain ints written only by the scheduler
        # thread (GIL-atomic reads from the scrape-time collector may lag
        # an in-flight round, which dashboards tolerate by design).
        self._metric_rounds = 0
        self._metric_pumps = 0
        self._metric_timer_fires = 0
        self._metric_selector_wakeups = 0
        self._metric_scan_all_rounds = 0
        _obs_register_engine(self)

    # ------------------------------------------------------------- lifecycle

    def start_element(self, element) -> None:
        """Adopt ``element``: pump cooperatively, or thread if it blocks."""
        if getattr(element, "cooperative_capable", True):
            with self._cond:
                # Refuse before binding: a half-bound element could never be
                # started on another engine (bind marks it started).
                if self._stopping:
                    raise EngineError(
                        f"engine {self.name!r} has been shut down")
                element.bind_engine(self)
                self._elements.append(element)
                self._dirty.add(element)
                self._register_selectable(element)
                self._ensure_scheduler()
                self._wake = True
                self._wake_selector()
                self._cond.notify_all()
        else:
            with self._cond:
                if self._stopping:
                    raise EngineError(
                        f"engine {self.name!r} has been shut down")
            # Blocking-I/O elements keep their dedicated thread; subscribe
            # their DIS so a threaded sink draining its buffer re-wakes any
            # upstream cooperative element gated on the high-water mark.
            # A recheck-wake suffices — gated elements are candidates every
            # round — so this stays O(gated), not a full rescan per chunk.
            element.dis.subscribe(self._notify_recheck)
            element.start()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the scheduler thread and close the selector (idempotent)."""
        with self._cond:
            self._stopping = True
            self._wake = True
            self._wake_selector()
            self._cond.notify_all()
            scheduler = self._scheduler
        if scheduler is not None:
            scheduler.join(timeout=timeout)
        self._close_selector()

    def notify_element(self, element) -> None:
        """Wake the scheduler to re-evaluate one element (thread-safe)."""
        with self._cond:
            self._dirty.add(element)
            self._wake = True
            self._wake_selector()
            self._cond.notify_all()

    def _notify_recheck(self) -> None:
        """Wake the scheduler to recheck its gated set only (thread-safe)."""
        with self._cond:
            self._wake = True
            self._wake_selector()
            self._cond.notify_all()

    # ----------------------------------------------------- socket readiness

    def _register_selectable(self, element) -> bool:
        """Park ``element``'s readable fd on the selector (under the lock).

        Only cooperative elements that expose ``selectable_fileno()`` (UDP
        transport sources) have one; everything else keeps signalling
        readiness through the stream/receiver subscription hooks.
        """
        accessor = getattr(element, "selectable_fileno", None)
        if not callable(accessor):
            return False
        fd = accessor()
        if fd is None:
            return False
        self._ensure_selector()
        try:
            self._selector.register(fd, selectors.EVENT_READ, element)
        except (KeyError, ValueError, OSError):
            return False
        self._selectable_fds[element] = fd
        return True

    def _unregister_selectable(self, element) -> None:
        """Drop a finished element's fd from the selector (under the lock)."""
        fd = self._selectable_fds.pop(element, None)
        was_suspended = element in self._suspended
        self._suspended.discard(element)
        if fd is not None and not was_suspended and self._selector is not None:
            try:
                self._selector.unregister(fd)
            except (KeyError, ValueError, OSError):
                pass

    def _suspend_selectable_fd(self, element) -> None:
        """Take a parked element's fd off the selector (scheduler thread).

        Called when the element cannot be pumped for a reason its socket
        knows nothing about (boundary hold, downstream high-water, parked
        output): a readable-but-unpumpable fd would make every idle
        select() return instantly — a busy spin.  The every-round gated
        recheck (or the hold-release notification) still reaches the
        element; the fd goes back on the selector when it is next pumped.
        """
        with self._cond:
            fd = self._selectable_fds.get(element)
            if fd is None or element in self._suspended:
                return
            if self._selector is not None:
                try:
                    self._selector.unregister(fd)
                except (KeyError, ValueError, OSError):
                    pass
            self._suspended.add(element)

    def _resume_selectable_fd(self, element) -> None:
        """Put a previously suspended element's fd back on the selector."""
        with self._cond:
            if element not in self._suspended:
                return
            self._suspended.discard(element)
            fd = self._selectable_fds.get(element)
            if fd is not None and self._selector is not None:
                try:
                    self._selector.register(fd, selectors.EVENT_READ, element)
                except (KeyError, ValueError, OSError):
                    pass

    def _ensure_selector(self) -> None:
        if self._selector is not None:
            return
        self._selector = selectors.DefaultSelector()
        # Self-pipe: in-process notifications must be able to interrupt a
        # scheduler blocked in select().  data=None marks the wakeup end.
        self._wakeup_send, self._wakeup_recv = socket.socketpair()
        self._wakeup_send.setblocking(False)
        self._wakeup_recv.setblocking(False)
        self._selector.register(self._wakeup_recv, selectors.EVENT_READ, None)

    def _wake_selector(self) -> None:
        """Interrupt a select() in progress (caller holds the lock)."""
        if self._selecting and self._wakeup_send is not None:
            try:
                self._wakeup_send.send(b"\x00")
            except (BlockingIOError, OSError):
                pass  # pipe full means a wakeup is already pending

    def _drain_wakeup(self) -> None:
        if self._wakeup_recv is None:
            return
        while True:
            try:
                if not self._wakeup_recv.recv(4096):
                    return
            except (BlockingIOError, OSError):
                return

    def _prune_dead_fds(self) -> None:
        """Unregister fds whose sockets were closed under us (EBADF guard)."""
        for element, fd in list(self._selectable_fds.items()):
            try:
                os.fstat(fd)
            except OSError:
                self._unregister_selectable(element)
                self._dirty.add(element)  # let its pump observe the EOF

    def _close_selector(self) -> None:
        with self._cond:
            selector, self._selector = self._selector, None
            send, self._wakeup_send = self._wakeup_send, None
            recv, self._wakeup_recv = self._wakeup_recv, None
            self._selectable_fds.clear()
            self._suspended.clear()
        for resource in (selector, send, recv):
            if resource is not None:
                try:
                    resource.close()
                except OSError:  # pragma: no cover - best effort
                    pass

    # ------------------------------------------------------------ inspection

    @property
    def managed_count(self) -> int:
        """Number of elements currently pumped by the scheduler."""
        with self._cond:
            return len(self._elements)

    @property
    def scheduler_alive(self) -> bool:
        """Whether the scheduler thread is currently running."""
        scheduler = self._scheduler
        return scheduler is not None and scheduler.is_alive()

    def metrics_snapshot(self) -> dict:
        """Counters/gauges for the scrape-time engine collector.

        Counter reads are lock-free (scheduler-thread-private plain ints);
        the depth gauges are read under the condition since the dirty set
        and timer heap are mutated by notifiers as well as the scheduler.
        """
        with self._cond:
            gauges = {
                "dirty_depth": len(self._dirty),
                "gated_depth": len(self._gated),
                "managed_elements": len(self._elements),
                "pending_timers": len(self._timers),
            }
        return {
            "counters": {
                "scheduler_rounds": self._metric_rounds,
                "elements_pumped": self._metric_pumps,
                "timer_fires": self._metric_timer_fires,
                "selector_wakeups": self._metric_selector_wakeups,
                "scan_all_rounds": self._metric_scan_all_rounds,
            },
            "gauges": gauges,
        }

    # -------------------------------------------------------------- scheduler

    def _ensure_scheduler(self) -> None:
        if self._scheduler is None or not self._scheduler.is_alive():
            self._scheduler = threading.Thread(
                target=self._loop, name=f"event-engine-{id(self):x}",
                daemon=True)
            self._scheduler.start()

    def _loop(self) -> None:
        while True:
            self._metric_rounds += 1
            with self._cond:
                if self._stopping:
                    return
                if self._scan_all:
                    candidates = list(self._elements)
                    self._scan_all = False
                    self._metric_scan_all_rounds += 1
                else:
                    candidates = list(self._dirty | self._gated)
                self._dirty.clear()
            now = time.monotonic()
            while self._timers and self._timers[0][0] <= now:
                candidates.append(heapq.heappop(self._timers)[2])
                self._metric_timer_fires += 1
            progress = False
            finished = []
            for element in candidates:
                if element.finished:
                    finished.append(element)
                    continue
                try:
                    if self._ready(element):
                        self._gated.discard(element)
                        self._resume_selectable_fd(element)
                        self._metric_pumps += 1
                        progress = element.pump() or progress
                        # A pump that consumed input or delivered output
                        # re-marks the affected elements through the stream
                        # listeners, so follow-on work lands back in the
                        # dirty set by itself.
                    else:
                        self._park(element)
                except Exception:  # noqa: BLE001 - a dying element (teardown
                    pass           # races on its streams) must not kill the
                                   # scheduler; pump reports via element.error
                if element.finished:
                    finished.append(element)
            with self._cond:
                for element in finished:
                    self._gated.discard(element)
                    self._dirty.discard(element)
                    self._unregister_selectable(element)
                    try:
                        self._elements.remove(element)
                    except ValueError:
                        pass
                if self._stopping:
                    return
                sleep_s = 0.0
                if not progress and not self._wake:
                    sleep_s = self._sleep_s()
                if self._selector is None:
                    if sleep_s > 0.0:
                        woken = self._cond.wait(sleep_s)
                        if not woken and sleep_s >= self._heartbeat_s:
                            # A full heartbeat passed with no notification
                            # at all: rescan everything.  This turns any
                            # lost wakeup — a bug, or a listener raced with
                            # teardown — into a bounded hiccup instead of a
                            # stalled stream.  Timer-bounded sleeps
                            # (< heartbeat) wake for their deadline and
                            # skip this.
                            self._scan_all = True
                    self._wake = False
                    continue
                # Selectable sockets registered: the idle wait moves to the
                # selector so a readable socket is itself a wakeup.  The
                # _selecting flag closes the notify race — a notifier that
                # runs before it is set leaves _wake=True (observed above);
                # one that runs after it writes the self-pipe.
                self._selecting = sleep_s > 0.0
                selector = self._selector  # local ref: a shutdown whose
                # join() timed out may null the attribute concurrently
            if not self._selecting:
                with self._cond:
                    self._wake = False
                continue
            try:
                events = selector.select(sleep_s)
            except (OSError, ValueError):
                # EBADF from a socket closed under us, or the selector
                # itself closed by a timed-out shutdown.
                events = []
                with self._cond:
                    self._prune_dead_fds()
            with self._cond:
                self._selecting = False
                woken = bool(self._wake)
                for key, _mask in events:
                    woken = True
                    if key.data is None:
                        self._drain_wakeup()
                    else:
                        self._dirty.add(key.data)
                        self._metric_selector_wakeups += 1
                if not woken and sleep_s >= self._heartbeat_s:
                    self._scan_all = True  # lost-wakeup safety net, as above
                self._wake = False

    def _sleep_s(self) -> float:
        """Idle sleep budget: the heartbeat, cut to the next timer deadline."""
        if not self._timers:
            return self._heartbeat_s
        return min(self._heartbeat_s,
                   max(self._timers[0][0] - time.monotonic(), 0.0))

    def _ready(self, element) -> bool:
        """Decide whether pumping ``element`` would make progress right now."""
        if element.stop_requested:
            return True
        if element.held:
            return False
        if element.pending_output:
            # Parked output can only move once the DOS is reattached.
            return element.dos.connected
        if element.wants_input_pump():
            return not self._backpressured(element)
        return False

    def _park(self, element) -> None:
        """File a not-ready element wherever its wake-up will come from.

        Cross-element conditions (downstream high-water, output parked
        across a splice) go to the every-round ``_gated`` set; a paced
        source between items goes on the timer heap; everything else is
        left alone — its own stream, hold or stop notification re-marks it.
        """
        if element.stop_requested:
            return
        if element.held:
            self._suspend_selectable_fd(element)
            return
        if element.pending_output:
            self._gated.add(element)  # waiting on a reattach in the splice
            self._suspend_selectable_fd(element)
            return
        if element.wants_input_pump():
            if self._backpressured(element):
                self._gated.add(element)
                self._suspend_selectable_fd(element)
            return
        due = element.next_due_s()
        if due is not None:
            self._timer_seq += 1
            heapq.heappush(self._timers, (due, self._timer_seq, element))

    @staticmethod
    def _backpressured(element) -> bool:
        """True while the element's downstream buffer is at/over capacity."""
        dos = element.dos
        if not dos.connected:
            return False  # one transform will park in _pending; that's fine
        sink = dos.sink
        if sink is None:
            return False
        capacity = sink.buffer.capacity
        return capacity is not None and sink.available() >= capacity
