"""The thread-per-filter engine — the paper's original execution model.

Every chain element gets its own worker thread (``Filter.start``), blocking
reads with a polling timeout and blocking writes with buffer back-pressure.
Simple and fully preemptive, it is the reference engine the event engine is
equivalence-tested against, and remains the default: for a handful of
streams its per-element isolation beats the event engine's shared scheduler.
"""

from __future__ import annotations

from ..obs.metrics import register_engine as _obs_register_engine
from .base import ExecutionEngine


class ThreadedEngine(ExecutionEngine):
    """One dedicated worker thread per chain element."""

    name = "threaded"

    def __init__(self) -> None:
        #: Worker threads launched over this engine's lifetime (plain int,
        #: written only under the callers' composition locks).
        self.elements_started = 0
        _obs_register_engine(self)

    def start_element(self, element) -> None:
        """Launch ``element``'s dedicated worker thread."""
        element.start()
        self.elements_started += 1

    def metrics_snapshot(self) -> dict:
        """Counters/gauges for the scrape-time engine collector."""
        return {
            "counters": {"elements_started": self.elements_started},
            "gauges": {},
        }
