"""The thread-per-filter engine — the paper's original execution model.

Every chain element gets its own worker thread (``Filter.start``), blocking
reads with a polling timeout and blocking writes with buffer back-pressure.
Simple and fully preemptive, it is the reference engine the event engine is
equivalence-tested against, and remains the default: for a handful of
streams its per-element isolation beats the event engine's shared scheduler.
"""

from __future__ import annotations

from .base import ExecutionEngine


class ThreadedEngine(ExecutionEngine):
    """One dedicated worker thread per chain element."""

    name = "threaded"

    def start_element(self, element) -> None:
        element.start()
