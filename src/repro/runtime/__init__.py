"""Pluggable execution engines for filter-chain runtimes.

This package owns *how* a proxy's filter chains execute, behind the same
registry pattern as the GF(256) backends (:mod:`repro.fec.backend`):

* :class:`ThreadedEngine` — thread per chain element (the paper's model,
  and the default);
* :class:`EventEngine` — one cooperative scheduler thread pumping filters
  on DIS readiness callbacks, for proxies with very many streams;
* :class:`AsyncioEngine` — the same cooperative pump step adapted onto an
  ``asyncio`` event loop, for proxies embedded in asyncio applications
  (the :mod:`repro.ingress` HTTP/WebSocket front door runs on it).

Select with ``ControlThread(..., engine=...)`` / ``Proxy(..., engine=...)``
(name or instance), the ``REPRO_ENGINE`` environment variable, or
:func:`set_default_engine`.
"""

from .base import (
    ENGINE_ENV_VAR,
    EngineError,
    ExecutionEngine,
    available_engines,
    get_engine,
    register_engine,
    resolve_engine,
    set_default_engine,
)
from .asyncio_engine import AsyncioEngine
from .event import EventEngine
from .threaded import ThreadedEngine

register_engine(ThreadedEngine.name, ThreadedEngine, make_default=True)
register_engine(EventEngine.name, EventEngine)
register_engine(AsyncioEngine.name, AsyncioEngine)

__all__ = [
    "ENGINE_ENV_VAR",
    "EngineError",
    "ExecutionEngine",
    "ThreadedEngine",
    "EventEngine",
    "AsyncioEngine",
    "register_engine",
    "available_engines",
    "get_engine",
    "resolve_engine",
    "set_default_engine",
]
