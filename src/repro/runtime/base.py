"""The execution-engine interface and registry.

An :class:`ExecutionEngine` owns *how* the elements of a filter chain run —
it decouples the composition layer (:mod:`repro.core.control_thread`) from
the concurrency model, exactly as :mod:`repro.fec.backend` decouples the
erasure code from its field algebra.  Three engines ship with the repo:

* :class:`~repro.runtime.threaded.ThreadedEngine` — one worker thread per
  chain element, the paper's original model and the reference semantics;
* :class:`~repro.runtime.event.EventEngine` — a single-threaded cooperative
  scheduler that pumps filters only when their DIS reports readiness, for
  proxies hosting hundreds of concurrent streams;
* :class:`~repro.runtime.asyncio_engine.AsyncioEngine` — the same
  cooperative pump step hosted on an ``asyncio`` event loop, for proxies
  embedded in asyncio applications.

Engines are held in a process-wide registry of factories.  Selection, in
priority order:

1. an explicit ``engine=`` argument (name or instance) on ``ControlThread``
   / ``Proxy`` / the composed proxies,
2. the ``REPRO_ENGINE`` environment variable,
3. the registry default (threaded).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Union

#: Environment variable consulted by :func:`get_engine` when no explicit
#: engine is requested.
ENGINE_ENV_VAR = "REPRO_ENGINE"


class EngineError(ValueError):
    """Raised for unknown engine names or invalid engine operations."""


class ExecutionEngine(ABC):
    """Interface for filter-chain execution strategies.

    An engine is handed chain elements (:class:`~repro.core.filter.Filter`
    instances, including EndPoints) one at a time by the ControlThread; it
    decides whether each runs on a dedicated thread or is pumped
    cooperatively.  One engine instance may serve many streams — sharing an
    instance across a proxy's streams is what lets the event engine
    multiplex hundreds of chains onto one scheduler thread.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def start_element(self, element) -> None:
        """Begin executing ``element`` (exactly once per element)."""

    def stop_element(self, element, timeout: float = 5.0) -> None:
        """Stop ``element`` and wait up to ``timeout`` for it to finish."""
        element.stop(timeout=timeout)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Release engine-wide resources.

        Idempotent; elements must already be stopped by their
        ControlThreads.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: Dict[str, Callable[[], "ExecutionEngine"]] = {}
_DEFAULT_NAME: Optional[str] = None


def register_engine(name: str, factory: Callable[[], ExecutionEngine],
                    make_default: bool = False) -> None:
    """Add an engine factory to the registry (replacing any same name)."""
    if not name:
        raise EngineError("engine must have a non-empty name")
    _REGISTRY[name] = factory
    global _DEFAULT_NAME
    if make_default or _DEFAULT_NAME is None:
        _DEFAULT_NAME = name


def available_engines() -> List[str]:
    """Names of every registered engine."""
    return sorted(_REGISTRY)


def set_default_engine(name: str) -> None:
    """Make ``name`` the process-wide default engine."""
    if name not in _REGISTRY:
        raise EngineError(
            f"unknown engine {name!r}; available: {', '.join(available_engines())}"
        )
    global _DEFAULT_NAME
    _DEFAULT_NAME = name


def get_engine(name: Optional[str] = None) -> ExecutionEngine:
    """Instantiate an engine by name, environment variable, or default.

    ``None`` consults ``REPRO_ENGINE`` and falls back to the registry
    default (threaded).  Unknown names raise :class:`EngineError` so typos
    never silently select the wrong runtime.  Each call returns a *fresh*
    engine instance; share the instance explicitly (e.g. one per Proxy) to
    multiplex streams onto it.
    """
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR) or _DEFAULT_NAME
    if name is None:
        raise EngineError("no execution engine registered")
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; available: {', '.join(available_engines())}"
        ) from None
    return factory()


def resolve_engine(engine: Union[str, ExecutionEngine, None]) -> ExecutionEngine:
    """Normalise an ``engine=`` argument (instance, name, or None)."""
    if engine is None:
        return get_engine()
    if isinstance(engine, ExecutionEngine):
        return engine
    if isinstance(engine, str):
        return get_engine(engine)
    raise EngineError(
        f"engine must be a name, ExecutionEngine, or None: {engine!r}")
