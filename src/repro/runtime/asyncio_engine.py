"""The asyncio engine — cooperative execution on an ``asyncio`` event loop.

:class:`AsyncioEngine` is the third execution engine: like
:class:`~repro.runtime.event.EventEngine` it multiplexes every cooperative
chain element onto a single scheduler, but the scheduler is an ``asyncio``
event loop (run on one daemon thread owned by the engine) instead of a
hand-rolled ``selectors`` wait.  The pump step itself is unchanged —
:meth:`repro.core.filter.Filter.pump` is already engine-agnostic — so the
engine is an *event-loop adapter*:

* stream readiness (the ``subscribe()`` callbacks the detachable streams
  and transport receivers already fire) is bridged onto the loop with
  ``call_soon_threadsafe``, marking the element dirty and waking the
  scheduler coroutine's :class:`asyncio.Event`;
* paced non-blocking sources park on native ``loop.call_later`` timers
  instead of a private timer wheel;
* cooperative elements exposing ``selectable_fileno()`` (UDP transport
  sources) are registered with ``loop.add_reader``, so socket readiness is
  a loop callback rather than a ``select`` round of our own.

Because the data plane runs the same pump step under the same readiness
and back-pressure rules, the asyncio engine is byte-identical to the other
two engines (pinned by ``tests/runtime/test_engine_equivalence.py`` and
``tests/transport/test_equivalence.py``).  That includes the zero-copy
batch path: each loop wakeup moves a ``pump_budget`` of bytes-like chunks
by reference through :meth:`Filter.transform_chunks`, so the per-wakeup
costs here amortize exactly as the event engine's do.

What the adapter buys is *composability with asyncio applications*: the
:mod:`repro.ingress` HTTP/WebSocket front door and the awaitable stream
helpers (:mod:`repro.streams.awaitable`) speak asyncio natively, so a
proxy serving real network clients can run its filters on the same
concurrency substrate as its protocol handlers.  Elements that perform
blocking external I/O (``cooperative_capable = False``) still get a
dedicated thread, exactly as under the event engine — an event loop must
never block.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Dict, List, Optional

from ..obs.metrics import register_engine as _obs_register_engine
from .base import EngineError, ExecutionEngine

#: Fallback wakeup period for the scheduler coroutine.  Every state change
#: that can make an element ready fires a notification, so this is a
#: lost-wakeup safety net, not a polling interval (same contract as the
#: event engine's heartbeat).
DEFAULT_HEARTBEAT_S = 0.5


class AsyncioEngine(ExecutionEngine):
    """Cooperative scheduler running chain elements on an asyncio loop.

    One engine instance owns one event loop on one daemon thread (started
    lazily with the first cooperative element).  All scheduling state — the
    dirty set, the gated set, timers, fd readers — is confined to the loop
    thread; the thread-safe entry points (:meth:`notify_element`,
    :meth:`shutdown`) marshal onto the loop with
    ``call_soon_threadsafe``.
    """

    name = "asyncio"

    def __init__(self, heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        if heartbeat_s <= 0:
            raise EngineError("heartbeat_s must be positive")
        self._heartbeat_s = heartbeat_s
        # Guards lazy loop start-up and the stopping flag; never held while
        # waiting on the loop.
        self._lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopping = False

        # ---- scheduler state: loop-thread-private ----
        self._elements: List = []       # cooperatively pumped elements
        # Dirty-set scheduling, as in the event engine: notifications mark
        # the element whose readiness changed, so a round touches
        # O(notified) elements.  Written on the loop thread; racily *read*
        # from notifier threads as a de-duplication hint only.
        self._dirty: set = set()
        self._scan_all = False
        # Elements whose readiness depends on another element's progress
        # (downstream high-water, output parked across a splice);
        # rechecked every round.
        self._gated: set = set()
        # Paced sources parked on native loop timers: element -> TimerHandle.
        self._timers: Dict = {}
        # Cooperative elements whose fd is registered with loop.add_reader:
        # element -> fd.  Readable-but-unpumpable fds are moved to
        # _suspended so they cannot spin the loop.
        self._readers: Dict = {}
        self._suspended: set = set()

        # Scheduler metrics: plain ints written only by the loop thread
        # (GIL-atomic reads from the scrape-time collector may lag an
        # in-flight round, which dashboards tolerate by design).
        self._metric_rounds = 0
        self._metric_pumps = 0
        self._metric_timer_fires = 0
        self._metric_reader_wakeups = 0
        self._metric_scan_all_rounds = 0
        _obs_register_engine(self)

    # ------------------------------------------------------------- lifecycle

    def start_element(self, element) -> None:
        """Admit ``element``: pump it cooperatively, or give it a thread.

        Cooperative elements are bound to this engine and handed to the
        loop; blocking-I/O elements (``cooperative_capable = False``) start
        their dedicated worker thread exactly as under the other engines.
        """
        if not getattr(element, "cooperative_capable", True):
            with self._lock:
                if self._stopping:
                    raise EngineError(f"engine {self.name!r} has been shut down")
            # A threaded sink draining its buffer must re-wake cooperative
            # elements gated on the high-water mark: a recheck-wake
            # suffices, since gated elements are candidates every round.
            element.dis.subscribe(self._notify_recheck)
            element.start()
            return
        with self._lock:
            # Refuse before binding: a half-bound element could never be
            # started on another engine (bind marks it started).
            if self._stopping:
                raise EngineError(f"engine {self.name!r} has been shut down")
            self._ensure_loop()
            element.bind_engine(self)
        self._call_soon(self._admit, element)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the scheduler loop and join its thread (idempotent)."""
        with self._lock:
            self._stopping = True
            thread = self._thread
        self._call_soon(self._wake_loop)
        if thread is not None:
            thread.join(timeout=timeout)

    def notify_element(self, element) -> None:
        """Wake the scheduler to re-evaluate one element (thread-safe).

        This is the bridge from the synchronous world onto the loop: the
        detachable streams' ``subscribe()`` callbacks land here (via
        ``Filter._notify_engine``) and are marshalled onto the loop thread
        with ``call_soon_threadsafe``.  A racy membership pre-check keeps
        an already-dirty element from scheduling a redundant callback.

        Notifications fired *on* the loop thread — listeners firing inside
        a pump's own stream reads/writes, which is most of them — mutate
        the dirty set directly instead.  This is not just cheaper: the
        threadsafe path writes the loop's self-pipe, and that syscall
        releases the GIL mid-listener, handing control to e.g. a splicing
        ControlThread at an instant where the pumped element holds chunks
        that no quiescence check can see.  The direct path keeps the pump
        step GIL-atomic at exactly the points the event engine does.
        """
        if self._on_loop_thread():
            self._dirty.add(element)
            self._wake_loop()
            return
        if element in self._dirty:
            return  # already marked; the pending round will pump it
        self._call_soon(self._mark_dirty, element)

    def _notify_recheck(self) -> None:
        """Wake the scheduler to recheck its gated set only (thread-safe)."""
        if self._on_loop_thread():
            self._wake_loop()
            return
        self._call_soon(self._wake_loop)

    # --------------------------------------------------------- loop plumbing

    def _ensure_loop(self) -> None:
        """Start the loop thread if needed (caller holds ``self._lock``)."""
        if self._thread is not None and self._thread.is_alive():
            return
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._thread_main, args=(ready,),
            name=f"asyncio-engine-{id(self):x}", daemon=True)
        self._thread.start()
        ready.wait()

    def _thread_main(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        # Created before the loop runs; asyncio.Event binds to the running
        # loop lazily on first await (Python >= 3.10 semantics).
        self._wake = asyncio.Event()
        ready.set()
        try:
            loop.run_until_complete(self._scheduler())
        finally:
            try:
                loop.close()
            except Exception:  # noqa: BLE001 - best effort during teardown
                pass

    def _on_loop_thread(self) -> bool:
        """True when the caller is running on this engine's loop thread."""
        thread = self._thread
        return thread is not None and threading.get_ident() == thread.ident

    def _call_soon(self, fn, *args) -> None:
        """Schedule ``fn`` on the loop thread; a no-op when no loop exists."""
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop already closed by shutdown

    def _mark_dirty(self, element) -> None:
        self._dirty.add(element)
        self._wake_loop()

    def _wake_loop(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # ------------------------------------------------- loop-thread callbacks

    def _admit(self, element) -> None:
        """Take ownership of a freshly bound element (loop thread)."""
        if element in self._elements:
            return
        self._elements.append(element)
        self._dirty.add(element)
        self._register_reader(element)
        self._wake_loop()

    def _timer_fire(self, element) -> None:
        """A paced source's deadline arrived (loop thread)."""
        self._timers.pop(element, None)
        self._metric_timer_fires += 1
        self._dirty.add(element)
        self._wake_loop()

    def _fd_ready(self, element) -> None:
        """A registered fd became readable (loop thread)."""
        self._metric_reader_wakeups += 1
        self._dirty.add(element)
        self._wake_loop()

    # ------------------------------------------------------------ fd readers

    def _register_reader(self, element) -> None:
        """Register a cooperative element's readable fd with the loop.

        Only elements exposing ``selectable_fileno()`` (UDP transport
        sources) have one; everything else signals readiness through the
        stream/receiver subscription hooks.
        """
        accessor = getattr(element, "selectable_fileno", None)
        if not callable(accessor):
            return
        try:
            fd = accessor()
        except Exception:  # noqa: BLE001 - a dying element must not kill admit
            return
        if fd is None:
            return
        try:
            self._loop.add_reader(fd, self._fd_ready, element)
        except (OSError, ValueError):
            return
        self._readers[element] = fd

    def _unregister_reader(self, element) -> None:
        """Drop a finished element's fd from the loop (loop thread)."""
        fd = self._readers.pop(element, None)
        was_suspended = element in self._suspended
        self._suspended.discard(element)
        if fd is not None and not was_suspended:
            try:
                self._loop.remove_reader(fd)
            except (OSError, ValueError):
                pass

    def _suspend_reader(self, element) -> None:
        """Take a parked element's fd off the loop (loop thread).

        A readable-but-unpumpable fd (boundary hold, downstream
        high-water, parked output) would otherwise fire its callback on
        every loop iteration — a busy spin.  The every-round gated recheck
        still reaches the element; the fd goes back on the loop when it is
        next pumped.
        """
        fd = self._readers.get(element)
        if fd is None or element in self._suspended:
            return
        try:
            self._loop.remove_reader(fd)
        except (OSError, ValueError):
            pass
        self._suspended.add(element)

    def _resume_reader(self, element) -> None:
        """Put a previously suspended element's fd back on the loop."""
        if element not in self._suspended:
            return
        self._suspended.discard(element)
        fd = self._readers.get(element)
        if fd is not None:
            try:
                self._loop.add_reader(fd, self._fd_ready, element)
            except (OSError, ValueError):
                pass

    # ------------------------------------------------------------ inspection

    @property
    def managed_count(self) -> int:
        """Number of elements currently pumped by the scheduler."""
        return len(self._elements)

    @property
    def scheduler_alive(self) -> bool:
        """True while the engine's loop thread is running."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def loop(self) -> Optional[asyncio.AbstractEventLoop]:
        """The engine's event loop (None until the first element starts).

        Exposed so asyncio applications (the ingress layer, tests) can
        schedule their own coroutines next to the pump scheduler.
        """
        return self._loop

    def metrics_snapshot(self) -> dict:
        """Counters/gauges for the scrape-time engine collector.

        All values are loop-thread-private plain ints / container sizes;
        GIL-atomic reads from the scrape thread may lag an in-flight round,
        which dashboards tolerate by design.
        """
        return {
            "counters": {
                "scheduler_rounds": self._metric_rounds,
                "elements_pumped": self._metric_pumps,
                "timer_fires": self._metric_timer_fires,
                "selector_wakeups": self._metric_reader_wakeups,
                "scan_all_rounds": self._metric_scan_all_rounds,
            },
            "gauges": {
                "dirty_depth": len(self._dirty),
                "gated_depth": len(self._gated),
                "managed_elements": len(self._elements),
                "pending_timers": len(self._timers),
            },
        }

    # -------------------------------------------------------------- scheduler

    async def _scheduler(self) -> None:
        """The scheduler coroutine: pump rounds between awaitable waits."""
        while True:
            if self._stopping:
                break
            progress = self._round()
            if self._stopping:
                break
            if progress or self._dirty or self._scan_all:
                # More work is already queued: yield one loop iteration so
                # reader/timer callbacks and other tasks interleave, then
                # run the next round without arming the heartbeat wait.
                if self._wake is not None:
                    self._wake.clear()
                await asyncio.sleep(0)
                continue
            try:
                await asyncio.wait_for(self._wake.wait(), self._heartbeat_s)
            except asyncio.TimeoutError:
                # A full heartbeat passed with no notification at all:
                # rescan everything.  This turns any lost wakeup — a bug,
                # or a listener raced with teardown — into a bounded
                # hiccup instead of a stalled stream.
                self._scan_all = True
            self._wake.clear()
        self._teardown()

    def _round(self) -> bool:
        """One pump round over the dirty and gated sets (loop thread)."""
        self._metric_rounds += 1
        if self._scan_all:
            candidates = list(self._elements)
            self._scan_all = False
            self._metric_scan_all_rounds += 1
        else:
            candidates = list(self._dirty | self._gated)
        self._dirty.clear()
        progress = False
        finished = []
        for element in candidates:
            if element.finished:
                finished.append(element)
                continue
            try:
                if self._ready(element):
                    self._gated.discard(element)
                    self._resume_reader(element)
                    self._metric_pumps += 1
                    progress = element.pump() or progress
                    # A pump that consumed input or delivered output
                    # re-marks the affected elements through the stream
                    # listeners, so follow-on work lands back in the dirty
                    # set by itself.
                else:
                    self._park(element)
            except Exception:  # noqa: BLE001 - a dying element (teardown
                pass           # races on its streams) must not kill the
                               # scheduler; pump reports via element.error
            if element.finished:
                finished.append(element)
        for element in finished:
            self._retire(element)
        return progress

    def _retire(self, element) -> None:
        self._gated.discard(element)
        self._dirty.discard(element)
        timer = self._timers.pop(element, None)
        if timer is not None:
            timer.cancel()
        self._unregister_reader(element)
        try:
            self._elements.remove(element)
        except ValueError:
            pass

    def _teardown(self) -> None:
        """Release loop-held resources before the loop exits."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for element in list(self._readers):
            self._unregister_reader(element)
        self._dirty.clear()
        self._gated.clear()

    # --------------------------------------------------- readiness predicates

    def _ready(self, element) -> bool:
        """Decide whether pumping ``element`` would make progress right now.

        Identical to the event engine's predicate — the two engines must
        agree on when an element may run for the equivalence guarantee to
        hold by construction.
        """
        if element.stop_requested:
            return True
        if element.held:
            return False
        if element.pending_output:
            # Parked output can only move once the DOS is reattached.
            return element.dos.connected
        if element.wants_input_pump():
            return not self._backpressured(element)
        return False

    def _park(self, element) -> None:
        """File a not-ready element wherever its wake-up will come from.

        Cross-element conditions (downstream high-water, output parked
        across a splice) go to the every-round gated set; a paced source
        between items goes on a native ``loop.call_later`` timer;
        everything else is left alone — its own stream, hold or stop
        notification re-marks it.
        """
        if element.stop_requested:
            return
        if element.held:
            self._suspend_reader(element)
            return
        if element.pending_output:
            self._gated.add(element)  # waiting on a reattach in the splice
            self._suspend_reader(element)
            return
        if element.wants_input_pump():
            if self._backpressured(element):
                self._gated.add(element)
                self._suspend_reader(element)
            return
        due = element.next_due_s()
        if due is not None and element not in self._timers:
            delay = max(0.0, due - time.monotonic())
            self._timers[element] = self._loop.call_later(
                delay, self._timer_fire, element)

    @staticmethod
    def _backpressured(element) -> bool:
        """True while the element's downstream buffer is at/over capacity."""
        dos = element.dos
        if not dos.connected:
            return False  # one transform will park in _pending; that's fine
        sink = dos.sink
        if sink is None:
            return False
        capacity = sink.buffer.capacity
        return capacity is not None and sink.available() >= capacity
