"""FEC encoder and decoder filters.

These are the RAPIDware ports of the paper's FEC proxy components (Section
5): the encoder collects the packets flowing through the proxy into (n, k)
erasure-coded groups and emits data + parity packets; the decoder, placed on
the receiving side of a lossy link, reconstructs the original packets from
whatever subset arrives.

Both are :class:`~repro.core.filter.PacketFilter` subclasses, so they can be
inserted into (and removed from) a running stream by the ControlThread at
any packet boundary — the "demand-driven FEC" of the paper's title example.
"""

from __future__ import annotations

import itertools
import threading
from typing import List, Optional

from ..core.filter import PacketFilter
from ..fec import FecGroupDecoder, FecGroupEncoder, FecPacket, FecPacketError

#: The configuration used in the paper's Figure 7 experiment.
PAPER_FEC_K = 4
PAPER_FEC_N = 6

#: Each encoder instance claims its own block of group identifiers so that a
#: decoder never confuses the groups of two encoders that served the same
#: stream at different times (FEC enabled, disabled, re-enabled).
_GROUP_ID_STRIDE = 1 << 20
_encoder_counter = itertools.count()
_encoder_counter_lock = threading.Lock()


def _allocate_group_id_base() -> int:
    with _encoder_counter_lock:
        return next(_encoder_counter) * _GROUP_ID_STRIDE % (1 << 32)


class FecEncoderFilter(PacketFilter):
    """Wrap the packets of a stream in (n, k) block-erasure-code groups.

    Every incoming packet becomes the payload of an FEC data packet; after
    ``k`` payloads a full group (k data + n-k parity packets) is emitted.
    At end-of-stream any partial group is flushed uncoded so no payload is
    ever withheld.
    """

    type_name = "fec-encoder"

    #: One fused gather-XOR pass per pump budget: every group completed by
    #: the batch reaches the numpy backend as a single 2D array.
    fused_packet_batch = True

    def __init__(self, k: int = PAPER_FEC_K, n: int = PAPER_FEC_N,
                 name: Optional[str] = None,
                 start_group_id: Optional[int] = None,
                 backend: Optional[str] = None) -> None:
        super().__init__(name=name)
        if start_group_id is None:
            start_group_id = _allocate_group_id_base()
        self._encoder = FecGroupEncoder(k=k, n=n, start_group_id=start_group_id,
                                        backend=backend)
        self.k = k
        self.n = n

    @property
    def encoder_stats(self):
        """Group/packet counters maintained by the underlying encoder."""
        return self._encoder.stats

    def transform_packet(self, packet: bytes) -> List[bytes]:
        return [fec_packet.pack() for fec_packet in self._encoder.add(packet)]

    def transform_packets(self, packets: List[bytes]) -> List[bytes]:
        return [fec_packet.pack()
                for fec_packet in self._encoder.add_batch(packets)]

    def finalize_packets(self) -> List[bytes]:
        return [fec_packet.pack() for fec_packet in self._encoder.flush()]

    def describe(self) -> dict:
        info = super().describe()
        info["fec"] = {"k": self.k, "n": self.n,
                       "backend": self._encoder.backend_name,
                       "groups_encoded": self._encoder.stats.groups_encoded}
        return info


class FecDecoderFilter(PacketFilter):
    """Reconstruct original packets from a (possibly lossy) FEC stream.

    Packets that are not valid FEC packets are forwarded unchanged when
    ``passthrough_unknown`` is True (the default), which lets the decoder be
    inserted speculatively on streams that are only sometimes FEC-protected.
    """

    type_name = "fec-decoder"

    #: Batch the decode too: consecutive runs of valid FEC packets in one
    #: pump budget reach the group decoder (and its fused reconstruction)
    #: as a single call.
    fused_packet_batch = True

    def __init__(self, name: Optional[str] = None,
                 passthrough_unknown: bool = True,
                 max_tracked_groups: int = 1024,
                 backend: Optional[str] = None) -> None:
        super().__init__(name=name)
        self._group_decoder = FecGroupDecoder(max_tracked_groups=max_tracked_groups,
                                              backend=backend)
        self.passthrough_unknown = passthrough_unknown
        self.unknown_packets = 0

    @property
    def decoder_stats(self):
        """Group/packet counters maintained by the underlying decoder."""
        return self._group_decoder.stats

    def transform_packet(self, packet: bytes) -> List[bytes]:
        try:
            fec_packet = FecPacket.unpack(packet)
        except FecPacketError:
            self.unknown_packets += 1
            return [packet] if self.passthrough_unknown else []
        return self._group_decoder.add(fec_packet)

    def transform_packets(self, packets: List[bytes]) -> List[bytes]:
        outputs: List[bytes] = []
        run: List[FecPacket] = []
        for packet in packets:
            try:
                fec_packet = FecPacket.unpack(packet)
            except FecPacketError:
                if run:
                    # Flush the run first so a passthrough packet keeps its
                    # position relative to the decoded payloads around it.
                    outputs.extend(self._group_decoder.add_batch(run))
                    run = []
                self.unknown_packets += 1
                if self.passthrough_unknown:
                    outputs.append(packet)
                continue
            run.append(fec_packet)
        if run:
            outputs.extend(self._group_decoder.add_batch(run))
        return outputs

    def finalize_packets(self) -> List[bytes]:
        return self._group_decoder.flush()

    def describe(self) -> dict:
        info = super().describe()
        stats = self._group_decoder.stats
        info["fec"] = {
            "backend": self._group_decoder.backend_name,
            "groups_decoded": stats.groups_decoded,
            "groups_repaired": stats.groups_repaired,
            "payloads_recovered": stats.payloads_recovered,
        }
        return info
