"""Filter-level fault injection: crash at chunk N, or run slow.

The datagram faults live in :mod:`repro.chaos.transport`; this filter
covers the *compute* failure modes the supervision plane recovers from —
a filter raising mid-stream (``crash_at_chunk``) and a filter that stops
making progress (``delay_per_chunk_s``, slow enough to trip the pump-stall
watchdog).  It is a registered builtin (``fault-injection``) so cluster
stream specs can carry it to workers.

Crash budgets are tracked per filter *name* at class level: a supervised
restart builds a fresh instance from the same spec, and without the shared
budget the replacement would crash at the same chunk forever.  The budget
is per process, which is exactly the scope a restarted filter lives in.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..core.filter import Filter


class ChaosInjectedError(RuntimeError):
    """The deliberate failure raised by :class:`FaultInjectionFilter`."""


class FaultInjectionFilter(Filter):
    """Pass chunks through, with scripted crashes and latency.

    ``crash_at_chunk`` raises :class:`ChaosInjectedError` when that input
    chunk (0-based, counted per instance) arrives — but only while the
    name's crash budget (``max_crashes``, default 1) has room, so a
    restarted replacement succeeds and the stream completes.
    ``delay_per_chunk_s`` sleeps before every chunk to emulate a slow or
    wedged filter.
    """

    type_name = "fault-injection"

    #: Crashes already taken, keyed by filter name — shared across the
    #: instances a supervised restart creates from one spec.
    _crash_counts: Dict[str, int] = {}

    def __init__(self, name: Optional[str] = None,
                 crash_at_chunk: Optional[int] = None,
                 delay_per_chunk_s: float = 0.0,
                 max_crashes: int = 1,
                 error_text: str = "injected fault",
                 **kwargs) -> None:
        super().__init__(name=name, **kwargs)
        self.crash_at_chunk = crash_at_chunk
        self.delay_per_chunk_s = float(delay_per_chunk_s)
        self.max_crashes = int(max_crashes)
        self.error_text = error_text
        self._seen = 0

    @classmethod
    def reset_crash_counts(cls) -> None:
        """Forget all spent crash budgets (test hygiene)."""
        cls._crash_counts.clear()

    def transform(self, chunk: bytes) -> bytes:
        index = self._seen
        self._seen += 1
        if self.delay_per_chunk_s > 0:
            time.sleep(self.delay_per_chunk_s)
        if (self.crash_at_chunk is not None
                and index == self.crash_at_chunk
                and self._crash_counts.get(self.name, 0) < self.max_crashes):
            self._crash_counts[self.name] = (
                self._crash_counts.get(self.name, 0) + 1)
            raise ChaosInjectedError(
                f"{self.error_text} (chunk {index}, "
                f"crash {self._crash_counts[self.name]}/{self.max_crashes})")
        return chunk
