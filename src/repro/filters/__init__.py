"""The filter library: concrete, composable proxy filters.

Everything here subclasses :class:`repro.core.filter.Filter` or
:class:`repro.core.filter.PacketFilter` and can be inserted into a running
stream by a ControlThread, either directly or by name through the filter
registry / control protocol (see :data:`BUILTIN_FILTERS`).
"""

from .cache import BrowseCacheFilter, CacheStats, LruContentCache
from .chaos import ChaosInjectedError, FaultInjectionFilter
from .compression import XorCipherFilter, ZlibCompressFilter, ZlibDecompressFilter
from .fec_filters import PAPER_FEC_K, PAPER_FEC_N, FecDecoderFilter, FecEncoderFilter
from .passthrough import (
    DelayFilter,
    PacketPassthroughFilter,
    PassthroughFilter,
    UppercaseFilter,
)
from .sequencing import (
    DuplicateSuppressorFilter,
    ReorderingFilter,
    SequenceStamperFilter,
)
from .tap import (
    ByteCounterFilter,
    PacketTapFilter,
    RateLimiterFilter,
    SequenceGapTapFilter,
)
from .transcoders import (
    AudioDownsampleFilter,
    AudioMonoFilter,
    AudioRequantizeFilter,
    MediaPacketFilter,
    VideoBFrameDropFilter,
    VideoFrameThinningFilter,
)

#: Filter classes registered with the default registry (and therefore
#: available to ControlManager ``insert_filter`` requests by type name).
BUILTIN_FILTERS = (
    PassthroughFilter,
    BrowseCacheFilter,
    PacketPassthroughFilter,
    UppercaseFilter,
    DelayFilter,
    FecEncoderFilter,
    FecDecoderFilter,
    AudioDownsampleFilter,
    AudioMonoFilter,
    AudioRequantizeFilter,
    VideoBFrameDropFilter,
    VideoFrameThinningFilter,
    ZlibCompressFilter,
    ZlibDecompressFilter,
    XorCipherFilter,
    ByteCounterFilter,
    PacketTapFilter,
    SequenceGapTapFilter,
    RateLimiterFilter,
    SequenceStamperFilter,
    DuplicateSuppressorFilter,
    ReorderingFilter,
    FaultInjectionFilter,
)

__all__ = [
    "ChaosInjectedError",
    "FaultInjectionFilter",
    "PassthroughFilter",
    "BrowseCacheFilter",
    "LruContentCache",
    "CacheStats",
    "PacketPassthroughFilter",
    "UppercaseFilter",
    "DelayFilter",
    "FecEncoderFilter",
    "FecDecoderFilter",
    "PAPER_FEC_K",
    "PAPER_FEC_N",
    "MediaPacketFilter",
    "AudioDownsampleFilter",
    "AudioMonoFilter",
    "AudioRequantizeFilter",
    "VideoBFrameDropFilter",
    "VideoFrameThinningFilter",
    "ZlibCompressFilter",
    "ZlibDecompressFilter",
    "XorCipherFilter",
    "ByteCounterFilter",
    "PacketTapFilter",
    "SequenceGapTapFilter",
    "RateLimiterFilter",
    "SequenceStamperFilter",
    "DuplicateSuppressorFilter",
    "ReorderingFilter",
    "BUILTIN_FILTERS",
]
