"""Compression and (toy) encryption filters.

Per-packet zlib compression is a realistic proxy service for low-bandwidth
wireless links (text/HTML collaborative content compresses well); the XOR
stream cipher is *not* real cryptography — it exists to demonstrate that
order matters when composing filters (cipher-then-compress performs much
worse than compress-then-cipher), which is one of the reasons the
ControlThread supports reordering.
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..core.filter import PacketFilter


class ZlibCompressFilter(PacketFilter):
    """Compress every packet payload with zlib."""

    type_name = "zlib-compress"

    def __init__(self, level: int = 6, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level
        self.bytes_saved = 0

    def transform_packet(self, packet: bytes) -> bytes:
        compressed = zlib.compress(packet, self.level)
        self.bytes_saved += len(packet) - len(compressed)
        return compressed


class ZlibDecompressFilter(PacketFilter):
    """Decompress packets produced by :class:`ZlibCompressFilter`.

    Packets that are not valid zlib streams are forwarded unchanged when
    ``passthrough_invalid`` is True.
    """

    type_name = "zlib-decompress"

    def __init__(self, passthrough_invalid: bool = False,
                 name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.passthrough_invalid = passthrough_invalid
        self.invalid_packets = 0

    def transform_packet(self, packet: bytes):
        try:
            return zlib.decompress(packet)
        except zlib.error:
            self.invalid_packets += 1
            if self.passthrough_invalid:
                return packet
            raise


class XorCipherFilter(PacketFilter):
    """XOR every payload byte with a repeating key.

    Symmetric: inserting the same filter on both sides of a link round-trips
    the data.  This is a stand-in for the paper's mention of security
    services as adaptable middleware components, not a real cipher.
    """

    type_name = "xor-cipher"

    def __init__(self, key: bytes = b"rapidware", name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if not key:
            raise ValueError("key must be non-empty")
        self.key = bytes(key)

    def transform_packet(self, packet: bytes) -> bytes:
        key = self.key
        return bytes(byte ^ key[i % len(key)] for i, byte in enumerate(packet))
