"""Sequencing filters: stamping, duplicate suppression, reordering repair.

Pavilion's collaborative protocols attach sequence numbers to multicast
content (the "SeqNum" in Figure 1); these filters provide that service as
composable chain elements and clean up the artefacts of lossy/multipath
delivery (duplicates, reordering) before data reaches the application.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.filter import PacketFilter
from ..media.packetizer import MediaPacket, MediaPacketError, TYPE_CONTROL


class SequenceStamperFilter(PacketFilter):
    """Wrap every payload in a :class:`MediaPacket` with a fresh sequence number.

    Useful when the upstream produces raw payloads (e.g. HTTP content
    chunks) that downstream components — FEC, gap detection, reordering —
    expect to be sequenced.
    """

    type_name = "sequence-stamper"

    def __init__(self, media_type: int = TYPE_CONTROL, start_sequence: int = 0,
                 name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.media_type = media_type
        self._next_sequence = start_sequence

    def transform_packet(self, packet: bytes) -> bytes:
        stamped = MediaPacket(sequence=self._next_sequence, timestamp_ms=0,
                              payload=packet, media_type=self.media_type)
        self._next_sequence += 1
        return stamped.pack()


class DuplicateSuppressorFilter(PacketFilter):
    """Drop media packets whose sequence number has already been seen.

    Multicast over overlapping cells (or FEC repair plus late arrival) can
    deliver the same packet twice; the application should see it once.
    """

    type_name = "duplicate-suppressor"

    def __init__(self, history: int = 4096, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if history < 1:
            raise ValueError("history must be >= 1")
        self.history = history
        self._seen: "dict[int, None]" = {}
        self.duplicates_dropped = 0
        self.non_media = 0

    def transform_packet(self, packet: bytes) -> Optional[bytes]:
        try:
            media = MediaPacket.unpack(packet)
        except MediaPacketError:
            self.non_media += 1
            return packet
        if media.sequence in self._seen:
            self.duplicates_dropped += 1
            return None
        self._seen[media.sequence] = None
        if len(self._seen) > self.history:
            oldest = next(iter(self._seen))
            del self._seen[oldest]
        return packet


class ReorderingFilter(PacketFilter):
    """Re-emit media packets in sequence order using a small playout window.

    Packets are buffered until either the next expected sequence number
    arrives or the window fills, at which point the stream skips forward
    (the missing packet is declared lost).  This mirrors the playout buffer
    a real-time audio receiver runs.
    """

    type_name = "reordering"

    def __init__(self, window: int = 16, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._pending: "dict[int, bytes]" = {}
        self._next_expected = 0
        self.packets_skipped = 0
        self.non_media = 0

    def transform_packet(self, packet: bytes) -> List[bytes]:
        try:
            media = MediaPacket.unpack(packet)
        except MediaPacketError:
            self.non_media += 1
            return [packet]
        if media.sequence < self._next_expected:
            # Late packet for a position we already gave up on.
            return []
        self._pending[media.sequence] = packet
        return self._drain()

    def _drain(self) -> List[bytes]:
        out: List[bytes] = []
        while True:
            if self._next_expected in self._pending:
                out.append(self._pending.pop(self._next_expected))
                self._next_expected += 1
                continue
            if len(self._pending) >= self.window:
                # Give up on the missing packet and skip ahead.
                self.packets_skipped += 1
                self._next_expected += 1
                continue
            return out

    def finalize_packets(self) -> List[bytes]:
        """Flush everything still pending, in sequence order."""
        out = [self._pending[sequence] for sequence in sorted(self._pending)]
        self._pending.clear()
        return out
