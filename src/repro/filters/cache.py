"""Content caching filters for memory-limited handheld devices.

Pavilion's proxy duties include "data caching for memory-limited handheld
devices" (Pocket Pavilion): the proxy remembers recently delivered resources
so a handheld that revisits a page (or rejoins after a disconnection) can be
served from the proxy instead of refetching across the wired network.

:class:`LruContentCache` is the storage policy (size-bounded LRU keyed by
URL); :class:`BrowseCacheFilter` is the composable filter that watches
Pavilion content messages flowing through a proxy chain and populates the
cache as a side effect, so caching can be switched on and off at run time
like every other proxy service.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..core.filter import PacketFilter


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for a content cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_stored: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruContentCache:
    """A size-bounded least-recently-used cache of (url -> content) entries."""

    def __init__(self, capacity_bytes: int = 4 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._size = 0
        self.stats = CacheStats()

    def put(self, url: str, body: bytes) -> None:
        """Insert (or refresh) an entry, evicting LRU entries as needed.

        Objects larger than the whole cache are not stored at all.
        """
        body = bytes(body)
        if len(body) > self.capacity_bytes:
            return
        if url in self._entries:
            self._size -= len(self._entries.pop(url))
        self._entries[url] = body
        self._size += len(body)
        self.stats.insertions += 1
        while self._size > self.capacity_bytes:
            _old_url, old_body = self._entries.popitem(last=False)
            self._size -= len(old_body)
            self.stats.evictions += 1
        self.stats.bytes_stored = self._size

    def get(self, url: str) -> Optional[bytes]:
        """Return the cached body for ``url`` (refreshing recency), or None."""
        if url not in self._entries:
            self.stats.misses += 1
            return None
        body = self._entries.pop(url)
        self._entries[url] = body  # most recently used
        self.stats.hits += 1
        return body

    def contains(self, url: str) -> bool:
        return url in self._entries

    def urls(self) -> "list[str]":
        """Cached URLs from least to most recently used."""
        return list(self._entries)

    @property
    def size_bytes(self) -> int:
        return self._size

    def __len__(self) -> int:
        return len(self._entries)


class BrowseCacheFilter(PacketFilter):
    """Populate a content cache from the browse messages flowing by.

    The filter forwards every packet unchanged; whenever a Pavilion content
    message passes through, its body is stored in the attached cache so that
    a later ``serve(url)`` (e.g. for a reconnecting handheld) needs no
    upstream fetch.
    """

    type_name = "browse-cache"

    def __init__(self, cache: Optional[LruContentCache] = None,
                 name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.cache = cache if cache is not None else LruContentCache()
        self.content_messages_seen = 0
        self.non_browse_packets = 0

    def transform_packet(self, packet: bytes) -> bytes:
        # Imported lazily: the filter library must stay importable without
        # the Pavilion layer (which itself composes filters from this
        # package), so the dependency only materialises when browse traffic
        # actually flows through the filter.
        from ..pavilion.browser import (
            MESSAGE_CONTENT,
            BrowseMessage,
            BrowserProtocolError,
        )

        try:
            message = BrowseMessage.unpack(packet)
        except BrowserProtocolError:
            self.non_browse_packets += 1
            return packet
        if message.message_type == MESSAGE_CONTENT:
            self.content_messages_seen += 1
            self.cache.put(message.url, message.body)
        return packet

    def serve(self, url: str) -> Optional[bytes]:
        """Serve a cached body (None on a miss) — the proxy-side lookup."""
        return self.cache.get(url)

    def describe(self) -> dict:
        info = super().describe()
        info["cache"] = {
            "entries": len(self.cache),
            "bytes": self.cache.size_bytes,
            "hit_ratio": round(self.cache.stats.hit_ratio, 3),
        }
        return info
