"""Observation filters: taps, counters, and rate limiting.

RAPIDware observers need a way to watch a stream without modifying it; the
tap filters below forward everything unchanged while exposing counters (and
optional callbacks) that observer raplets poll.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Deque, Optional

from collections import deque

from ..core.filter import Filter, PacketFilter
from ..media.packetizer import MediaPacket, MediaPacketError


class ByteCounterFilter(Filter):
    """Counts bytes and chunks without modifying the stream."""

    type_name = "byte-counter"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.total_bytes = 0
        self.total_chunks = 0

    def transform(self, chunk: bytes) -> bytes:
        self.total_bytes += len(chunk)
        self.total_chunks += 1
        return chunk


class PacketTapFilter(PacketFilter):
    """Forwards packets unchanged, invoking a callback for each one.

    Observer raplets attach here to watch sequence numbers, measure packet
    rates, or copy traffic into a trace, all without perturbing the chain.
    """

    type_name = "packet-tap"

    def __init__(self, callback: Optional[Callable[[bytes], None]] = None,
                 name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.callback = callback
        self.packets_seen = 0
        self.bytes_seen = 0

    def transform_packet(self, packet: bytes) -> bytes:
        self.packets_seen += 1
        self.bytes_seen += len(packet)
        if self.callback is not None:
            try:
                self.callback(packet)
            except Exception:  # noqa: BLE001 - observers must not break the chain
                self.stats.record_error()
        return packet


class SequenceGapTapFilter(PacketFilter):
    """Tracks media sequence numbers and reports gaps (lost packets).

    Maintains a sliding window of recent sequence observations so an
    observer raplet can compute a *recent* loss rate, which is what drives
    the paper's "insert FEC when losses rise" adaptation.
    """

    type_name = "sequence-gap-tap"

    def __init__(self, window: int = 200, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._lock = threading.Lock()
        self._recent: Deque[int] = deque(maxlen=window)
        self.highest_sequence = -1
        self.packets_seen = 0
        self.non_media = 0

    def transform_packet(self, packet: bytes) -> bytes:
        try:
            media = MediaPacket.unpack(packet)
        except MediaPacketError:
            self.non_media += 1
            return packet
        with self._lock:
            self.packets_seen += 1
            self._recent.append(media.sequence)
            if media.sequence > self.highest_sequence:
                self.highest_sequence = media.sequence
        return packet

    def recent_loss_rate(self) -> float:
        """Estimated loss rate over the recent window of observed packets.

        Computed as 1 - observed/spanned, where *spanned* is the range of
        sequence numbers covered by the window.
        """
        with self._lock:
            if len(self._recent) < 2:
                return 0.0
            observed = len(set(self._recent))
            span = max(self._recent) - min(self._recent) + 1
        if span <= 0:
            return 0.0
        return max(0.0, 1.0 - observed / span)


class RateLimiterFilter(Filter):
    """Token-bucket rate limiter (bytes per second).

    Models a constrained wireless uplink inside a chain, and gives the
    adaptive examples a knob that observers can tighten or relax.
    """

    type_name = "rate-limiter"

    def __init__(self, bytes_per_second: float = 250_000.0,
                 burst_bytes: Optional[float] = None,
                 name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if bytes_per_second <= 0:
            raise ValueError("bytes_per_second must be positive")
        self.bytes_per_second = float(bytes_per_second)
        self.burst_bytes = float(burst_bytes if burst_bytes is not None
                                 else bytes_per_second / 10.0)
        self._tokens = self.burst_bytes
        self._last_refill = time.monotonic()
        self.total_wait_s = 0.0

    def transform(self, chunk: bytes) -> bytes:
        self._consume(len(chunk))
        return chunk

    def _consume(self, nbytes: int) -> None:
        while True:
            now = time.monotonic()
            elapsed = now - self._last_refill
            self._last_refill = now
            self._tokens = min(self.burst_bytes,
                               self._tokens + elapsed * self.bytes_per_second)
            if self._tokens >= nbytes:
                self._tokens -= nbytes
                return
            deficit = nbytes - self._tokens
            wait = deficit / self.bytes_per_second
            self.total_wait_s += wait
            if self._stop_event.wait(wait):
                return
