"""Transcoding filters for resource-limited mobile hosts.

Pavilion/RAPIDware proxies transcode streams "to reduce bandwidth and load
on mobile clients".  These filters operate on the sequenced media packets
produced by :mod:`repro.media.packetizer`:

* :class:`AudioDownsampleFilter` — drop PCM frames to reduce the sample rate;
* :class:`AudioMonoFilter` — mix stereo down to mono;
* :class:`AudioRequantizeFilter` — reduce 16-bit samples to 8-bit;
* :class:`VideoBFrameDropFilter` — drop B frames from a GOP video stream;
* :class:`VideoFrameThinningFilter` — keep only every N-th frame.

Each transcoder preserves sequence numbers and timestamps so downstream
statistics (and FEC grouping) keep working on the transcoded stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.filter import PacketFilter
from ..media.packetizer import MediaPacket, MediaPacketError, TYPE_AUDIO, TYPE_VIDEO
from ..media.video import FRAME_B


class MediaPacketFilter(PacketFilter):
    """Base class for filters that transform :class:`MediaPacket` payloads.

    Non-media packets (anything that fails to parse) are passed through
    unchanged so these filters can coexist with FEC and control traffic.
    """

    type_name = "media-filter"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.non_media_packets = 0

    def transform_packet(self, packet: bytes):
        try:
            media = MediaPacket.unpack(packet)
        except MediaPacketError:
            self.non_media_packets += 1
            return packet
        result = self.transform_media(media)
        if result is None:
            return None
        if isinstance(result, MediaPacket):
            return result.pack()
        return [item.pack() for item in result]

    def transform_media(self, packet: MediaPacket):
        """Transform one media packet; return a packet, a list, or None."""
        raise NotImplementedError


class AudioDownsampleFilter(MediaPacketFilter):
    """Reduce the audio sample rate by an integer factor.

    With the paper's 8 kHz stereo format and ``factor=2`` the output needs
    half the bandwidth; the mobile host interpolates on playback.
    """

    type_name = "audio-downsample"

    def __init__(self, factor: int = 2, channels: int = 2,
                 sample_width: int = 1, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if factor < 1:
            raise ValueError("factor must be >= 1")
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if sample_width not in (1, 2):
            raise ValueError("sample_width must be 1 or 2")
        self.factor = factor
        self.channels = channels
        self.sample_width = sample_width

    def transform_media(self, packet: MediaPacket) -> MediaPacket:
        if packet.media_type != TYPE_AUDIO or self.factor == 1:
            return packet
        frame_size = self.channels * self.sample_width
        usable = len(packet.payload) - (len(packet.payload) % frame_size)
        frames = np.frombuffer(packet.payload[:usable], dtype=np.uint8)
        frames = frames.reshape(-1, frame_size)
        kept = frames[::self.factor].reshape(-1)
        return MediaPacket(sequence=packet.sequence,
                           timestamp_ms=packet.timestamp_ms,
                           payload=kept.tobytes(),
                           media_type=packet.media_type,
                           marker=packet.marker)


class AudioMonoFilter(MediaPacketFilter):
    """Mix interleaved stereo PCM down to a single channel."""

    type_name = "audio-mono"

    def __init__(self, sample_width: int = 1, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if sample_width not in (1, 2):
            raise ValueError("sample_width must be 1 or 2")
        self.sample_width = sample_width

    def transform_media(self, packet: MediaPacket) -> MediaPacket:
        if packet.media_type != TYPE_AUDIO:
            return packet
        dtype = np.uint8 if self.sample_width == 1 else np.dtype("<i2")
        frame_bytes = 2 * self.sample_width
        usable = len(packet.payload) - (len(packet.payload) % frame_bytes)
        samples = np.frombuffer(packet.payload[:usable], dtype=dtype)
        stereo = samples.reshape(-1, 2).astype(np.int32)
        mono = ((stereo[:, 0] + stereo[:, 1]) // 2).astype(dtype)
        return MediaPacket(sequence=packet.sequence,
                           timestamp_ms=packet.timestamp_ms,
                           payload=mono.tobytes(),
                           media_type=packet.media_type,
                           marker=packet.marker)


class AudioRequantizeFilter(MediaPacketFilter):
    """Convert 16-bit signed PCM to 8-bit unsigned PCM (halves the bitrate)."""

    type_name = "audio-requantize"

    def transform_media(self, packet: MediaPacket) -> MediaPacket:
        if packet.media_type != TYPE_AUDIO:
            return packet
        usable = len(packet.payload) - (len(packet.payload) % 2)
        samples = np.frombuffer(packet.payload[:usable], dtype="<i2").astype(np.int32)
        as_uint8 = ((samples + 32768) >> 8).astype(np.uint8)
        return MediaPacket(sequence=packet.sequence,
                           timestamp_ms=packet.timestamp_ms,
                           payload=as_uint8.tobytes(),
                           media_type=packet.media_type,
                           marker=packet.marker)


class VideoBFrameDropFilter(MediaPacketFilter):
    """Drop B frames from a GOP video stream.

    The classic low-bandwidth transcode: I and P frames suffice to decode a
    (choppier) stream, and B frames are both the most numerous and the least
    important frames in a GOP.
    """

    type_name = "video-bframe-drop"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.frames_dropped = 0

    def transform_media(self, packet: MediaPacket) -> Optional[MediaPacket]:
        if packet.media_type != TYPE_VIDEO:
            return packet
        if packet.marker == FRAME_B:
            self.frames_dropped += 1
            return None
        return packet


class VideoFrameThinningFilter(MediaPacketFilter):
    """Keep only every N-th video frame (a crude frame-rate reducer)."""

    type_name = "video-frame-thinning"

    def __init__(self, keep_every: int = 2, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if keep_every < 1:
            raise ValueError("keep_every must be >= 1")
        self.keep_every = keep_every
        self._seen = 0
        self.frames_dropped = 0

    def transform_media(self, packet: MediaPacket) -> Optional[MediaPacket]:
        if packet.media_type != TYPE_VIDEO:
            return packet
        position = self._seen
        self._seen += 1
        if position % self.keep_every == 0:
            return packet
        self.frames_dropped += 1
        return None
