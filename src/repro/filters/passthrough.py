"""Trivial filters: pass-through, counting, and delay.

A "null" filter that forwards data unmodified is useful for three things:
measuring the overhead of the composition mechanism itself (experiment E6),
padding chains to a given length in benchmarks, and serving as the simplest
possible example of the Filter API.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core.filter import Filter, PacketFilter


class PassthroughFilter(Filter):
    """Forwards every byte chunk unchanged."""

    type_name = "passthrough"

    def transform(self, chunk: bytes) -> bytes:
        return chunk

    def transform_chunks(self, chunks, outputs) -> None:
        # Identity fused over the batch: one extend instead of a per-chunk
        # transform() round-trip.  E6 measures the composition mechanism
        # through chains of this filter, so its hop cost is pure plumbing.
        self._batch_in_bytes += sum(map(len, chunks))
        self._batch_in_chunks += len(chunks)
        outputs.extend(chunks)


class PacketPassthroughFilter(PacketFilter):
    """Forwards every framed packet unchanged (reframing it on the way)."""

    type_name = "packet-passthrough"

    def transform_packet(self, packet: bytes) -> bytes:
        return packet


class UppercaseFilter(Filter):
    """Uppercases ASCII text — the "hello world" of stream filters.

    Used by the quickstart example to make the effect of dynamic insertion
    visible to the naked eye.
    """

    type_name = "uppercase"

    def transform(self, chunk: bytes) -> bytes:
        # Input may be a memoryview (zero-copy data path); bytes() it first.
        return bytes(chunk).upper()


class DelayFilter(Filter):
    """Adds a fixed processing delay per chunk (models a slow transcoder)."""

    type_name = "delay"

    def __init__(self, delay_s: float = 0.001, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        self.delay_s = delay_s

    def transform(self, chunk: bytes) -> bytes:
        if self.delay_s:
            time.sleep(self.delay_s)
        return chunk
