"""repro.ingress — an HTTP/WebSocket front door onto composable proxies.

The paper's proxies assume both endpoints already speak the framework's
stream abstractions.  This package removes that assumption: ordinary
network clients (``curl``, a browser, any WebSocket library) connect
over HTTP/1.1 and each streaming connection becomes one real stream in
a :class:`~repro.core.proxy.Proxy`, flowing through the same filter
chains — FEC encoders, transcoders, rate monitors — as every other
stream.

Layers, bottom to top:

* :mod:`~repro.ingress.http` / :mod:`~repro.ingress.websocket` —
  stdlib-only wire codecs (chunked HTTP/1.1 and RFC 6455);
* :mod:`~repro.ingress.bridge` — :class:`IngressStreamBridge`, pairing
  a push-style :class:`IngressSource` with a pull-style
  :class:`IngressSink` around one proxy stream, with awaitable
  back-pressure in both directions;
* :mod:`~repro.ingress.server` — :class:`IngressServer`, routing
  ``POST /stream`` and WebSocket upgrades onto fresh bridges.

The servers run on any engine (the bridge endpoints work threaded or
cooperative), but pair naturally with ``REPRO_ENGINE=asyncio`` where
the ingress event loop and the filter scheduler share one process
without a thread per stream.
"""

from .bridge import (
    DEFAULT_MAX_ITEMS,
    IngressSink,
    IngressSource,
    IngressStreamBridge,
)
from .http import (
    CHUNKED_EOF,
    HttpProtocolError,
    HttpRequest,
    encode_chunk,
    encode_response_head,
    read_body,
    read_request,
)
from .server import IngressServer
from .websocket import (
    OP_BINARY,
    OP_CLOSE,
    OP_CONT,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    FrameParser,
    WebSocketProtocolError,
    accept_key,
    close_payload,
    encode_frame,
)

__all__ = [
    # bridge
    "DEFAULT_MAX_ITEMS",
    "IngressSource",
    "IngressSink",
    "IngressStreamBridge",
    # http codec
    "HttpProtocolError",
    "HttpRequest",
    "read_request",
    "read_body",
    "encode_chunk",
    "CHUNKED_EOF",
    "encode_response_head",
    # websocket codec
    "OP_CONT",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "WebSocketProtocolError",
    "accept_key",
    "encode_frame",
    "close_payload",
    "FrameParser",
    # server
    "IngressServer",
]
