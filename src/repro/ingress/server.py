"""The HTTP/WebSocket front door: real network clients as proxy streams.

:class:`IngressServer` listens with ``asyncio.start_server`` and turns
each streaming client into one proxy stream via
:class:`~repro.ingress.bridge.IngressStreamBridge`:

* ``POST /stream`` — the request body (chunked transfer or
  Content-Length) flows through the proxy's filter chain and the chain's
  output streams back as the chunked response, concurrently, so a client
  can pipe audio in and read the proxied result with plain ``curl``;
* ``GET /stream`` with ``Upgrade: websocket`` — each binary message in
  becomes one chain payload; each chain output payload comes back as one
  binary message;
* ``GET /healthz`` — liveness JSON; ``GET /`` — a usage page.

A client disconnect mid-stream aborts its bridge — the proxy stream is
torn down exactly as when a mobile receiver leaves the wireless cell,
and every other client's stream keeps running.  Per-stream filters come
from the server's ``filter_factory`` so each client gets fresh filter
instances (FEC state is per-stream).
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Iterable, Optional

from .bridge import DEFAULT_MAX_ITEMS, IngressStreamBridge
from .http import (
    CHUNKED_EOF,
    HttpProtocolError,
    HttpRequest,
    encode_chunk,
    encode_response_head,
    read_body,
    read_request,
)
from .websocket import (
    OP_BINARY,
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    FrameParser,
    WebSocketProtocolError,
    accept_key,
    close_payload,
    encode_frame,
)

__all__ = ["IngressServer"]

_INDEX_BODY = b"""\
repro ingress: composable proxy filters behind HTTP.

  POST /stream   request body -> filter chain -> chunked response
  GET  /stream   (Upgrade: websocket) binary message <-> chain payload
  GET  /healthz  liveness

Example:
  curl -s -N --data-binary @file http://HOST:PORT/stream
"""


class IngressServer:
    """Serve a proxy's filter chains to HTTP and WebSocket clients.

    ``filter_factory`` is called once per connecting client and returns
    the fresh filter instances for that client's chain (default: an
    unfiltered passthrough stream).  ``frame_stream`` selects framed
    (packet) chains, for filters such as the FEC pair that operate on
    packets rather than raw bytes.
    """

    def __init__(self, proxy, host: str = "127.0.0.1", port: int = 0,
                 filter_factory: Optional[Callable[[], Iterable]] = None,
                 frame_stream: bool = False,
                 max_pending: int = DEFAULT_MAX_ITEMS,
                 max_buffered: int = DEFAULT_MAX_ITEMS) -> None:
        self.proxy = proxy
        self.host = host
        self._requested_port = port
        self.filter_factory = filter_factory or (lambda: ())
        self.frame_stream = frame_stream
        self.max_pending = max_pending
        self.max_buffered = max_buffered
        self._server: Optional[asyncio.base_events.Server] = None
        self._client_seq = 0

    # ----------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The bound port (resolves 0 to the ephemeral port once started)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting clients (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self._requested_port)

    async def stop(self) -> None:
        """Stop accepting and close the listening sockets (idempotent)."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------- routing

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpProtocolError:
                await self._respond(writer, 400, b"bad request\n")
                return
            if request is None:
                return
            if request.path == "/healthz":
                await self._respond(
                    writer, 200, b'{"status": "ok"}\n',
                    content_type="application/json")
            elif request.path == "/" and request.method == "GET":
                await self._respond(writer, 200, _INDEX_BODY)
            elif request.path == "/stream":
                if request.wants_websocket:
                    await self._serve_websocket(request, reader, writer)
                elif request.method == "POST":
                    await self._serve_post(request, reader, writer)
                elif request.method == "GET":
                    await self._respond(
                        writer, 426, b"use POST or a websocket upgrade\n",
                        extra_headers=(("Upgrade", "websocket"),))
                else:
                    await self._respond(writer, 405, b"method not allowed\n")
            else:
                await self._respond(writer, 404, b"not found\n")
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished; bridges were aborted by their handlers
        except asyncio.CancelledError:
            return  # server teardown; end the handler task quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body: bytes, content_type: str = "text/plain",
                       extra_headers: Iterable = ()) -> None:
        headers = [("Content-Type", content_type),
                   ("Content-Length", str(len(body))),
                   ("Connection", "close"), *extra_headers]
        writer.write(encode_response_head(status, headers) + body)
        await writer.drain()

    def _make_bridge(self, kind: str) -> IngressStreamBridge:
        self._client_seq += 1
        return IngressStreamBridge(
            self.proxy, name=f"{kind}-{self._client_seq}",
            filters=self.filter_factory(),
            frame_stream=self.frame_stream,
            max_pending=self.max_pending,
            max_buffered=self.max_buffered)

    # ---------------------------------------------------------- POST route

    async def _serve_post(self, request: HttpRequest,
                          reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """Stream the request body through a chain into the response.

        Feeding the body and emitting the response run as concurrent
        tasks: with both directions bounded (``max_pending`` items in,
        ``max_buffered`` out) a sequential read-all-then-respond loop
        would deadlock on any body larger than the two queues — exactly
        the scenario a streaming proxy exists for.
        """
        bridge = self._make_bridge("http")
        writer.write(encode_response_head(200, [
            ("Content-Type", "application/octet-stream"),
            ("Transfer-Encoding", "chunked"),
            ("Connection", "close")]))

        async def feed() -> None:
            async for chunk in read_body(request, reader):
                if not await bridge.send(chunk, timeout=30.0):
                    return
            bridge.close_input()

        async def emit() -> None:
            while True:
                payload = await bridge.receive()
                if payload is None:
                    break
                writer.write(encode_chunk(payload))
                await writer.drain()  # TCP back-pressure from the client
            writer.write(CHUNKED_EOF)
            await writer.drain()

        try:
            await asyncio.gather(feed(), emit())
        except (ConnectionError, asyncio.IncompleteReadError,
                HttpProtocolError, TimeoutError):
            # Disconnect (or a malformed tail) mid-stream: drop the
            # stream, exactly like a receiver leaving the cell.
            bridge.abort()
            raise
        finally:
            bridge.abort()  # idempotent; normal completion cleans up too

    # ----------------------------------------------------- WebSocket route

    async def _serve_websocket(self, request: HttpRequest,
                               reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        """One WebSocket client <-> one proxy stream, full duplex."""
        key = request.header("sec-websocket-key")
        if not key:
            await self._respond(writer, 400, b"missing Sec-WebSocket-Key\n")
            return
        writer.write(encode_response_head(101, [
            ("Upgrade", "websocket"),
            ("Connection", "Upgrade"),
            ("Sec-WebSocket-Accept", accept_key(key))]))
        await writer.drain()

        bridge = self._make_bridge("ws")
        parser = FrameParser(require_masked=True)
        send_lock = asyncio.Lock()  # pongs and payloads share the socket

        async def pump_in() -> None:
            while True:
                data = await reader.read(65536)
                if not data:
                    bridge.close_input()
                    return
                for opcode, payload in parser.feed(data):
                    if opcode in (OP_BINARY, OP_TEXT):
                        await bridge.send(payload, timeout=30.0)
                    elif opcode == OP_PING:
                        async with send_lock:
                            writer.write(encode_frame(OP_PONG, payload))
                            await writer.drain()
                    elif opcode == OP_CLOSE:
                        bridge.close_input()
                        return
                    # OP_PONG: heartbeat reply, nothing to do

        async def pump_out() -> None:
            while True:
                payload = await bridge.receive()
                if payload is None:
                    break
                async with send_lock:
                    writer.write(encode_frame(OP_BINARY, payload))
                    # drain() under the lock: a slow reader back-pressures
                    # us here, receive() stops draining the sink, and the
                    # engine parks the upstream chain on its high-water
                    # mark — bounded memory end to end.
                    await writer.drain()
            async with send_lock:
                writer.write(encode_frame(OP_CLOSE, close_payload()))
                await writer.drain()

        try:
            await asyncio.gather(pump_in(), pump_out())
        except (ConnectionError, asyncio.IncompleteReadError,
                WebSocketProtocolError, TimeoutError):
            bridge.abort()
            raise
        finally:
            bridge.abort()

    # ----------------------------------------------------------- inspection

    def describe(self) -> dict:
        """A JSON-friendly summary (used by tests and the example)."""
        return {
            "host": self.host,
            "port": self.port,
            "frame_stream": self.frame_stream,
            "proxy": getattr(self.proxy, "name", None),
            "clients_seen": self._client_seq,
        }


def _json_default(obj):  # pragma: no cover - debugging aid
    return repr(obj)


def describe_json(server: IngressServer) -> str:
    """The server summary as JSON text (debugging/ops convenience)."""
    return json.dumps(server.describe(), default=_json_default)
