"""A minimal stdlib HTTP/1.1 codec for the ingress front door.

aiohttp is deliberately not a dependency — the container bakes in only
the scientific toolchain — so the front door speaks just enough
HTTP/1.1 itself: request-line and header parsing on the way in, chunked
transfer framing in both directions (the streaming transport a proxy
front door actually needs), and status-line/header assembly on the way
out.  Everything operates on ``asyncio.StreamReader`` /
``StreamWriter`` pairs from ``asyncio.start_server``.

Limits are deliberately tight (this is a demo-grade ingress, not a
hardened reverse proxy): header blocks over ``MAX_HEADER_BYTES`` and
chunks over ``MAX_CHUNK_BYTES`` abort the connection with
:class:`HttpProtocolError`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Iterable, Optional, Tuple

__all__ = [
    "HttpProtocolError",
    "HttpRequest",
    "read_request",
    "read_body",
    "encode_chunk",
    "CHUNKED_EOF",
    "encode_response_head",
    "REASONS",
]

#: Upper bound on the request line plus all headers.
MAX_HEADER_BYTES = 32 * 1024
#: Upper bound on one chunked-transfer chunk (and on Content-Length bodies
#: read in one piece per read call).
MAX_CHUNK_BYTES = 4 * 1024 * 1024

#: Terminator of a chunked-transfer body (zero-size chunk, no trailers).
CHUNKED_EOF = b"0\r\n\r\n"

#: The subset of reason phrases the ingress routes actually emit.
REASONS: Dict[int, str] = {
    200: "OK",
    101: "Switching Protocols",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    426: "Upgrade Required",
    500: "Internal Server Error",
}


class HttpProtocolError(Exception):
    """The peer sent something the minimal codec refuses to parse."""


@dataclass
class HttpRequest:
    """One parsed request head (the body stays on the reader)."""

    method: str
    target: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)

    def header(self, name: str, default: str = "") -> str:
        """A header value by case-insensitive name (``default`` if absent)."""
        return self.headers.get(name.lower(), default)

    @property
    def path(self) -> str:
        """The request target without its query string."""
        return self.target.split("?", 1)[0]

    @property
    def wants_websocket(self) -> bool:
        """True when the request asks to upgrade to a WebSocket."""
        return ("websocket" in self.header("upgrade").lower()
                and "upgrade" in self.header("connection").lower())

    @property
    def chunked(self) -> bool:
        """True when the body uses chunked transfer encoding."""
        return "chunked" in self.header("transfer-encoding").lower()

    @property
    def content_length(self) -> Optional[int]:
        """The declared body length, or None when absent/chunked."""
        value = self.header("content-length")
        if not value or self.chunked:
            return None
        try:
            length = int(value)
        except ValueError as exc:
            raise HttpProtocolError(f"bad Content-Length: {value!r}") from exc
        if length < 0:
            raise HttpProtocolError(f"bad Content-Length: {value!r}")
        return length


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request head off ``reader``.

    Returns None when the client closed the connection cleanly before
    sending anything; raises :class:`HttpProtocolError` on malformed or
    oversized input.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpProtocolError("connection closed mid-header") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpProtocolError("header block too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpProtocolError("header block too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise HttpProtocolError("undecodable header block") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpProtocolError(f"bad request line: {lines[0]!r}")
    method, target, version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpProtocolError(f"bad header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method=method.upper(), target=target,
                       version=version, headers=headers)


async def _read_chunked(reader: asyncio.StreamReader) -> AsyncIterator[bytes]:
    """Yield the data chunks of a chunked-transfer body."""
    while True:
        try:
            size_line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
            raise HttpProtocolError("connection closed mid-chunk") from exc
        size_text = size_line.strip().split(b";", 1)[0]  # ignore extensions
        try:
            size = int(size_text, 16)
        except ValueError as exc:
            raise HttpProtocolError(f"bad chunk size: {size_line!r}") from exc
        if size > MAX_CHUNK_BYTES:
            raise HttpProtocolError(f"chunk of {size} bytes exceeds limit")
        if size == 0:
            # Trailer section: skip to the blank line.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    return
        try:
            data = await reader.readexactly(size + 2)  # chunk + CRLF
        except asyncio.IncompleteReadError as exc:
            raise HttpProtocolError("connection closed mid-chunk") from exc
        yield data[:-2]


async def read_body(request: HttpRequest,
                    reader: asyncio.StreamReader,
                    chunk_size: int = 65536) -> AsyncIterator[bytes]:
    """Yield the request body as it arrives (chunked or Content-Length).

    A request with neither ``Transfer-Encoding: chunked`` nor a
    ``Content-Length`` yields nothing (this server never assumes
    read-until-close bodies).
    """
    if request.chunked:
        async for chunk in _read_chunked(reader):
            if chunk:
                yield chunk
        return
    length = request.content_length
    if not length:
        return
    remaining = length
    while remaining > 0:
        try:
            data = await reader.readexactly(min(chunk_size, remaining))
        except asyncio.IncompleteReadError as exc:
            raise HttpProtocolError("connection closed mid-body") from exc
        remaining -= len(data)
        yield data


def encode_chunk(data: bytes) -> bytes:
    """One chunked-transfer frame for ``data`` (b"" encodes the EOF frame)."""
    if not data:
        return CHUNKED_EOF
    return b"%x\r\n%s\r\n" % (len(data), data)


def encode_response_head(status: int,
                         headers: Iterable[Tuple[str, str]] = ()) -> bytes:
    """A status line plus headers, ready to write before any body bytes."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
