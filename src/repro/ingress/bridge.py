"""EndPoints bridging asyncio protocol handlers onto proxy streams.

An ingress connection (one HTTP request body, one WebSocket) becomes one
proxy stream: the protocol handler pushes received payloads into an
:class:`IngressSource` at the head of the chain and pops the chain's
output back out of an :class:`IngressSink` at the tail.  Both endpoints
are thread-safe meeting points between two worlds that must never block
each other:

* the *chain side* is pumped by whatever execution engine the proxy runs
  (threaded, event or asyncio — the ingress layer does not care);
* the *network side* is an asyncio coroutine that must never block its
  loop, so it talks to the endpoints through non-blocking calls plus the
  ``subscribe()`` listener hooks (awaited via
  :class:`repro.streams.awaitable.AsyncStreamEvent`).

Back-pressure works in both directions without dedicating a thread:

* inbound, :meth:`IngressSource.push` refuses beyond ``max_pending``
  items and the handler awaits room before reading more from the client
  socket — TCP back-pressure reaches the browser;
* outbound, :meth:`IngressSink.wants_input_pump` returns False while
  more than ``max_buffered`` items wait for a slow client, so the engine
  simply stops pumping the sink, the sink's DIS buffer fills, and the
  engines' high-water gating parks the whole upstream chain.

:class:`IngressStreamBridge` packages the pair with the
``proxy.add_stream`` wiring and the awaitable send/receive used by the
HTTP and WebSocket handlers in :mod:`repro.ingress.server`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Iterable, Optional

from ..core.endpoints import SinkEndPoint, SourceEndPoint
from ..streams.awaitable import AsyncStreamEvent

__all__ = ["IngressSource", "IngressSink", "IngressStreamBridge"]

#: Default bound on items queued toward the chain (source) and toward the
#: client (sink) before back-pressure engages.
DEFAULT_MAX_ITEMS = 64


class _IngressListenerMixin:
    """subscribe/unsubscribe hooks, equality-deduped, fired outside locks.

    The same contract as the detachable streams' listener mixin: listeners
    must be fast, must not call back into the endpoint, and fire on
    whatever thread caused the state change.
    """

    def _init_listeners(self) -> None:
        self._ingress_listeners: list = []

    def subscribe(self, listener) -> None:
        """Register ``listener`` to be called on queue state changes."""
        if listener not in self._ingress_listeners:
            self._ingress_listeners = [*self._ingress_listeners, listener]

    def unsubscribe(self, listener) -> None:
        """Remove a previously registered listener (missing is a no-op)."""
        self._ingress_listeners = [
            cb for cb in self._ingress_listeners if cb != listener]

    def _fire_ingress_listeners(self) -> None:
        for listener in self._ingress_listeners:
            try:
                listener()
            except Exception:  # noqa: BLE001 - a dying waiter must not
                pass           # break delivery to the remaining listeners


class IngressSource(_IngressListenerMixin, SourceEndPoint):
    """Chain source fed by an asyncio protocol handler.

    The handler pushes payloads with :meth:`push` (non-blocking; refused
    beyond ``max_pending``) and signals client end-of-stream with
    :meth:`close_input`.  Cooperative engines pump queued items without a
    thread; under the threaded engine ``produce`` blocks on the internal
    condition exactly like any other blocking source.
    """

    type_name = "ingress-source"

    #: Cooperative: ``produce`` only pops what the handler already pushed.
    cooperative_capable = True

    def __init__(self, name: Optional[str] = None, frame_output: bool = False,
                 max_pending: int = DEFAULT_MAX_ITEMS) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        super().__init__(name=name, frame_output=frame_output)
        self._init_listeners()
        self.max_pending = max_pending
        self._queue: Deque[bytes] = deque()
        self._cond = threading.Condition()
        self._input_closed = False

    # -- the network side (asyncio handler) --------------------------------

    def push(self, data: bytes) -> bool:
        """Queue one payload toward the chain (never blocks).

        Returns False — with nothing queued — when the queue is at
        ``max_pending`` or input was already closed; the caller should
        await a queue listener and retry (TCP back-pressure).
        """
        if data is None:
            raise ValueError("data must be bytes, not None")
        if not data:
            return True
        with self._cond:
            if self._input_closed or len(self._queue) >= self.max_pending:
                return False
            self._queue.append(bytes(data))
            self._cond.notify_all()
        self._notify_engine()
        self._fire_ingress_listeners()
        return True

    def close_input(self) -> None:
        """Signal client end-of-stream: the chain finishes after a drain."""
        with self._cond:
            if self._input_closed:
                return
            self._input_closed = True
            self._cond.notify_all()
        self._notify_engine()
        self._fire_ingress_listeners()

    def pending_items(self) -> int:
        """Number of pushed payloads not yet consumed by the chain."""
        with self._cond:
            return len(self._queue)

    def has_room(self) -> bool:
        """True when one more :meth:`push` would be accepted."""
        with self._cond:
            return (not self._input_closed
                    and len(self._queue) < self.max_pending)

    @property
    def input_closed(self) -> bool:
        """True once :meth:`close_input` has been called."""
        return self._input_closed

    # -- the chain side (engine) --------------------------------------------

    def wants_input_pump(self) -> bool:
        with self._cond:
            return bool(self._queue) or self._input_closed

    def produce(self) -> Optional[bytes]:
        if self.cooperative:
            # Never block: a queued payload, EOF, or nothing right now.
            popped = None
            with self._cond:
                if self._queue:
                    popped = self._queue.popleft()
                elif self._input_closed:
                    return None
            if popped is None:
                return b""
            self._fire_ingress_listeners()  # room freed: wake the handler
            return popped
        while not self._stop_event.is_set():
            with self._cond:
                if self._queue:
                    popped = self._queue.popleft()
                elif self._input_closed:
                    return None
                else:
                    self._cond.wait(0.1)
                    continue
            self._fire_ingress_listeners()
            return popped
        return None

    def stop(self, timeout: float = 5.0) -> None:
        # Unblock a threaded worker parked on the condition before joining.
        with self._cond:
            self._cond.notify_all()
        super().stop(timeout=timeout)


class IngressSink(_IngressListenerMixin, SinkEndPoint):
    """Chain sink drained by an asyncio protocol handler.

    The chain's output accumulates in a bounded outbound queue that the
    handler pops with :meth:`pop` (non-blocking) after awaiting a queue
    listener.  While the client is slower than the chain the queue fills
    to ``max_buffered`` and the sink stops asking to be pumped — the
    engines' existing high-water gating then parks the upstream chain, so
    a slow websocket reader costs zero threads and bounded memory.
    """

    type_name = "ingress-sink"

    #: Cooperative: ``consume`` only appends to the outbound queue.
    cooperative_capable = True

    def __init__(self, name: Optional[str] = None, expect_frames: bool = False,
                 max_buffered: int = DEFAULT_MAX_ITEMS) -> None:
        if max_buffered <= 0:
            raise ValueError("max_buffered must be positive")
        super().__init__(name=name, expect_frames=expect_frames)
        self._init_listeners()
        self.max_buffered = max_buffered
        self._out: Deque[bytes] = deque()
        self._cond = threading.Condition()

    # -- the chain side (engine) --------------------------------------------

    def wants_input_pump(self) -> bool:
        # Full outbound queue: decline the pump instead of buffering more.
        # pop() re-notifies the engine once the client catches up.
        with self._cond:
            if len(self._out) >= self.max_buffered:
                return False
        return super().wants_input_pump()

    def consume(self, data: bytes) -> None:
        if self.cooperative:
            with self._cond:
                self._out.append(bytes(data))
            self._fire_ingress_listeners()
            return
        # Threaded engine: this sink owns a thread, so honest blocking
        # back-pressure is available (stop-aware, like every endpoint).
        while not self._stop_event.is_set():
            with self._cond:
                if len(self._out) < self.max_buffered:
                    self._out.append(bytes(data))
                    break
                self._cond.wait(0.1)
        else:
            return
        self._fire_ingress_listeners()

    def finalize(self):
        result = super().finalize()
        self._fire_ingress_listeners()  # wake a handler awaiting EOF
        return result

    # -- the network side (asyncio handler) --------------------------------

    def pop(self) -> Optional[bytes]:
        """Take one output payload (never blocks); None when none queued."""
        with self._cond:
            if not self._out:
                return None
            popped = self._out.popleft()
            self._cond.notify_all()
        self._notify_engine()  # room freed: resume the pump
        return popped

    def buffered_items(self) -> int:
        """Number of output payloads awaiting the client."""
        with self._cond:
            return len(self._out)

    def has_output(self) -> bool:
        """True when :meth:`pop` would return a payload."""
        with self._cond:
            return bool(self._out)

    def drained(self) -> bool:
        """True once the stream ended and every payload has been popped."""
        return self.eof_seen.is_set() and not self.has_output()


class IngressStreamBridge:
    """One ingress client wired as one proxy stream, with awaitable I/O.

    Builds the :class:`IngressSource` → filters → :class:`IngressSink`
    chain on ``proxy`` and exposes the coroutine-shaped API the protocol
    handlers use: :meth:`send` (awaits inbound room), :meth:`receive`
    (awaits chain output), :meth:`close_input` and :meth:`abort`.
    """

    def __init__(self, proxy, name: Optional[str] = None,
                 filters: Iterable = (),
                 frame_stream: bool = False,
                 max_pending: int = DEFAULT_MAX_ITEMS,
                 max_buffered: int = DEFAULT_MAX_ITEMS) -> None:
        self.proxy = proxy
        self.name = name or f"ingress-{id(self):x}"
        self.source = IngressSource(name=f"{self.name}-src",
                                    frame_output=frame_stream,
                                    max_pending=max_pending)
        self.sink = IngressSink(name=f"{self.name}-sink",
                                expect_frames=frame_stream,
                                max_buffered=max_buffered)
        self.control = proxy.add_stream(self.source, self.sink,
                                        name=self.name, auto_start=False)
        for filter_obj in filters:
            self.control.add(filter_obj)
        self.control.start()
        self._aborted = False

    # ------------------------------------------------------------- inbound

    async def send(self, data: bytes, timeout: Optional[float] = None) -> bool:
        """Push one payload toward the chain, awaiting queue room.

        Returns False when the queue stayed full for ``timeout`` seconds
        (or input was closed under us); never blocks the event loop.
        """
        if not data:
            return True
        if self.source.push(data):
            return True
        import asyncio

        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        with AsyncStreamEvent(self.source, loop=loop) as event:
            while True:
                if self.source.push(data):
                    return True
                if self.source.input_closed or self.source.finished:
                    return False
                wait_s = 0.5
                if deadline is not None:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        return False
                    wait_s = min(wait_s, remaining)
                await event.wait(wait_s)

    def close_input(self) -> None:
        """Propagate the client's end-of-stream into the chain."""
        self.source.close_input()

    # ------------------------------------------------------------ outbound

    async def receive(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Await the chain's next output payload; None at end-of-stream.

        Raises :class:`TimeoutError` when nothing arrives in ``timeout``
        seconds (a ``None`` return always means the stream really ended).
        """
        import asyncio

        payload = self.sink.pop()
        if payload is not None:
            return payload
        if self.sink.drained():
            return None
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        with AsyncStreamEvent(self.sink, loop=loop) as event:
            while True:
                payload = self.sink.pop()
                if payload is not None:
                    return payload
                if self.sink.drained():
                    return None
                wait_s = 0.5
                if deadline is not None:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"{self.name}: no output within {timeout}s")
                    wait_s = min(wait_s, remaining)
                await event.wait(wait_s)

    # ----------------------------------------------------------- lifecycle

    @property
    def finished(self) -> bool:
        """True once the whole chain has completed."""
        return self.sink.drained() or self.sink.finished

    def abort(self) -> None:
        """Tear the stream down now (client vanished mid-transfer).

        Idempotent.  Closes the inbound side and stops every chain
        element; whatever was in flight is discarded, exactly as when a
        receiver disappears from a wireless cell.
        """
        if self._aborted:
            return
        self._aborted = True
        self.source.close_input()
        # Break every input stream sink-first before stopping elements:
        # a chain jammed against a full buffer (the client stopped
        # reading, then vanished) has threads blocked mid-write, and
        # waking them now lets stop_element join quickly instead of
        # timing out per element.
        for element in reversed(self.control.elements()):
            try:
                element.dis.close()
            except Exception:  # noqa: BLE001 - best effort teardown
                pass
        self.control.shutdown()

    def wait_for_completion(self, timeout: Optional[float] = None) -> bool:
        """Block (a test helper, not for loops) until the chain finishes."""
        return self.control.wait_for_completion(timeout=timeout)
