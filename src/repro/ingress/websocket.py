"""A minimal stdlib RFC 6455 WebSocket codec.

Covers exactly what the ingress front door needs: the handshake accept
key, an incremental frame parser, and frame encoding for both roles —
the server side (unmasked out, masked in) and the client side (masked
out), so the tests and the README one-liners can speak to the server
with no external dependency.

Fragmentation is supported on the parse side (continuation frames are
reassembled per RFC 6455 §5.4); the encoder always emits single
unfragmented frames, which every peer must accept.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "OP_CONT",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "WebSocketProtocolError",
    "accept_key",
    "encode_frame",
    "close_payload",
    "FrameParser",
]

#: RFC 6455 §1.3 — the fixed GUID appended to the client key.
_ACCEPT_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPS = (OP_CLOSE, OP_PING, OP_PONG)

#: Upper bound on one (reassembled) message.
MAX_MESSAGE_BYTES = 16 * 1024 * 1024


class WebSocketProtocolError(Exception):
    """The peer violated the subset of RFC 6455 this codec enforces."""


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's key (RFC 6455 §4)."""
    digest = hashlib.sha1(client_key.strip().encode("ascii") + _ACCEPT_GUID)
    return base64.b64encode(digest.digest()).decode("ascii")


def _mask(payload: bytes, key: bytes) -> bytes:
    """Apply (or remove — XOR is its own inverse) a 4-byte frame mask."""
    if not payload:
        return payload
    repeated = (key * (len(payload) // 4 + 1))[:len(payload)]
    return bytes(a ^ b for a, b in zip(payload, repeated))


def encode_frame(opcode: int, payload: bytes = b"", fin: bool = True,
                 mask: bool = False) -> bytes:
    """One wire frame.  Servers send unmasked; clients must set ``mask``."""
    if opcode in _CONTROL_OPS and len(payload) > 125:
        raise WebSocketProtocolError("control frame payload exceeds 125 bytes")
    head = bytearray()
    head.append((0x80 if fin else 0x00) | (opcode & 0x0F))
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        return bytes(head) + key + _mask(payload, key)
    return bytes(head) + payload


def close_payload(code: int = 1000, reason: str = "") -> bytes:
    """The payload of a Close frame: status code plus optional reason."""
    return struct.pack("!H", code) + reason.encode("utf-8")[:123]


class FrameParser:
    """Incremental RFC 6455 frame parser (both masked and unmasked input).

    Feed arbitrary byte slices with :meth:`feed`; complete *messages* come
    out — data fragments are reassembled across continuation frames, and
    control frames (which may interleave with a fragmented message) are
    surfaced as soon as they complete.  Each yielded item is
    ``(opcode, payload)`` where ``opcode`` is the message's original
    opcode (never ``OP_CONT``).
    """

    def __init__(self, require_masked: bool = False) -> None:
        #: Servers set ``require_masked`` — RFC 6455 §5.1 obliges clients
        #: to mask every frame, and obliges servers to enforce it.
        self.require_masked = require_masked
        self._buffer = bytearray()
        self._fragments: List[bytes] = []
        self._fragment_opcode: Optional[int] = None

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Consume ``data``; return every message it completed."""
        self._buffer += data
        return list(self._drain())

    def _drain(self) -> Iterator[Tuple[int, bytes]]:
        while True:
            frame = self._parse_one()
            if frame is None:
                return
            fin, opcode, payload = frame
            if opcode in _CONTROL_OPS:
                if not fin:
                    raise WebSocketProtocolError(
                        "fragmented control frame")
                yield opcode, payload
                continue
            if opcode == OP_CONT:
                if self._fragment_opcode is None:
                    raise WebSocketProtocolError(
                        "continuation frame without a message in progress")
            else:
                if self._fragment_opcode is not None:
                    raise WebSocketProtocolError(
                        "new data frame while a message is in progress")
                self._fragment_opcode = opcode
            self._fragments.append(payload)
            if sum(map(len, self._fragments)) > MAX_MESSAGE_BYTES:
                raise WebSocketProtocolError("message exceeds size limit")
            if fin:
                message = b"".join(self._fragments)
                message_opcode = self._fragment_opcode
                self._fragments = []
                self._fragment_opcode = None
                yield message_opcode, message

    def _parse_one(self) -> Optional[Tuple[bool, int, bytes]]:
        """Pop one complete frame off the buffer, or None to await bytes."""
        buf = self._buffer
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        if first & 0x70:
            raise WebSocketProtocolError("unexpected RSV bits")
        fin = bool(first & 0x80)
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        if self.require_masked and not masked:
            raise WebSocketProtocolError("client frames must be masked")
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < 4:
                return None
            (length,) = struct.unpack_from("!H", buf, 2)
            offset = 4
        elif length == 127:
            if len(buf) < 10:
                return None
            (length,) = struct.unpack_from("!Q", buf, 2)
            offset = 10
        if length > MAX_MESSAGE_BYTES:
            raise WebSocketProtocolError("frame exceeds size limit")
        key = b""
        if masked:
            if len(buf) < offset + 4:
                return None
            key = bytes(buf[offset:offset + 4])
            offset += 4
        if len(buf) < offset + length:
            return None
        payload = bytes(buf[offset:offset + length])
        del buf[:offset + length]
        if masked:
            payload = _mask(payload, key)
        return fin, opcode, payload
