"""Synthetic GOP-structured video streams.

Section 3 of the paper motivates *stream-type-aware* filter insertion: an
FEC filter for video "may be specific to video streams (e.g., placing more
redundancy in I frames than in B frames)" and must therefore be inserted "at
a frame boundary in the stream".  To exercise that requirement without real
video hardware or codecs, this module generates an MPEG-like stream of typed
frames organised into groups of pictures (GOPs), with I frames much larger
than P and B frames — enough structure for boundary detection, prioritised
FEC, and B-frame-dropping transcoders to operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from .packetizer import MediaPacket, TYPE_VIDEO

#: Frame-type markers carried in :attr:`MediaPacket.marker`.
FRAME_I = 1
FRAME_P = 2
FRAME_B = 3

FRAME_TYPE_NAMES = {FRAME_I: "I", FRAME_P: "P", FRAME_B: "B"}


@dataclass(frozen=True)
class VideoFrame:
    """One encoded video frame."""

    index: int
    frame_type: int
    timestamp_ms: int
    payload: bytes

    @property
    def type_name(self) -> str:
        return FRAME_TYPE_NAMES[self.frame_type]

    @property
    def is_i_frame(self) -> bool:
        return self.frame_type == FRAME_I

    def to_packet(self) -> MediaPacket:
        """Convert the frame into a media packet (one frame per packet)."""
        return MediaPacket(sequence=self.index, timestamp_ms=self.timestamp_ms,
                           payload=self.payload, media_type=TYPE_VIDEO,
                           marker=self.frame_type)

    @classmethod
    def from_packet(cls, packet: MediaPacket) -> "VideoFrame":
        """Reconstruct a frame from a media packet produced by ``to_packet``."""
        return cls(index=packet.sequence, frame_type=packet.marker,
                   timestamp_ms=packet.timestamp_ms, payload=packet.payload)


@dataclass(frozen=True)
class GopPattern:
    """Structure of a group of pictures.

    The default ``IBBPBBPBB`` pattern (GOP length 9) with 30 frames/s and
    roughly 4:2:1 I:P:B frame sizes is typical of the late-1990s MPEG-1
    streams the paper's proxies transcoded.
    """

    length: int = 9
    p_interval: int = 3
    frames_per_second: int = 30
    i_frame_size: int = 6000
    p_frame_size: int = 3000
    b_frame_size: int = 1500

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("GOP length must be >= 1")
        if self.p_interval < 1:
            raise ValueError("p_interval must be >= 1")
        if self.frames_per_second < 1:
            raise ValueError("frames_per_second must be >= 1")
        if min(self.i_frame_size, self.p_frame_size, self.b_frame_size) < 1:
            raise ValueError("frame sizes must be positive")

    def frame_type_at(self, position: int) -> int:
        """Frame type for position ``position`` within a GOP."""
        if position % self.length == 0:
            return FRAME_I
        if position % self.p_interval == 0:
            return FRAME_P
        return FRAME_B

    def size_for(self, frame_type: int) -> int:
        if frame_type == FRAME_I:
            return self.i_frame_size
        if frame_type == FRAME_P:
            return self.p_frame_size
        return self.b_frame_size


class VideoSource:
    """Generate a deterministic GOP-structured frame sequence."""

    def __init__(self, pattern: GopPattern = GopPattern(), duration: float = 1.0,
                 seed: int = 0) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.pattern = pattern
        self.duration = duration
        self.seed = seed
        self.total_frames = int(round(duration * pattern.frames_per_second))

    def frame(self, index: int) -> VideoFrame:
        """Render frame ``index`` (deterministic given the seed)."""
        if not 0 <= index < self.total_frames:
            raise IndexError(f"frame index {index} outside [0, {self.total_frames})")
        frame_type = self.pattern.frame_type_at(index)
        size = self.pattern.size_for(frame_type)
        rng = np.random.default_rng(np.int64(self.seed) * 1_000_003 + index)
        payload = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        timestamp = int(round(index * 1000.0 / self.pattern.frames_per_second))
        return VideoFrame(index=index, frame_type=frame_type,
                          timestamp_ms=timestamp, payload=payload)

    def frames(self) -> Iterator[VideoFrame]:
        """Iterate over every frame of the stream."""
        for index in range(self.total_frames):
            yield self.frame(index)

    def frame_list(self) -> List[VideoFrame]:
        return list(self.frames())

    def packets(self) -> Iterator[MediaPacket]:
        """The stream as media packets (one frame per packet)."""
        for frame in self.frames():
            yield frame.to_packet()

    def gop_count(self) -> int:
        """Number of (possibly partial) GOPs in the stream."""
        return -(-self.total_frames // self.pattern.length)

    def total_bytes(self) -> int:
        """Total encoded size of the stream."""
        return sum(self.pattern.size_for(self.pattern.frame_type_at(i))
                   for i in range(self.total_frames))


def is_gop_boundary(packet: MediaPacket) -> bool:
    """True when ``packet`` starts a new GOP (i.e. carries an I frame).

    This is the predicate the ControlThread uses for boundary-aware filter
    insertion on video streams (experiment E7).
    """
    return packet.media_type == TYPE_VIDEO and packet.marker == FRAME_I


def drop_b_frames(frames: List[VideoFrame]) -> List[VideoFrame]:
    """Remove B frames — the simplest bandwidth-reducing video transcode."""
    return [frame for frame in frames if frame.frame_type != FRAME_B]


def stream_bitrate(frames: List[VideoFrame], frames_per_second: int) -> float:
    """Average bitrate (bits/second) of a frame sequence.

    The playback duration is taken from the frame *indices* (the original
    timeline), so dropping frames — a transcoder's whole purpose — lowers
    the bitrate rather than shortening the clip.
    """
    if not frames:
        return 0.0
    total_bits = sum(len(frame.payload) for frame in frames) * 8
    duration = (max(frame.index for frame in frames) + 1) / frames_per_second
    return total_bits / duration
