"""Minimal RIFF/WAVE reader and writer.

The paper records its test audio in "Windows PCM-based waveform audio file
format (.WAV)".  This module implements just enough of the RIFF container to
round-trip the uncompressed PCM formats used in the experiments (8- and
16-bit linear PCM), so example scripts can persist and reload test material
without external dependencies.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import BinaryIO, Union

from .audio import AudioFormat

_RIFF_MAGIC = b"RIFF"
_WAVE_MAGIC = b"WAVE"
_FMT_CHUNK = b"fmt "
_DATA_CHUNK = b"data"
_PCM_FORMAT_TAG = 1


class WavFormatError(ValueError):
    """Raised when a file is not a supported PCM WAV file."""


@dataclass(frozen=True)
class WavFile:
    """An in-memory WAV file: a PCM format plus raw sample data."""

    format: AudioFormat
    data: bytes

    @property
    def duration(self) -> float:
        """Playback duration in seconds."""
        return self.format.duration_of(len(self.data))


def write_wav(destination: Union[str, BinaryIO], data: bytes,
              audio_format: AudioFormat) -> int:
    """Write raw PCM ``data`` as a WAV file; returns the bytes written."""
    payload = _build_wav_bytes(data, audio_format)
    if isinstance(destination, str):
        with open(destination, "wb") as handle:
            handle.write(payload)
    else:
        destination.write(payload)
    return len(payload)


def wav_bytes(data: bytes, audio_format: AudioFormat) -> bytes:
    """Return the full WAV file contents for raw PCM ``data``."""
    return _build_wav_bytes(data, audio_format)


def _build_wav_bytes(data: bytes, audio_format: AudioFormat) -> bytes:
    byte_rate = audio_format.bytes_per_second
    block_align = audio_format.frame_size
    bits_per_sample = audio_format.sample_width * 8
    fmt_body = struct.pack("<HHIIHH", _PCM_FORMAT_TAG, audio_format.channels,
                           audio_format.sample_rate, byte_rate, block_align,
                           bits_per_sample)
    chunks = (
        _FMT_CHUNK + struct.pack("<I", len(fmt_body)) + fmt_body
        + _DATA_CHUNK + struct.pack("<I", len(data)) + data
    )
    riff_size = 4 + len(chunks)
    return _RIFF_MAGIC + struct.pack("<I", riff_size) + _WAVE_MAGIC + chunks


def read_wav(source: Union[str, bytes, BinaryIO]) -> WavFile:
    """Read a PCM WAV file from a path, a byte string, or a binary stream."""
    if isinstance(source, str):
        with open(source, "rb") as handle:
            raw = handle.read()
    elif isinstance(source, (bytes, bytearray)):
        raw = bytes(source)
    else:
        raw = source.read()
    return _parse_wav(raw)


def _parse_wav(raw: bytes) -> WavFile:
    stream = io.BytesIO(raw)
    header = stream.read(12)
    if len(header) < 12 or header[:4] != _RIFF_MAGIC or header[8:12] != _WAVE_MAGIC:
        raise WavFormatError("not a RIFF/WAVE file")

    audio_format = None
    data = None
    while True:
        chunk_header = stream.read(8)
        if len(chunk_header) < 8:
            break
        chunk_id = chunk_header[:4]
        (chunk_size,) = struct.unpack("<I", chunk_header[4:])
        body = stream.read(chunk_size)
        if len(body) < chunk_size:
            raise WavFormatError(f"truncated {chunk_id!r} chunk")
        if chunk_size % 2:
            stream.read(1)  # chunks are word aligned
        if chunk_id == _FMT_CHUNK:
            audio_format = _parse_fmt(body)
        elif chunk_id == _DATA_CHUNK:
            data = body

    if audio_format is None:
        raise WavFormatError("missing fmt chunk")
    if data is None:
        raise WavFormatError("missing data chunk")
    return WavFile(format=audio_format, data=data)


def _parse_fmt(body: bytes) -> AudioFormat:
    if len(body) < 16:
        raise WavFormatError("fmt chunk too short")
    (format_tag, channels, sample_rate, _byte_rate, _block_align,
     bits_per_sample) = struct.unpack("<HHIIHH", body[:16])
    if format_tag != _PCM_FORMAT_TAG:
        raise WavFormatError(f"unsupported WAV format tag {format_tag} (PCM only)")
    if bits_per_sample not in (8, 16):
        raise WavFormatError(f"unsupported bit depth {bits_per_sample}")
    return AudioFormat(sample_rate=sample_rate, channels=channels,
                       sample_width=bits_per_sample // 8)
