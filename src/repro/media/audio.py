"""PCM audio sources matching the paper's experimental setup.

The paper's FEC experiment transmits "Windows PCM-based waveform audio file
format (.WAV) at a rate of 8000 samples per second for two 8-bit/sample
stereo channels".  That is 16 000 bytes of raw PCM per second.  This module
provides synthetic audio sources with exactly those parameters (plus knobs
for other formats), since live audio capture hardware is not available in
this reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: The paper's audio format: 8000 samples/s, 2 channels, 8 bits per sample.
PAPER_SAMPLE_RATE = 8000
PAPER_CHANNELS = 2
PAPER_SAMPLE_WIDTH = 1  # bytes per sample per channel


@dataclass(frozen=True)
class AudioFormat:
    """Description of a raw PCM audio format.

    Attributes
    ----------
    sample_rate:
        Samples per second per channel.
    channels:
        Number of interleaved channels.
    sample_width:
        Bytes per sample per channel (1 = unsigned 8-bit, 2 = signed 16-bit
        little-endian, the two formats used by classic .WAV files).
    """

    sample_rate: int = PAPER_SAMPLE_RATE
    channels: int = PAPER_CHANNELS
    sample_width: int = PAPER_SAMPLE_WIDTH

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if self.channels <= 0:
            raise ValueError("channels must be positive")
        if self.sample_width not in (1, 2):
            raise ValueError("sample_width must be 1 or 2 bytes")

    @property
    def bytes_per_second(self) -> int:
        """Raw PCM data rate in bytes per second."""
        return self.sample_rate * self.channels * self.sample_width

    @property
    def frame_size(self) -> int:
        """Bytes per sample frame (one sample for every channel)."""
        return self.channels * self.sample_width

    def duration_of(self, nbytes: int) -> float:
        """Playback duration, in seconds, of ``nbytes`` of PCM data."""
        return nbytes / self.bytes_per_second

    def bytes_for(self, seconds: float) -> int:
        """Number of PCM bytes in ``seconds`` of audio (frame aligned)."""
        frames = int(round(seconds * self.sample_rate))
        return frames * self.frame_size


#: The format used throughout the paper's experiments.
PAPER_AUDIO_FORMAT = AudioFormat()


class AudioSource:
    """Base class for PCM generators.

    Subclasses implement :meth:`_samples`, returning float samples in
    [-1.0, 1.0] for a given frame range; this class handles quantisation to
    the configured sample width and interleaving of channels.
    """

    def __init__(self, audio_format: AudioFormat = PAPER_AUDIO_FORMAT,
                 duration: float = 1.0) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.format = audio_format
        self.duration = duration
        self.total_frames = int(round(duration * audio_format.sample_rate))

    # -- subclass hook -------------------------------------------------------

    def _samples(self, start_frame: int, count: int, channel: int) -> np.ndarray:
        """Return ``count`` float samples in [-1, 1] for ``channel``."""
        raise NotImplementedError

    # -- public API ----------------------------------------------------------

    def read(self, start_frame: int, frame_count: int) -> bytes:
        """Render ``frame_count`` frames of interleaved PCM starting at
        ``start_frame``; returns fewer frames at the end of the source."""
        if start_frame >= self.total_frames:
            return b""
        frame_count = min(frame_count, self.total_frames - start_frame)
        channels = [self._samples(start_frame, frame_count, ch)
                    for ch in range(self.format.channels)]
        interleaved = np.empty(frame_count * self.format.channels, dtype=np.float64)
        for ch, samples in enumerate(channels):
            interleaved[ch::self.format.channels] = samples
        return self._quantise(interleaved)

    def _quantise(self, samples: np.ndarray) -> bytes:
        clipped = np.clip(samples, -1.0, 1.0)
        if self.format.sample_width == 1:
            as_ints = np.round((clipped + 1.0) * 127.5).astype(np.uint8)
            return as_ints.tobytes()
        as_ints = np.round(clipped * 32767.0).astype("<i2")
        return as_ints.tobytes()

    def chunks(self, chunk_frames: int) -> Iterator[bytes]:
        """Iterate over the whole source in chunks of ``chunk_frames``."""
        if chunk_frames <= 0:
            raise ValueError("chunk_frames must be positive")
        frame = 0
        while frame < self.total_frames:
            data = self.read(frame, chunk_frames)
            if not data:
                return
            yield data
            frame += chunk_frames

    def pcm_bytes(self) -> bytes:
        """Render the whole source as one PCM byte string."""
        return self.read(0, self.total_frames)


class ToneSource(AudioSource):
    """A pure sine tone — deterministic and easy to verify after transit."""

    def __init__(self, frequency: float = 440.0, amplitude: float = 0.8,
                 audio_format: AudioFormat = PAPER_AUDIO_FORMAT,
                 duration: float = 1.0) -> None:
        super().__init__(audio_format, duration)
        if not 0.0 < amplitude <= 1.0:
            raise ValueError("amplitude must be in (0, 1]")
        self.frequency = frequency
        self.amplitude = amplitude

    def _samples(self, start_frame: int, count: int, channel: int) -> np.ndarray:
        t = (np.arange(start_frame, start_frame + count, dtype=np.float64)
             / self.format.sample_rate)
        # Offset the phase per channel so stereo channels differ measurably.
        phase = channel * math.pi / 4
        return self.amplitude * np.sin(2 * math.pi * self.frequency * t + phase)


class NoiseSource(AudioSource):
    """Seeded white noise — models speech-like wideband content."""

    def __init__(self, amplitude: float = 0.5, seed: int = 0,
                 audio_format: AudioFormat = PAPER_AUDIO_FORMAT,
                 duration: float = 1.0) -> None:
        super().__init__(audio_format, duration)
        if not 0.0 < amplitude <= 1.0:
            raise ValueError("amplitude must be in (0, 1]")
        self.amplitude = amplitude
        self.seed = seed

    def _samples(self, start_frame: int, count: int, channel: int) -> np.ndarray:
        # Use a counter-based construction so reads are position-independent:
        # the same frame range always produces the same samples.
        rng = np.random.default_rng(
            np.int64(self.seed) * 1_000_003 + channel * 7919 + start_frame)
        return self.amplitude * (rng.random(count) * 2.0 - 1.0)


class SpeechLikeSource(AudioSource):
    """Amplitude-modulated tone bursts that roughly mimic speech cadence.

    Useful for listening-quality style metrics: silence gaps make packet
    loss audible (and measurable) in bursts, like real conversation.
    """

    def __init__(self, syllable_rate: float = 4.0, base_frequency: float = 180.0,
                 amplitude: float = 0.8, seed: int = 1,
                 audio_format: AudioFormat = PAPER_AUDIO_FORMAT,
                 duration: float = 1.0) -> None:
        super().__init__(audio_format, duration)
        self.syllable_rate = syllable_rate
        self.base_frequency = base_frequency
        self.amplitude = amplitude
        self.seed = seed

    def _samples(self, start_frame: int, count: int, channel: int) -> np.ndarray:
        t = (np.arange(start_frame, start_frame + count, dtype=np.float64)
             / self.format.sample_rate)
        envelope = 0.5 * (1.0 + np.sin(2 * math.pi * self.syllable_rate * t))
        carrier = np.sin(2 * math.pi * self.base_frequency * t)
        overtone = 0.3 * np.sin(2 * math.pi * self.base_frequency * 3 * t)
        return self.amplitude * envelope * (carrier + overtone) / 1.3


def pcm_similarity(original: bytes, received: bytes,
                   audio_format: AudioFormat = PAPER_AUDIO_FORMAT) -> float:
    """Fraction of PCM bytes that survived transit unchanged and in place.

    A crude but monotone proxy for audio quality: silence substituted for a
    lost packet scores 0 for that packet's span.  Streams of different
    lengths are compared over the shorter prefix, with the missing tail
    counted as lost.
    """
    if not original:
        return 1.0
    length = min(len(original), len(received))
    if length == 0:
        return 0.0
    a = np.frombuffer(original[:length], dtype=np.uint8)
    b = np.frombuffer(received[:length], dtype=np.uint8)
    matches = int(np.count_nonzero(a == b))
    return matches / len(original)
