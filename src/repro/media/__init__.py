"""Media substrate: PCM audio, WAV container, packetisation, GOP video.

The paper's testbed streamed live PCM audio (8 kHz, two 8-bit channels) and
motivated frame-boundary-aware insertion with MPEG-style video.  This
package provides deterministic synthetic equivalents of both, plus the
packetisation layer whose sequence numbers drive the Figure 7 statistics.
"""

from .audio import (
    PAPER_AUDIO_FORMAT,
    PAPER_CHANNELS,
    PAPER_SAMPLE_RATE,
    PAPER_SAMPLE_WIDTH,
    AudioFormat,
    AudioSource,
    NoiseSource,
    SpeechLikeSource,
    ToneSource,
    pcm_similarity,
)
from .packetizer import (
    HEADER_SIZE as MEDIA_HEADER_SIZE,
    MEDIA_MAGIC,
    TYPE_AUDIO,
    TYPE_CONTROL,
    TYPE_VIDEO,
    AudioPacketizer,
    Depacketizer,
    MediaPacket,
    MediaPacketError,
    packetize_pcm,
    sequence_numbers,
)
from .video import (
    FRAME_B,
    FRAME_I,
    FRAME_P,
    FRAME_TYPE_NAMES,
    GopPattern,
    VideoFrame,
    VideoSource,
    drop_b_frames,
    is_gop_boundary,
    stream_bitrate,
)
from .wav import WavFile, WavFormatError, read_wav, wav_bytes, write_wav

__all__ = [
    "AudioFormat",
    "AudioSource",
    "ToneSource",
    "NoiseSource",
    "SpeechLikeSource",
    "PAPER_AUDIO_FORMAT",
    "PAPER_SAMPLE_RATE",
    "PAPER_CHANNELS",
    "PAPER_SAMPLE_WIDTH",
    "pcm_similarity",
    "MediaPacket",
    "MediaPacketError",
    "AudioPacketizer",
    "Depacketizer",
    "packetize_pcm",
    "sequence_numbers",
    "MEDIA_MAGIC",
    "MEDIA_HEADER_SIZE",
    "TYPE_AUDIO",
    "TYPE_VIDEO",
    "TYPE_CONTROL",
    "VideoFrame",
    "VideoSource",
    "GopPattern",
    "FRAME_I",
    "FRAME_P",
    "FRAME_B",
    "FRAME_TYPE_NAMES",
    "is_gop_boundary",
    "drop_b_frames",
    "stream_bitrate",
    "WavFile",
    "WavFormatError",
    "read_wav",
    "write_wav",
    "wav_bytes",
]
