"""Media packetisation: turning PCM/video byte streams into sequenced packets.

The paper's proxies operate on packet streams (audio datagrams multicast on
the LAN).  The packetiser slices a media stream into fixed-duration packets
and stamps each with a sequence number and timestamp; the depacketiser
reverses the process and — crucially for the evaluation — reports exactly
which sequence numbers arrived, which is how Figure 7's "% received" and
"% reconstructed" series are computed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from .audio import AudioFormat, AudioSource, PAPER_AUDIO_FORMAT

_HEADER = struct.Struct(">BBIIH")
HEADER_SIZE = _HEADER.size

MEDIA_MAGIC = 0xAD

#: Media packet payload types.
TYPE_AUDIO = 1
TYPE_VIDEO = 2
TYPE_CONTROL = 3


class MediaPacketError(ValueError):
    """Raised when a media packet header is malformed."""


@dataclass(frozen=True)
class MediaPacket:
    """One sequenced media packet.

    Attributes
    ----------
    sequence:
        Monotonically increasing sequence number, starting at 0.
    timestamp_ms:
        Presentation timestamp in milliseconds from stream start.
    media_type:
        One of ``TYPE_AUDIO``, ``TYPE_VIDEO`` or ``TYPE_CONTROL``.
    marker:
        Free-form per-packet marker; video uses it for the frame type.
    payload:
        The raw media bytes.
    """

    sequence: int
    timestamp_ms: int
    payload: bytes
    media_type: int = TYPE_AUDIO
    marker: int = 0

    def pack(self) -> bytes:
        """Serialise header + payload."""
        if not 0 <= self.sequence <= 0xFFFFFFFF:
            raise MediaPacketError(f"sequence {self.sequence} out of range")
        if not 0 <= self.timestamp_ms <= 0xFFFFFFFF:
            raise MediaPacketError(f"timestamp {self.timestamp_ms} out of range")
        header = _HEADER.pack(MEDIA_MAGIC, self.media_type, self.sequence,
                              self.timestamp_ms, self.marker & 0xFFFF)
        return header + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "MediaPacket":
        """Parse a packet previously produced by :meth:`pack`."""
        if len(data) < HEADER_SIZE:
            raise MediaPacketError(f"packet too short ({len(data)} bytes)")
        magic, media_type, sequence, timestamp, marker = _HEADER.unpack_from(data, 0)
        if magic != MEDIA_MAGIC:
            raise MediaPacketError(f"bad media magic 0x{magic:02x}")
        return cls(sequence=sequence, timestamp_ms=timestamp,
                   payload=data[HEADER_SIZE:], media_type=media_type,
                   marker=marker)


class AudioPacketizer:
    """Slice an :class:`~repro.media.audio.AudioSource` into media packets.

    Parameters
    ----------
    source:
        The PCM source to packetise.
    packet_duration_ms:
        Playback time carried by each packet.  The default of 20 ms matches
        typical interactive audio packetisation (at the paper's format this
        is 320 bytes of PCM per packet).
    """

    def __init__(self, source: AudioSource, packet_duration_ms: int = 20) -> None:
        if packet_duration_ms <= 0:
            raise ValueError("packet_duration_ms must be positive")
        self.source = source
        self.packet_duration_ms = packet_duration_ms
        frames = source.format.sample_rate * packet_duration_ms / 1000.0
        self.frames_per_packet = max(1, int(round(frames)))

    @property
    def bytes_per_packet(self) -> int:
        """PCM bytes carried by each (full) packet."""
        return self.frames_per_packet * self.source.format.frame_size

    def packets(self) -> Iterator[MediaPacket]:
        """Yield the full stream as sequenced audio packets."""
        sequence = 0
        frame = 0
        while True:
            payload = self.source.read(frame, self.frames_per_packet)
            if not payload:
                return
            timestamp = int(round(frame * 1000.0 / self.source.format.sample_rate))
            yield MediaPacket(sequence=sequence, timestamp_ms=timestamp,
                              payload=payload, media_type=TYPE_AUDIO)
            sequence += 1
            frame += self.frames_per_packet

    def packet_list(self) -> List[MediaPacket]:
        """The whole stream as a list (convenience for tests/benchmarks)."""
        return list(self.packets())


class Depacketizer:
    """Reassemble a media stream from (possibly lossy) packet delivery.

    Tracks which sequence numbers arrived; :meth:`reassemble` fills gaps
    with silence/filler so the output length matches the original stream —
    this mirrors what a playout buffer does when packets are missing.
    """

    def __init__(self, filler_byte: int = 0x80) -> None:
        self._packets: Dict[int, MediaPacket] = {}
        self.filler_byte = filler_byte
        self.duplicates = 0
        self.malformed = 0

    def add(self, packet: MediaPacket) -> None:
        """Record a received packet (duplicates are counted and ignored)."""
        if packet.sequence in self._packets:
            self.duplicates += 1
            return
        self._packets[packet.sequence] = packet

    def add_raw(self, data: bytes) -> Optional[MediaPacket]:
        """Parse and record a packed packet; returns it, or None if malformed."""
        try:
            packet = MediaPacket.unpack(data)
        except MediaPacketError:
            self.malformed += 1
            return None
        self.add(packet)
        return packet

    @property
    def received_sequences(self) -> List[int]:
        """Sorted list of sequence numbers seen so far."""
        return sorted(self._packets)

    def received_count(self) -> int:
        return len(self._packets)

    def missing_sequences(self, total_packets: int) -> List[int]:
        """Sequence numbers in [0, total_packets) that never arrived."""
        return [seq for seq in range(total_packets) if seq not in self._packets]

    def delivery_ratio(self, total_packets: int) -> float:
        """Fraction of the original packets that arrived (0..1)."""
        if total_packets <= 0:
            return 1.0
        received = sum(1 for seq in self._packets if seq < total_packets)
        return received / total_packets

    def reassemble(self, total_packets: int,
                   packet_size: Optional[int] = None) -> bytes:
        """Rebuild the byte stream, substituting filler for lost packets.

        ``packet_size`` is needed only when the very first packets were lost
        (otherwise it is inferred from any received packet).
        """
        if total_packets <= 0:
            return b""
        if packet_size is None:
            if not self._packets:
                raise MediaPacketError(
                    "cannot infer packet size: no packets were received")
            packet_size = len(next(iter(self._packets.values())).payload)
        parts = []
        filler = bytes([self.filler_byte]) * packet_size
        for sequence in range(total_packets):
            packet = self._packets.get(sequence)
            parts.append(packet.payload if packet is not None else filler)
        return b"".join(parts)


def packetize_pcm(pcm: bytes, audio_format: AudioFormat = PAPER_AUDIO_FORMAT,
                  packet_duration_ms: int = 20) -> List[MediaPacket]:
    """Packetise a raw PCM byte string directly (no AudioSource needed)."""
    frame_size = audio_format.frame_size
    frames_per_packet = max(
        1, int(round(audio_format.sample_rate * packet_duration_ms / 1000.0)))
    bytes_per_packet = frames_per_packet * frame_size
    packets = []
    sequence = 0
    for offset in range(0, len(pcm), bytes_per_packet):
        payload = pcm[offset:offset + bytes_per_packet]
        timestamp = int(round((offset // frame_size) * 1000.0 / audio_format.sample_rate))
        packets.append(MediaPacket(sequence=sequence, timestamp_ms=timestamp,
                                   payload=payload, media_type=TYPE_AUDIO))
        sequence += 1
    return packets


def sequence_numbers(packets: Iterable[MediaPacket]) -> List[int]:
    """Extract the sequence numbers from an iterable of packets."""
    return [packet.sequence for packet in packets]
