"""Pluggable GF(256) linear-algebra backends.

The erasure code is, at its core, three linear-algebra operations over
GF(2^8): matrix-matrix products (code construction), matrix-vector products
(per-element algebra) and matrix-*batch* products (the per-packet hot path,
where one coefficient matrix multiplies a 2D ``uint8`` array whose rows are
equal-length packet blocks).  This module isolates those operations behind a
small backend interface so the implementation can be swapped:

* :class:`PurePythonGFBackend` — the original scalar triple loop.  Slow, but
  dependency-free and trivially auditable; it is the reference oracle the
  equivalence tests compare every other backend against.
* :class:`NumpyGFBackend` — vectorised with the precomputed 256x256
  :data:`~repro.fec.gf256.MUL_TABLE`: a single fancy-indexing gather produces
  every coefficient-times-byte product, and an XOR reduction collapses them.
  This is the default and is orders of magnitude faster on packet batches.

Backends are held in a process-wide registry.  Selection, in priority order:

1. an explicit ``backend=`` argument (name or instance) on the FEC classes,
2. the ``REPRO_FEC_BACKEND`` environment variable,
3. the registry default (numpy).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .gf256 import MUL_TABLE, gf_mul

#: Environment variable consulted by :func:`get_backend` when no explicit
#: backend is requested.
BACKEND_ENV_VAR = "REPRO_FEC_BACKEND"


class GFBackendError(ValueError):
    """Raised for unknown backend names or invalid backend inputs."""


class GFBackend(ABC):
    """Interface for GF(256) linear algebra implementations.

    Coefficient matrices are passed as sequences of equal-length rows of
    ints in ``[0, 255]``; packet batches are 2D ``uint8`` numpy arrays with
    one block per row.  Implementations must be pure functions of their
    inputs (no aliasing of returned arrays with arguments).
    """

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def matmul(
        self, a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        """Matrix product ``a @ b`` over GF(256), as lists of int rows."""

    @abstractmethod
    def matvec(self, rows: Sequence[Sequence[int]], vector: Sequence[int]) -> List[int]:
        """Matrix-vector product over GF(256)."""

    @abstractmethod
    def apply_matrix(
        self, rows: Sequence[Sequence[int]], data: np.ndarray
    ) -> np.ndarray:
        """Multiply an (m, k) coefficient matrix into a (k, L) block batch.

        Returns an (m, L) ``uint8`` array: output row i is the GF(256) linear
        combination of the data rows with coefficients ``rows[i]``.  This is
        the encode/decode hot path.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


def _check_apply_inputs(rows: Sequence[Sequence[int]], data: np.ndarray) -> np.ndarray:
    if not len(rows):
        raise GFBackendError("coefficient matrix must have at least one row")
    data = np.asarray(data)
    if data.dtype != np.uint8:
        raise GFBackendError(f"block batch must be uint8, got {data.dtype}")
    if data.ndim != 2:
        raise GFBackendError(f"block batch must be 2D, got shape {data.shape}")
    if len(rows[0]) != data.shape[0]:
        raise GFBackendError(
            f"matrix width {len(rows[0])} does not match batch rows {data.shape[0]}"
        )
    return data


class PurePythonGFBackend(GFBackend):
    """Scalar reference implementation (the seed repo's original loops)."""

    name = "python"

    def matmul(
        self, a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        inner = len(b)
        width = len(b[0])
        result: List[List[int]] = []
        for row in a:
            out_row = []
            for j in range(width):
                acc = 0
                for k in range(inner):
                    acc ^= gf_mul(row[k], b[k][j])
                out_row.append(acc)
            result.append(out_row)
        return result

    def matvec(self, rows: Sequence[Sequence[int]], vector: Sequence[int]) -> List[int]:
        out = []
        for row in rows:
            acc = 0
            for coefficient, value in zip(row, vector):
                acc ^= gf_mul(coefficient, value)
            out.append(acc)
        return out

    def apply_matrix(
        self, rows: Sequence[Sequence[int]], data: np.ndarray
    ) -> np.ndarray:
        data = _check_apply_inputs(rows, data)
        columns = data.shape[1]
        result = np.zeros((len(rows), columns), dtype=np.uint8)
        blocks = [bytes(data[i]) for i in range(data.shape[0])]
        for i, row in enumerate(rows):
            acc = bytearray(columns)
            for coefficient, block in zip(row, blocks):
                if coefficient == 0:
                    continue
                for position in range(columns):
                    acc[position] ^= gf_mul(coefficient, block[position])
            result[i] = np.frombuffer(bytes(acc), dtype=np.uint8)
        return result


class NumpyGFBackend(GFBackend):
    """Vectorised backend: MUL_TABLE fancy-indexing + XOR reduction.

    For an (m, k) coefficient matrix and a (k, L) batch, a single gather
    ``MUL_TABLE[matrix.T]`` pulls the 256-entry product row for every
    coefficient — one table lookup per coefficient row instead of one per
    byte.  Each source row j then contributes ``lut[j][:, data[j]]`` (an
    (m, L) C-speed gather through those product rows), and an in-place XOR
    accumulates the contributions into the result.
    """

    name = "numpy"

    def matmul(
        self, a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        b_array = np.asarray([[int(v) for v in row] for row in b], dtype=np.uint8)
        product = self.apply_matrix(a, b_array)
        return [[int(v) for v in row] for row in product]

    def matvec(self, rows: Sequence[Sequence[int]], vector: Sequence[int]) -> List[int]:
        column = np.asarray([[int(v)] for v in vector], dtype=np.uint8)
        return [int(v) for v in self.apply_matrix(rows, column)[:, 0]]

    def apply_matrix(
        self, rows: Sequence[Sequence[int]], data: np.ndarray
    ) -> np.ndarray:
        data = _check_apply_inputs(rows, data)
        matrix = np.asarray([[int(v) for v in row] for row in rows], dtype=np.uint8)
        lut = self._lut_for(matrix.tobytes(), *matrix.shape)
        result = np.zeros((matrix.shape[0], data.shape[1]), dtype=np.uint8)
        for j in range(matrix.shape[1]):
            result ^= np.take(lut[j], data[j], axis=1)
        return result

    @staticmethod
    @lru_cache(maxsize=128)
    def _lut_for(matrix_bytes: bytes, m: int, k: int) -> np.ndarray:
        """lut[j] is the (m, 256) block of product rows for source row j,
        contiguous so the per-row np.take gathers stream through it.  Encoders
        and decoders apply the same small coefficient matrix to every group,
        so the gather through MUL_TABLE is memoised per matrix."""
        matrix = np.frombuffer(matrix_bytes, dtype=np.uint8).reshape(m, k)
        return MUL_TABLE[matrix.T]


_REGISTRY: Dict[str, GFBackend] = {}
_DEFAULT_NAME: Optional[str] = None


def register_backend(backend: GFBackend, make_default: bool = False) -> GFBackend:
    """Add a backend to the registry (replacing any same-named backend)."""
    if not backend.name:
        raise GFBackendError("backend must define a non-empty name")
    _REGISTRY[backend.name] = backend
    global _DEFAULT_NAME
    if make_default or _DEFAULT_NAME is None:
        _DEFAULT_NAME = backend.name
    return backend


def available_backends() -> List[str]:
    """Names of every registered backend."""
    return sorted(_REGISTRY)


def set_default_backend(name: str) -> GFBackend:
    """Make ``name`` the process-wide default backend and return it."""
    backend = _lookup(name)
    global _DEFAULT_NAME
    _DEFAULT_NAME = backend.name
    return backend


def _lookup(name: str) -> GFBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise GFBackendError(
            f"unknown GF backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def get_backend(name: Optional[str] = None) -> GFBackend:
    """Resolve a backend by name, environment variable, or default.

    ``None`` consults ``REPRO_FEC_BACKEND`` and falls back to the registry
    default (numpy).  Unknown names raise :class:`GFBackendError` so typos
    never silently select the wrong engine.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or _DEFAULT_NAME
    if name is None:
        raise GFBackendError("no GF backend registered")
    return _lookup(name)


def resolve_backend(backend: Union[str, GFBackend, None]) -> GFBackend:
    """Normalise a ``backend=`` argument (instance, name, or None)."""
    if backend is None:
        return get_backend()
    if isinstance(backend, GFBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise GFBackendError(f"backend must be a name, GFBackend, or None: {backend!r}")


register_backend(PurePythonGFBackend())
register_backend(NumpyGFBackend(), make_default=True)
