"""FEC group assembly — turning packet streams into coded groups and back.

The encoder side (:class:`FecGroupEncoder`) collects source packets into
groups of ``k``, pads them to a common block size, and emits the ``n``
encoded :class:`~repro.fec.packets.FecPacket` objects for each full group
(the paper's "FEC Encoder" component in Figure 6).

The decoder side (:class:`FecGroupDecoder`) receives whatever subset of
those packets survived the lossy link, reconstructs each group as soon as
any ``k`` of its packets have arrived, and emits the original payloads (the
paper's "FEC Decoder").  Groups that never become decodable surrender
whatever data packets did arrive, so FEC can only improve delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from .backend import GFBackend, resolve_backend
from .block_codes import BlockErasureCode, FecCodingError, _as_batch
from .vandermonde import _decoding_matrix_cached
from .packets import (
    FLAG_PARITY,
    FLAG_UNCODED,
    FecPacket,
    block_size_for,
    pad_block,
    unpad_block,
)


@dataclass
class FecEncoderStats:
    """Counters maintained by :class:`FecGroupEncoder`."""

    payloads_in: int = 0
    groups_encoded: int = 0
    data_packets_out: int = 0
    parity_packets_out: int = 0
    uncoded_packets_out: int = 0

    @property
    def packets_out(self) -> int:
        return self.data_packets_out + self.parity_packets_out + self.uncoded_packets_out


class FecGroupEncoder:
    """Accumulate payloads and emit (n, k)-encoded FEC packets.

    Parameters
    ----------
    k, n:
        Erasure-code parameters; the paper's audio experiment uses (6, 4),
        i.e. ``k=4, n=6``.
    start_group_id:
        First group identifier to use (useful when resuming a stream).
    backend:
        GF(256) engine name/instance, or ``None`` for the process default.
    """

    def __init__(
        self,
        k: int,
        n: int,
        start_group_id: int = 0,
        backend: Union[str, GFBackend, None] = None,
    ) -> None:
        self._code = BlockErasureCode(k, n, backend=backend)
        self._pending: List[bytes] = []
        self._next_group_id = start_group_id
        self.stats = FecEncoderStats()

    @property
    def backend_name(self) -> str:
        """Name of the GF(256) backend encoding this stream."""
        return self._code.backend.name

    @property
    def k(self) -> int:
        return self._code.k

    @property
    def n(self) -> int:
        return self._code.n

    @property
    def pending_count(self) -> int:
        """Payloads waiting for the current group to fill."""
        return len(self._pending)

    def add(self, payload: bytes) -> List[FecPacket]:
        """Add one source payload; returns the group's packets when full.

        Until ``k`` payloads have accumulated the return value is an empty
        list; on the ``k``-th payload the full group of ``n`` packets is
        returned (data packets first, then parity).
        """
        if payload is None:
            raise ValueError("payload must be bytes, not None")
        self._pending.append(bytes(payload))
        self.stats.payloads_in += 1
        if len(self._pending) < self._code.k:
            return []
        return self._encode_group()

    def add_batch(self, payloads: Sequence[bytes]) -> List[FecPacket]:
        """Add many payloads at once; returns the packets of every group
        the batch completed.

        Byte- and stats-identical to calling :meth:`add` per payload, but
        all groups filled by the batch are parity-encoded *fused*: groups
        sharing a block size are hstacked into one ``(k, G*L)`` array and
        encoded by a single backend product (parity is a columnwise linear
        map, so the fused product is byte-for-byte the per-group results).
        """
        k = self._code.k
        groups: List[Tuple[int, List[bytes]]] = []
        for payload in payloads:
            if payload is None:
                raise ValueError("payload must be bytes, not None")
            self._pending.append(bytes(payload))
            self.stats.payloads_in += 1
            if len(self._pending) == k:
                full, self._pending = self._pending, []
                group_id = self._next_group_id
                self._next_group_id += 1
                block_size = block_size_for(full)
                groups.append(
                    (group_id, [pad_block(p, block_size) for p in full]))
        if not groups:
            return []
        parity_lists = self._fused_parity([blocks for _, blocks in groups])
        packets: List[FecPacket] = []
        for (group_id, blocks), parity_blocks in zip(groups, parity_lists):
            packets.extend(self._packets_for(group_id, blocks, parity_blocks))
        return packets

    def _fused_parity(self, padded: List[List[bytes]]) -> List[List[bytes]]:
        """Parity blocks for many groups, one backend product per block size."""
        parity_out: List[List[bytes]] = [[] for _ in padded]
        cohorts: Dict[int, List[int]] = {}
        for pos, blocks in enumerate(padded):
            cohorts.setdefault(len(blocks[0]), []).append(pos)
        for block_size, members in cohorts.items():
            if len(members) == 1:
                pos = members[0]
                parity = self._code.encode_parity_batch(_as_batch(padded[pos]))
                parity_out[pos] = [parity[i].tobytes()
                                   for i in range(parity.shape[0])]
                continue
            stacked = np.hstack([_as_batch(padded[pos]) for pos in members])
            parity = self._code.encode_parity_batch(stacked)
            for j, pos in enumerate(members):
                lo = j * block_size
                hi = lo + block_size
                parity_out[pos] = [parity[i, lo:hi].tobytes()
                                   for i in range(parity.shape[0])]
        return parity_out

    def _encode_group(self) -> List[FecPacket]:
        payloads, self._pending = self._pending, []
        group_id = self._next_group_id
        self._next_group_id += 1
        block_size = block_size_for(payloads)
        blocks = [pad_block(p, block_size) for p in payloads]
        # One vectorised batch product yields every parity block; the data
        # packets reuse the padded source blocks directly.
        parity = self._code.encode_parity_batch(_as_batch(blocks))
        parity_blocks = [parity[i].tobytes() for i in range(parity.shape[0])]
        return self._packets_for(group_id, blocks, parity_blocks)

    def _packets_for(self, group_id: int, blocks: List[bytes],
                     parity_blocks: List[bytes]) -> List[FecPacket]:
        """Wrap one group's encoded blocks as packets, with per-group stats."""
        packets: List[FecPacket] = []
        for index, block in enumerate(blocks + parity_blocks):
            flags = FLAG_PARITY if index >= self._code.k else 0
            packets.append(FecPacket(group_id=group_id, index=index,
                                     k=self._code.k, n=self._code.n,
                                     payload=block, flags=flags))
        self.stats.groups_encoded += 1
        self.stats.data_packets_out += self._code.k
        self.stats.parity_packets_out += self._code.n - self._code.k
        return packets

    def flush(self) -> List[FecPacket]:
        """Emit any partially filled group as *uncoded* packets.

        Called at end-of-stream so trailing payloads that never filled a
        group are not lost; they are sent without redundancy, exactly as the
        original unprotected stream would have sent them.
        """
        if not self._pending:
            return []
        payloads, self._pending = self._pending, []
        group_id = self._next_group_id
        self._next_group_id += 1
        packets = [FecPacket(group_id=group_id, index=index,
                             k=self._code.k, n=self._code.n,
                             payload=payload, flags=FLAG_UNCODED)
                   for index, payload in enumerate(payloads)]
        self.stats.uncoded_packets_out += len(packets)
        return packets


@dataclass
class FecDecoderStats:
    """Counters maintained by :class:`FecGroupDecoder`."""

    packets_in: int = 0
    data_packets_in: int = 0
    parity_packets_in: int = 0
    uncoded_packets_in: int = 0
    groups_seen: int = 0
    groups_decoded: int = 0
    groups_repaired: int = 0
    groups_unrecoverable: int = 0
    payloads_out: int = 0
    payloads_recovered: int = 0


@dataclass
class _GroupState:
    k: int
    n: int
    received: Dict[int, bytes] = field(default_factory=dict)
    uncoded: Dict[int, bytes] = field(default_factory=dict)
    delivered: bool = False


@dataclass
class _PendingDecode:
    """A group that became decodable mid-batch, awaiting the fused algebra."""

    k: int
    n: int
    received: Dict[int, bytes]
    payloads: List[bytes] = field(default_factory=list)
    chosen: List[int] = field(default_factory=list)
    data_received: int = 0


class FecGroupDecoder:
    """Reassemble FEC groups and recover lost payloads.

    ``add`` returns the group's original payloads (in source order) as soon
    as the group becomes decodable — i.e. when any ``k`` of its ``n``
    packets have arrived.  Each group is delivered exactly once; late
    packets for an already-delivered group are counted and dropped.
    """

    def __init__(
        self,
        max_tracked_groups: int = 1024,
        backend: Union[str, GFBackend, None] = None,
    ) -> None:
        if max_tracked_groups < 1:
            raise ValueError("max_tracked_groups must be >= 1")
        self._groups: Dict[int, _GroupState] = {}
        self._max_tracked = max_tracked_groups
        self._backend = resolve_backend(backend)
        self._codes: Dict[Tuple[int, int], BlockErasureCode] = {}
        self.stats = FecDecoderStats()

    @property
    def backend_name(self) -> str:
        """Name of the GF(256) backend decoding this stream."""
        return self._backend.name

    def _code_for(self, k: int, n: int) -> BlockErasureCode:
        code = self._codes.get((k, n))
        if code is None:
            code = BlockErasureCode(k, n, backend=self._backend)
            self._codes[(k, n)] = code
        return code

    def add(self, packet: FecPacket) -> List[bytes]:
        """Process one received packet; returns recovered payloads (if any)."""
        self.stats.packets_in += 1
        if packet.is_uncoded:
            self.stats.uncoded_packets_in += 1
            self.stats.payloads_out += 1
            return [packet.payload]

        if packet.is_parity:
            self.stats.parity_packets_in += 1
        else:
            self.stats.data_packets_in += 1

        state = self._groups.get(packet.group_id)
        if state is None:
            state = _GroupState(k=packet.k, n=packet.n)
            self._groups[packet.group_id] = state
            self.stats.groups_seen += 1
            self._evict_if_needed()
        if state.delivered:
            return []
        if packet.k != state.k or packet.n != state.n:
            raise FecCodingError(
                f"group {packet.group_id} has inconsistent (n, k) parameters")
        state.received.setdefault(packet.index, packet.payload)

        if len(state.received) < state.k:
            return []
        return self._deliver(packet.group_id, state)

    def add_batch(self, packets: Sequence[FecPacket]) -> List[bytes]:
        """Process many received packets at once.

        Byte-, order- and stats-identical to calling :meth:`add` per packet
        and concatenating the results, but the algebra for every group the
        batch completes runs *fused*: groups that chose the same encoded
        indices (the common case — a clean stream always decodes from the
        k data indices, a uniformly lossy one from the same survivor set)
        are hstacked and reconstructed by one backend product.
        """
        deliveries: List[Tuple[str, object]] = []
        pending_decodes: List[_PendingDecode] = []
        for packet in packets:
            self.stats.packets_in += 1
            if packet.is_uncoded:
                self.stats.uncoded_packets_in += 1
                self.stats.payloads_out += 1
                deliveries.append(("payloads", [packet.payload]))
                continue
            if packet.is_parity:
                self.stats.parity_packets_in += 1
            else:
                self.stats.data_packets_in += 1
            state = self._groups.get(packet.group_id)
            if state is None:
                state = _GroupState(k=packet.k, n=packet.n)
                self._groups[packet.group_id] = state
                self.stats.groups_seen += 1
                self._evict_if_needed()
            if state.delivered:
                continue
            if packet.k != state.k or packet.n != state.n:
                raise FecCodingError(
                    f"group {packet.group_id} has inconsistent (n, k) parameters")
            state.received.setdefault(packet.index, packet.payload)
            if len(state.received) < state.k:
                continue
            # The group became decodable: snapshot it and mark it delivered
            # *now*, so a late same-batch packet is dropped exactly as the
            # sequential path drops it; the algebra itself is deferred so
            # same-shaped groups decode fused below.
            pending = _PendingDecode(k=state.k, n=state.n,
                                     received=state.received)
            state.delivered = True
            state.received = {}
            pending_decodes.append(pending)
            deliveries.append(("group", pending))
        if pending_decodes:
            self._decode_pending(pending_decodes)
        out: List[bytes] = []
        for kind, value in deliveries:
            if kind == "group":
                out.extend(value.payloads)
            else:
                out.extend(value)
        return out

    def _decode_pending(self, pending_decodes: List[_PendingDecode]) -> None:
        """Run the deferred reconstructions, fusing same-shaped groups.

        The cohort key is ``(k, n, chosen indices, block length)`` — groups
        sharing it use the same decode matrix on same-width columns, so one
        product over the hstacked batch is byte-identical to per-group
        decodes.
        """
        cohorts: Dict[Tuple, List[_PendingDecode]] = {}
        for pending in pending_decodes:
            received = pending.received
            data_indices = sorted(i for i in received if i < pending.k)
            if len(data_indices) == pending.k:
                # Every source block arrived — no algebra needed.
                pending.payloads = [unpad_block(received[i])
                                    for i in range(pending.k)]
                self._count_decoded(pending, pending.k)
                continue
            parity_indices = sorted(i for i in received if i >= pending.k)
            chosen = (data_indices + parity_indices)[:pending.k]
            chosen.sort()
            pending.chosen = chosen
            pending.data_received = len(data_indices)
            key = (pending.k, pending.n, tuple(chosen),
                   len(received[chosen[0]]))
            cohorts.setdefault(key, []).append(pending)
        for (k, n, chosen, _length), members in cohorts.items():
            if len(members) == 1:
                pending = members[0]
                code = self._code_for(k, n)
                blocks = code.decode(pending.received)
                pending.payloads = [unpad_block(block) for block in blocks]
                self._count_decoded(pending, pending.data_received)
                continue
            self._decode_cohort(k, n, list(chosen), members)

    def _decode_cohort(self, k: int, n: int, chosen: List[int],
                       members: List[_PendingDecode]) -> None:
        """Reconstruct many same-shaped groups with one backend product."""
        block_len = len(members[0].received[chosen[0]])
        stacked = np.hstack([
            _as_batch([member.received[i] for i in chosen])
            for member in members])
        present = {i for i in chosen if i < k}
        missing = [i for i in range(k) if i not in present]
        decode_matrix = _decoding_matrix_cached(k, n, tuple(chosen))
        rows = [decode_matrix.row(i) for i in missing]
        recovered = self._backend.apply_matrix(rows, stacked)
        for position, pending in enumerate(members):
            lo = position * block_len
            hi = lo + block_len
            sources: List[bytes] = [b""] * k
            for i in chosen:
                if i < k:
                    sources[i] = bytes(pending.received[i])
            for slot, source_index in enumerate(missing):
                sources[source_index] = recovered[slot, lo:hi].tobytes()
            pending.payloads = [unpad_block(block) for block in sources]
            self._count_decoded(pending, pending.data_received)

    def _count_decoded(self, pending: _PendingDecode, data_received: int) -> None:
        """The delivery-time stats of :meth:`_deliver`, for one fused group."""
        self.stats.groups_decoded += 1
        if data_received < pending.k:
            self.stats.groups_repaired += 1
            self.stats.payloads_recovered += pending.k - data_received
        self.stats.payloads_out += len(pending.payloads)

    def _deliver(self, group_id: int, state: _GroupState) -> List[bytes]:
        code = self._code_for(state.k, state.n)
        blocks = code.decode(state.received)
        payloads = [unpad_block(block) for block in blocks]
        data_received = sum(1 for i in state.received if i < state.k)
        state.delivered = True
        state.received.clear()
        self.stats.groups_decoded += 1
        if data_received < state.k:
            self.stats.groups_repaired += 1
            self.stats.payloads_recovered += state.k - data_received
        self.stats.payloads_out += len(payloads)
        return payloads

    def flush(self) -> List[bytes]:
        """Surrender data packets from groups that never became decodable.

        Called at end-of-stream.  For each undelivered group the payloads of
        the data packets that *did* arrive are returned in index order; lost
        packets in those groups are counted as unrecoverable.
        """
        leftovers: List[bytes] = []
        for group_id in sorted(self._groups):
            state = self._groups[group_id]
            if state.delivered:
                continue
            if state.received:
                self.stats.groups_unrecoverable += 1
            for index in sorted(state.received):
                if index < state.k:
                    leftovers.append(unpad_block(state.received[index]))
                    self.stats.payloads_out += 1
            state.received.clear()
            state.delivered = True
        return leftovers

    def _evict_if_needed(self) -> None:
        """Drop the oldest tracked groups when the table grows too large."""
        while len(self._groups) > self._max_tracked:
            oldest = min(self._groups)
            state = self._groups.pop(oldest)
            if not state.delivered and state.received:
                self.stats.groups_unrecoverable += 1

    @property
    def pending_groups(self) -> int:
        """Number of groups tracked but not yet delivered."""
        return sum(1 for state in self._groups.values() if not state.delivered)
