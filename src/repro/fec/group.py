"""FEC group assembly — turning packet streams into coded groups and back.

The encoder side (:class:`FecGroupEncoder`) collects source packets into
groups of ``k``, pads them to a common block size, and emits the ``n``
encoded :class:`~repro.fec.packets.FecPacket` objects for each full group
(the paper's "FEC Encoder" component in Figure 6).

The decoder side (:class:`FecGroupDecoder`) receives whatever subset of
those packets survived the lossy link, reconstructs each group as soon as
any ``k`` of its packets have arrived, and emits the original payloads (the
paper's "FEC Decoder").  Groups that never become decodable surrender
whatever data packets did arrive, so FEC can only improve delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from .backend import GFBackend, resolve_backend
from .block_codes import BlockErasureCode, FecCodingError, _as_batch
from .packets import (
    FLAG_PARITY,
    FLAG_UNCODED,
    FecPacket,
    block_size_for,
    pad_block,
    unpad_block,
)


@dataclass
class FecEncoderStats:
    """Counters maintained by :class:`FecGroupEncoder`."""

    payloads_in: int = 0
    groups_encoded: int = 0
    data_packets_out: int = 0
    parity_packets_out: int = 0
    uncoded_packets_out: int = 0

    @property
    def packets_out(self) -> int:
        return self.data_packets_out + self.parity_packets_out + self.uncoded_packets_out


class FecGroupEncoder:
    """Accumulate payloads and emit (n, k)-encoded FEC packets.

    Parameters
    ----------
    k, n:
        Erasure-code parameters; the paper's audio experiment uses (6, 4),
        i.e. ``k=4, n=6``.
    start_group_id:
        First group identifier to use (useful when resuming a stream).
    backend:
        GF(256) engine name/instance, or ``None`` for the process default.
    """

    def __init__(
        self,
        k: int,
        n: int,
        start_group_id: int = 0,
        backend: Union[str, GFBackend, None] = None,
    ) -> None:
        self._code = BlockErasureCode(k, n, backend=backend)
        self._pending: List[bytes] = []
        self._next_group_id = start_group_id
        self.stats = FecEncoderStats()

    @property
    def backend_name(self) -> str:
        """Name of the GF(256) backend encoding this stream."""
        return self._code.backend.name

    @property
    def k(self) -> int:
        return self._code.k

    @property
    def n(self) -> int:
        return self._code.n

    @property
    def pending_count(self) -> int:
        """Payloads waiting for the current group to fill."""
        return len(self._pending)

    def add(self, payload: bytes) -> List[FecPacket]:
        """Add one source payload; returns the group's packets when full.

        Until ``k`` payloads have accumulated the return value is an empty
        list; on the ``k``-th payload the full group of ``n`` packets is
        returned (data packets first, then parity).
        """
        if payload is None:
            raise ValueError("payload must be bytes, not None")
        self._pending.append(bytes(payload))
        self.stats.payloads_in += 1
        if len(self._pending) < self._code.k:
            return []
        return self._encode_group()

    def _encode_group(self) -> List[FecPacket]:
        payloads, self._pending = self._pending, []
        block_size = block_size_for(payloads)
        blocks = [pad_block(p, block_size) for p in payloads]
        # One vectorised batch product yields every parity block; the data
        # packets reuse the padded source blocks directly.
        parity = self._code.encode_parity_batch(_as_batch(blocks))
        encoded = blocks + [parity[i].tobytes() for i in range(parity.shape[0])]
        group_id = self._next_group_id
        self._next_group_id += 1

        packets: List[FecPacket] = []
        for index, block in enumerate(encoded):
            flags = FLAG_PARITY if index >= self._code.k else 0
            packets.append(FecPacket(group_id=group_id, index=index,
                                     k=self._code.k, n=self._code.n,
                                     payload=block, flags=flags))
        self.stats.groups_encoded += 1
        self.stats.data_packets_out += self._code.k
        self.stats.parity_packets_out += self._code.n - self._code.k
        return packets

    def flush(self) -> List[FecPacket]:
        """Emit any partially filled group as *uncoded* packets.

        Called at end-of-stream so trailing payloads that never filled a
        group are not lost; they are sent without redundancy, exactly as the
        original unprotected stream would have sent them.
        """
        if not self._pending:
            return []
        payloads, self._pending = self._pending, []
        group_id = self._next_group_id
        self._next_group_id += 1
        packets = [FecPacket(group_id=group_id, index=index,
                             k=self._code.k, n=self._code.n,
                             payload=payload, flags=FLAG_UNCODED)
                   for index, payload in enumerate(payloads)]
        self.stats.uncoded_packets_out += len(packets)
        return packets


@dataclass
class FecDecoderStats:
    """Counters maintained by :class:`FecGroupDecoder`."""

    packets_in: int = 0
    data_packets_in: int = 0
    parity_packets_in: int = 0
    uncoded_packets_in: int = 0
    groups_seen: int = 0
    groups_decoded: int = 0
    groups_repaired: int = 0
    groups_unrecoverable: int = 0
    payloads_out: int = 0
    payloads_recovered: int = 0


@dataclass
class _GroupState:
    k: int
    n: int
    received: Dict[int, bytes] = field(default_factory=dict)
    uncoded: Dict[int, bytes] = field(default_factory=dict)
    delivered: bool = False


class FecGroupDecoder:
    """Reassemble FEC groups and recover lost payloads.

    ``add`` returns the group's original payloads (in source order) as soon
    as the group becomes decodable — i.e. when any ``k`` of its ``n``
    packets have arrived.  Each group is delivered exactly once; late
    packets for an already-delivered group are counted and dropped.
    """

    def __init__(
        self,
        max_tracked_groups: int = 1024,
        backend: Union[str, GFBackend, None] = None,
    ) -> None:
        if max_tracked_groups < 1:
            raise ValueError("max_tracked_groups must be >= 1")
        self._groups: Dict[int, _GroupState] = {}
        self._max_tracked = max_tracked_groups
        self._backend = resolve_backend(backend)
        self._codes: Dict[Tuple[int, int], BlockErasureCode] = {}
        self.stats = FecDecoderStats()

    @property
    def backend_name(self) -> str:
        """Name of the GF(256) backend decoding this stream."""
        return self._backend.name

    def _code_for(self, k: int, n: int) -> BlockErasureCode:
        code = self._codes.get((k, n))
        if code is None:
            code = BlockErasureCode(k, n, backend=self._backend)
            self._codes[(k, n)] = code
        return code

    def add(self, packet: FecPacket) -> List[bytes]:
        """Process one received packet; returns recovered payloads (if any)."""
        self.stats.packets_in += 1
        if packet.is_uncoded:
            self.stats.uncoded_packets_in += 1
            self.stats.payloads_out += 1
            return [packet.payload]

        if packet.is_parity:
            self.stats.parity_packets_in += 1
        else:
            self.stats.data_packets_in += 1

        state = self._groups.get(packet.group_id)
        if state is None:
            state = _GroupState(k=packet.k, n=packet.n)
            self._groups[packet.group_id] = state
            self.stats.groups_seen += 1
            self._evict_if_needed()
        if state.delivered:
            return []
        if packet.k != state.k or packet.n != state.n:
            raise FecCodingError(
                f"group {packet.group_id} has inconsistent (n, k) parameters")
        state.received.setdefault(packet.index, packet.payload)

        if len(state.received) < state.k:
            return []
        return self._deliver(packet.group_id, state)

    def _deliver(self, group_id: int, state: _GroupState) -> List[bytes]:
        code = self._code_for(state.k, state.n)
        blocks = code.decode(state.received)
        payloads = [unpad_block(block) for block in blocks]
        data_received = sum(1 for i in state.received if i < state.k)
        state.delivered = True
        state.received.clear()
        self.stats.groups_decoded += 1
        if data_received < state.k:
            self.stats.groups_repaired += 1
            self.stats.payloads_recovered += state.k - data_received
        self.stats.payloads_out += len(payloads)
        return payloads

    def flush(self) -> List[bytes]:
        """Surrender data packets from groups that never became decodable.

        Called at end-of-stream.  For each undelivered group the payloads of
        the data packets that *did* arrive are returned in index order; lost
        packets in those groups are counted as unrecoverable.
        """
        leftovers: List[bytes] = []
        for group_id in sorted(self._groups):
            state = self._groups[group_id]
            if state.delivered:
                continue
            if state.received:
                self.stats.groups_unrecoverable += 1
            for index in sorted(state.received):
                if index < state.k:
                    leftovers.append(unpad_block(state.received[index]))
                    self.stats.payloads_out += 1
            state.received.clear()
            state.delivered = True
        return leftovers

    def _evict_if_needed(self) -> None:
        """Drop the oldest tracked groups when the table grows too large."""
        while len(self._groups) > self._max_tracked:
            oldest = min(self._groups)
            state = self._groups.pop(oldest)
            if not state.delivered and state.received:
                self.stats.groups_unrecoverable += 1

    @property
    def pending_groups(self) -> int:
        """Number of groups tracked but not yet delivered."""
        return sum(1 for state in self._groups.values() if not state.delivered)
