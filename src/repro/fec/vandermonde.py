"""Systematic Vandermonde generator matrices (Rizzo-style erasure codes).

An (n, k) block erasure code converts k source packets into n encoded
packets such that *any* k of the n suffice to reconstruct the sources.  The
paper uses these codes (citing Rizzo [20]) for its FEC audio proxy.

The construction here follows Rizzo's: start from an n x k Vandermonde
matrix V with V[i][j] = alpha^(i*j) (rows are guaranteed to be pairwise
linearly independent), then post-multiply by the inverse of its top k x k
block so the first k rows become the identity.  The resulting *systematic*
generator matrix G has the properties we need:

* encoded packet i (< k) is literally source packet i — receivers that lose
  nothing never run the decoder;
* any k rows of G form an invertible matrix, so any k received packets can
  reconstruct the sources.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from .gf256 import FIELD_SIZE, gf_pow
from .matrix import GFMatrix

#: The largest supported number of encoded packets per group.  The
#: Vandermonde construction needs n distinct powers of alpha, which caps n
#: at the size of the multiplicative group.
MAX_GROUP_SIZE = FIELD_SIZE - 1


def validate_parameters(k: int, n: int) -> None:
    """Validate (n, k) code parameters, raising ``ValueError`` otherwise."""
    if k < 1:
        raise ValueError(f"k must be >= 1 (got {k})")
    if n < k:
        raise ValueError(f"n must be >= k (got n={n}, k={k})")
    if n > MAX_GROUP_SIZE:
        raise ValueError(f"n must be <= {MAX_GROUP_SIZE} (got {n})")


def vandermonde_matrix(k: int, n: int) -> GFMatrix:
    """The raw n x k Vandermonde matrix with entries alpha^(i*j)."""
    validate_parameters(k, n)
    return GFMatrix([[gf_pow(_alpha_for_row(i), j) for j in range(k)]
                     for i in range(n)])


def _alpha_for_row(i: int) -> int:
    """The evaluation point used for encoded packet ``i``.

    Row i evaluates the data polynomial at alpha^i; using i = 0..n-1 keeps
    the points distinct for all supported n.
    """
    return gf_pow(2, i) if i > 0 else 1


def systematic_generator_matrix(k: int, n: int) -> GFMatrix:
    """Return the systematic n x k generator matrix for an (n, k) code.

    The first k rows are the identity; the remaining n - k rows produce the
    parity packets.  Results are cached because proxies repeatedly encode
    with the same (n, k); the returned matrix is a private copy (GFMatrix is
    mutable, and the memoised instance must stay pristine).
    """
    return GFMatrix(_systematic_generator_matrix_cached(k, n).rows())


@lru_cache(maxsize=None)
def _systematic_generator_matrix_cached(k: int, n: int) -> GFMatrix:
    """Memoised construction; read-only internal callers use this directly."""
    validate_parameters(k, n)
    vand = vandermonde_matrix(k, n)
    top = vand.submatrix(range(k))
    systematic = vand.multiply(top.inverse())
    # Sanity check the construction: the data rows must be the identity.
    if not systematic.submatrix(range(k)).is_identity():
        raise AssertionError("systematic construction failed to yield identity rows")
    return systematic


def parity_rows(k: int, n: int) -> List[List[int]]:
    """The n - k parity rows of the systematic generator matrix."""
    generator = _systematic_generator_matrix_cached(k, n)
    return [generator.row(i) for i in range(k, n)]


def decoding_matrix(k: int, n: int, received_indices: List[int]) -> GFMatrix:
    """Matrix that reconstructs the k source packets from the given rows.

    ``received_indices`` identifies which k of the n encoded packets were
    received (in the order their payloads will be supplied).  The returned
    k x k matrix, multiplied by the received payload vector, yields the
    original source packets.
    """
    validate_parameters(k, n)
    if len(received_indices) != k:
        raise ValueError(
            f"exactly k={k} received indices are required (got {len(received_indices)})")
    if len(set(received_indices)) != len(received_indices):
        raise ValueError("received indices must be distinct")
    for index in received_indices:
        if not 0 <= index < n:
            raise ValueError(f"index {index} outside [0, {n})")
    cached = _decoding_matrix_cached(k, n, tuple(received_indices))
    # Defensive copy: GFMatrix is mutable, and handing out the memoised
    # instance would let a caller poison every future decode of the pattern.
    return GFMatrix(cached.rows())


@lru_cache(maxsize=4096)
def _decoding_matrix_cached(k: int, n: int, received_indices: "tuple[int, ...]"
                            ) -> GFMatrix:
    """The Gauss–Jordan inversion is O(k^3) scalar field ops; streams decode
    the same erasure patterns over and over, so the result is memoised.

    Internal callers that only *read* the matrix may use this directly to
    skip the defensive copy made by :func:`decoding_matrix`."""
    generator = _systematic_generator_matrix_cached(k, n)
    return generator.submatrix(received_indices).inverse()
