"""(n, k) block erasure encoder/decoder.

This is the workhorse behind the paper's FEC proxy: ``k`` equal-sized source
blocks go in, ``n`` encoded blocks come out (the first ``k`` are verbatim
copies of the sources because the code is systematic), and *any* ``k`` of
the ``n`` encoded blocks reconstruct the sources.

Variable-length packets are handled one level up (see
:mod:`repro.fec.group`), which pads payloads to a common block size; this
module deals purely in equal-length byte blocks.  The field algebra runs on
a pluggable :mod:`repro.fec.backend` (vectorised numpy by default), and the
``encode_batch``/``decode_batch`` methods expose the whole code word as a
handful of array operations for the hot paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .backend import GFBackend, resolve_backend
from .matrix import GFMatrix
from .vandermonde import (
    _decoding_matrix_cached,
    systematic_generator_matrix,
    validate_parameters,
)


class FecCodingError(ValueError):
    """Raised for invalid encode/decode inputs (wrong counts, lengths,
    duplicate indices, or too few blocks to reconstruct)."""


def _as_batch(blocks: Sequence[bytes]) -> np.ndarray:
    """Stack equal-length byte blocks into a (len(blocks), L) uint8 array."""
    length = len(blocks[0])
    for index, block in enumerate(blocks):
        if len(block) != length:
            raise FecCodingError(
                f"block {index} has length {len(block)}, expected {length}"
            )
    joined = b"".join(bytes(block) for block in blocks)
    return np.frombuffer(joined, dtype=np.uint8).reshape(len(blocks), length)


class BlockErasureCode:
    """A systematic (n, k) erasure code over GF(256).

    Parameters
    ----------
    k:
        Number of source blocks per group.
    n:
        Total number of encoded blocks per group (``n - k`` parity blocks).
    backend:
        GF(256) engine to run the block algebra on — a backend name, a
        :class:`~repro.fec.backend.GFBackend` instance, or ``None`` for the
        process default (see :func:`repro.fec.backend.get_backend`).

    The paper's audio proxy uses ``BlockErasureCode(k=4, n=6)`` — written
    FEC(6, 4) in the paper — chosen small "so as to minimise jitter".
    """

    def __init__(
        self, k: int, n: int, backend: Union[str, GFBackend, None] = None
    ) -> None:
        validate_parameters(k, n)
        self.k = k
        self.n = n
        self.backend = resolve_backend(backend)
        self._generator: GFMatrix = systematic_generator_matrix(k, n)
        self._parity_rows = [self._generator.row(i) for i in range(k, n)]

    # ------------------------------------------------------------ properties

    @property
    def parity_count(self) -> int:
        """Number of parity blocks produced per group (n - k)."""
        return self.n - self.k

    @property
    def overhead(self) -> float:
        """Relative redundancy added by the code: (n - k) / k."""
        return (self.n - self.k) / self.k

    @property
    def rate(self) -> float:
        """Code rate k / n (fraction of transmitted bytes that are data)."""
        return self.k / self.n

    @property
    def generator_matrix(self) -> GFMatrix:
        """The systematic n x k generator matrix."""
        return self._generator

    # -------------------------------------------------------------- encoding

    def encode(self, source_blocks: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` equal-length source blocks into ``n`` encoded blocks.

        The first ``k`` returned blocks are byte-for-byte the source blocks;
        the remaining ``n - k`` are parity blocks.
        """
        if len(source_blocks) != self.k:
            raise FecCodingError(
                f"expected {self.k} source blocks, got {len(source_blocks)}"
            )
        if not source_blocks[0]:
            raise FecCodingError("blocks must be non-empty")
        batch = _as_batch(source_blocks)
        encoded: List[bytes] = [bytes(block) for block in source_blocks]
        if self._parity_rows:
            parity = self.backend.apply_matrix(self._parity_rows, batch)
            encoded.extend(parity[i].tobytes() for i in range(parity.shape[0]))
        return encoded

    def encode_parity(self, source_blocks: Sequence[bytes]) -> List[bytes]:
        """Return only the ``n - k`` parity blocks for the group."""
        return self.encode(source_blocks)[self.k :]

    def encode_batch(self, source: np.ndarray) -> np.ndarray:
        """Encode a (k, L) ``uint8`` batch into the full (n, L) code word.

        Row i of the result is encoded block i: the first ``k`` rows are the
        source rows verbatim, the rest are parity.  The whole code word is
        produced by a single backend matrix-batch product.
        """
        source = np.asarray(source)
        parity = self.encode_parity_batch(source)
        encoded = np.empty((self.n, source.shape[1]), dtype=np.uint8)
        encoded[: self.k] = source
        encoded[self.k :] = parity
        return encoded

    def encode_parity_batch(self, source: np.ndarray) -> np.ndarray:
        """The (n - k, L) parity rows for a (k, L) ``uint8`` source batch.

        Like :meth:`encode_batch` but without materialising the verbatim
        source rows — the hot path for callers that already hold the source
        blocks (see :class:`repro.fec.group.FecGroupEncoder`).
        """
        source = np.asarray(source)
        if source.dtype != np.uint8:
            raise FecCodingError(f"source batch must be uint8, got {source.dtype}")
        if source.ndim != 2 or source.shape[0] != self.k:
            raise FecCodingError(
                f"source batch must have shape ({self.k}, L), got {source.shape}"
            )
        if source.shape[1] == 0:
            raise FecCodingError("blocks must be non-empty")
        if not self._parity_rows:
            return np.empty((0, source.shape[1]), dtype=np.uint8)
        return self.backend.apply_matrix(self._parity_rows, source)

    # -------------------------------------------------------------- decoding

    def decode(self, received: Dict[int, bytes]) -> List[bytes]:
        """Reconstruct the ``k`` source blocks from any ``k`` received blocks.

        ``received`` maps encoded-block index (0-based, < n) to payload.  If
        more than ``k`` blocks are supplied, data blocks are preferred (they
        are free to use) and the lowest-index parity blocks fill the gaps.

        Raises :class:`FecCodingError` when fewer than ``k`` blocks are
        available or indices are invalid.
        """
        if len(received) < self.k:
            raise FecCodingError(
                f"need at least k={self.k} blocks to decode, got {len(received)}"
            )
        for index in received:
            if not 0 <= index < self.n:
                raise FecCodingError(f"block index {index} outside [0, {self.n})")

        data_indices = sorted(i for i in received if i < self.k)
        parity_indices = sorted(i for i in received if i >= self.k)

        # Fast path: every source block arrived — no algebra needed.
        if len(data_indices) == self.k:
            return [bytes(received[i]) for i in range(self.k)]

        chosen = (data_indices + parity_indices)[: self.k]
        chosen.sort()
        batch = _as_batch([received[i] for i in chosen])

        sources: List[Optional[bytes]] = [None] * self.k
        # Received source blocks are already correct; only reconstruct the
        # missing ones (each missing source is one row of the decode matrix).
        for i in chosen:
            if i < self.k:
                sources[i] = bytes(received[i])
        missing = [i for i in range(self.k) if sources[i] is None]
        if missing:
            decode_matrix = _decoding_matrix_cached(self.k, self.n, tuple(chosen))
            rows = [decode_matrix.row(i) for i in missing]
            recovered = self.backend.apply_matrix(rows, batch)
            for slot, source_index in enumerate(missing):
                sources[source_index] = recovered[slot].tobytes()
        return [block for block in sources if block is not None]

    def decode_batch(self, indices: Sequence[int], blocks: np.ndarray) -> np.ndarray:
        """Reconstruct the (k, L) source batch from any ``k`` encoded rows.

        ``blocks`` is a (k, L) ``uint8`` array whose row j is the encoded
        block with index ``indices[j]``.  Returns the source blocks in source
        order; rows that arrived verbatim are copied, the rest come from one
        backend product with the relevant decode-matrix rows.
        """
        blocks = np.asarray(blocks)
        if blocks.dtype != np.uint8:
            raise FecCodingError(f"block batch must be uint8, got {blocks.dtype}")
        if blocks.ndim != 2 or blocks.shape[0] != self.k:
            raise FecCodingError(
                f"block batch must have shape ({self.k}, L), got {blocks.shape}"
            )
        order = [int(i) for i in indices]
        if len(order) != self.k:
            raise FecCodingError(
                f"exactly k={self.k} indices are required, got {len(order)}"
            )
        if len(set(order)) != len(order):
            raise FecCodingError("received indices must be distinct")
        for index in order:
            if not 0 <= index < self.n:
                raise FecCodingError(f"block index {index} outside [0, {self.n})")

        sources = np.empty((self.k, blocks.shape[1]), dtype=np.uint8)
        present = {}
        for slot, index in enumerate(order):
            if index < self.k:
                sources[index] = blocks[slot]
                present[index] = slot
        missing = [i for i in range(self.k) if i not in present]
        if missing:
            decode_matrix = _decoding_matrix_cached(
                self.k, self.n, tuple(sorted(order))
            )
            # decoding_matrix expects its input rows in sorted-index order.
            sort_order = np.argsort(order, kind="stable")
            sorted_batch = np.ascontiguousarray(blocks[sort_order])
            rows = [decode_matrix.row(i) for i in missing]
            recovered = self.backend.apply_matrix(rows, sorted_batch)
            for slot, source_index in enumerate(missing):
                sources[source_index] = recovered[slot]
        return sources

    def can_decode(self, received_indices: Sequence[int]) -> bool:
        """True when the given set of received indices suffices to decode."""
        unique = {i for i in received_indices if 0 <= i < self.n}
        return len(unique) >= self.k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockErasureCode(k={self.k}, n={self.n}, "
            f"backend={self.backend.name!r})"
        )


def encode_blocks(
    source_blocks: Sequence[bytes],
    k: int,
    n: int,
    backend: Union[str, GFBackend, None] = None,
) -> List[bytes]:
    """One-shot convenience wrapper around :meth:`BlockErasureCode.encode`."""
    return BlockErasureCode(k, n, backend=backend).encode(source_blocks)


def decode_blocks(
    received: Dict[int, bytes],
    k: int,
    n: int,
    backend: Union[str, GFBackend, None] = None,
) -> List[bytes]:
    """One-shot convenience wrapper around :meth:`BlockErasureCode.decode`."""
    return BlockErasureCode(k, n, backend=backend).decode(received)
