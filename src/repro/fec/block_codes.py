"""(n, k) block erasure encoder/decoder.

This is the workhorse behind the paper's FEC proxy: ``k`` equal-sized source
blocks go in, ``n`` encoded blocks come out (the first ``k`` are verbatim
copies of the sources because the code is systematic), and *any* ``k`` of
the ``n`` encoded blocks reconstruct the sources.

Variable-length packets are handled one level up (see
:mod:`repro.fec.group`), which pads payloads to a common block size; this
module deals purely in equal-length byte blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .gf256 import gf_dot_bytes
from .matrix import GFMatrix
from .vandermonde import (
    decoding_matrix,
    systematic_generator_matrix,
    validate_parameters,
)


class FecCodingError(ValueError):
    """Raised for invalid encode/decode inputs (wrong counts, lengths,
    duplicate indices, or too few blocks to reconstruct)."""


def _as_arrays(blocks: Sequence[bytes]) -> List[np.ndarray]:
    length = len(blocks[0])
    arrays = []
    for index, block in enumerate(blocks):
        if len(block) != length:
            raise FecCodingError(
                f"block {index} has length {len(block)}, expected {length}")
        arrays.append(np.frombuffer(bytes(block), dtype=np.uint8))
    return arrays


class BlockErasureCode:
    """A systematic (n, k) erasure code over GF(256).

    Parameters
    ----------
    k:
        Number of source blocks per group.
    n:
        Total number of encoded blocks per group (``n - k`` parity blocks).

    The paper's audio proxy uses ``BlockErasureCode(k=4, n=6)`` — written
    FEC(6, 4) in the paper — chosen small "so as to minimise jitter".
    """

    def __init__(self, k: int, n: int) -> None:
        validate_parameters(k, n)
        self.k = k
        self.n = n
        self._generator: GFMatrix = systematic_generator_matrix(k, n)
        self._parity_rows = [self._generator.row(i) for i in range(k, n)]

    # ------------------------------------------------------------ properties

    @property
    def parity_count(self) -> int:
        """Number of parity blocks produced per group (n - k)."""
        return self.n - self.k

    @property
    def overhead(self) -> float:
        """Relative redundancy added by the code: (n - k) / k."""
        return (self.n - self.k) / self.k

    @property
    def rate(self) -> float:
        """Code rate k / n (fraction of transmitted bytes that are data)."""
        return self.k / self.n

    @property
    def generator_matrix(self) -> GFMatrix:
        """The systematic n x k generator matrix."""
        return self._generator

    # -------------------------------------------------------------- encoding

    def encode(self, source_blocks: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` equal-length source blocks into ``n`` encoded blocks.

        The first ``k`` returned blocks are byte-for-byte the source blocks;
        the remaining ``n - k`` are parity blocks.
        """
        if len(source_blocks) != self.k:
            raise FecCodingError(
                f"expected {self.k} source blocks, got {len(source_blocks)}")
        if not source_blocks[0]:
            raise FecCodingError("blocks must be non-empty")
        arrays = _as_arrays(source_blocks)
        encoded: List[bytes] = [bytes(block) for block in source_blocks]
        for row in self._parity_rows:
            encoded.append(gf_dot_bytes(row, arrays).tobytes())
        return encoded

    def encode_parity(self, source_blocks: Sequence[bytes]) -> List[bytes]:
        """Return only the ``n - k`` parity blocks for the group."""
        return self.encode(source_blocks)[self.k:]

    # -------------------------------------------------------------- decoding

    def decode(self, received: Dict[int, bytes]) -> List[bytes]:
        """Reconstruct the ``k`` source blocks from any ``k`` received blocks.

        ``received`` maps encoded-block index (0-based, < n) to payload.  If
        more than ``k`` blocks are supplied, data blocks are preferred (they
        are free to use) and the lowest-index parity blocks fill the gaps.

        Raises :class:`FecCodingError` when fewer than ``k`` blocks are
        available or indices are invalid.
        """
        if len(received) < self.k:
            raise FecCodingError(
                f"need at least k={self.k} blocks to decode, got {len(received)}")
        for index in received:
            if not 0 <= index < self.n:
                raise FecCodingError(f"block index {index} outside [0, {self.n})")

        data_indices = sorted(i for i in received if i < self.k)
        parity_indices = sorted(i for i in received if i >= self.k)

        # Fast path: every source block arrived — no algebra needed.
        if len(data_indices) == self.k:
            return [bytes(received[i]) for i in range(self.k)]

        chosen = (data_indices + parity_indices)[:self.k]
        chosen.sort()
        blocks = [received[i] for i in chosen]
        arrays = _as_arrays(blocks)

        decode_matrix = decoding_matrix(self.k, self.n, chosen)
        sources: List[Optional[bytes]] = [None] * self.k
        # Received source blocks are already correct; only reconstruct the
        # missing ones (each missing source is one row of the decode matrix).
        for i in chosen:
            if i < self.k:
                sources[i] = bytes(received[i])
        for source_index in range(self.k):
            if sources[source_index] is not None:
                continue
            row = decode_matrix.row(source_index)
            sources[source_index] = gf_dot_bytes(row, arrays).tobytes()
        return [block for block in sources if block is not None]

    def can_decode(self, received_indices: Sequence[int]) -> bool:
        """True when the given set of received indices suffices to decode."""
        unique = {i for i in received_indices if 0 <= i < self.n}
        return len(unique) >= self.k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockErasureCode(k={self.k}, n={self.n})"


def encode_blocks(source_blocks: Sequence[bytes], k: int, n: int) -> List[bytes]:
    """One-shot convenience wrapper around :meth:`BlockErasureCode.encode`."""
    return BlockErasureCode(k, n).encode(source_blocks)


def decode_blocks(received: Dict[int, bytes], k: int, n: int) -> List[bytes]:
    """One-shot convenience wrapper around :meth:`BlockErasureCode.decode`."""
    return BlockErasureCode(k, n).decode(received)
