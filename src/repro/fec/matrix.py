"""Dense matrix algebra over GF(2^8).

Provides exactly the operations the erasure code needs: construction,
multiplication, sub-matrix extraction, and Gauss–Jordan inversion.  Matrices
are small (at most n x k with n, k <= 255); products are delegated to the
active :mod:`repro.fec.backend`, and the per-byte heavy lifting happens in
the backend's ``apply_matrix`` packet-batch path.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

from .backend import GFBackend, resolve_backend
from .gf256 import gf_add, gf_inv, gf_mul


class SingularMatrixError(ValueError):
    """Raised when a matrix that must be invertible is singular.

    For a correctly constructed Vandermonde code this can only happen if the
    caller passes duplicate packet indices to the decoder.
    """


class GFMatrix:
    """A dense matrix with elements in GF(256).

    Rows are stored as lists of ints in ``[0, 255]``.  Instances are mutable
    (the in-place row operations are used by the inversion routine) but all
    public arithmetic returns new matrices.
    """

    def __init__(self, rows: Sequence[Sequence[int]]) -> None:
        if not rows:
            raise ValueError("matrix must have at least one row")
        width = len(rows[0])
        if width == 0:
            raise ValueError("matrix must have at least one column")
        self._rows: List[List[int]] = []
        for row in rows:
            if len(row) != width:
                raise ValueError("all rows must have the same length")
            for value in row:
                if not 0 <= int(value) <= 255:
                    raise ValueError(f"element {value!r} outside GF(256)")
            self._rows.append([int(v) for v in row])

    # ---------------------------------------------------------- constructors

    @classmethod
    def identity(cls, size: int) -> "GFMatrix":
        """The size x size identity matrix."""
        return cls([[1 if i == j else 0 for j in range(size)] for i in range(size)])

    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "GFMatrix":
        return cls([[0] * ncols for _ in range(nrows)])

    # ------------------------------------------------------------ properties

    @property
    def nrows(self) -> int:
        return len(self._rows)

    @property
    def ncols(self) -> int:
        return len(self._rows[0])

    @property
    def shape(self) -> "tuple[int, int]":
        return (self.nrows, self.ncols)

    def row(self, i: int) -> List[int]:
        """A copy of row ``i``."""
        return list(self._rows[i])

    def rows(self) -> List[List[int]]:
        """A deep copy of all rows."""
        return [list(r) for r in self._rows]

    def __getitem__(self, index: "tuple[int, int]") -> int:
        i, j = index
        return self._rows[i][j]

    def __setitem__(self, index: "tuple[int, int]", value: int) -> None:
        i, j = index
        if not 0 <= int(value) <= 255:
            raise ValueError(f"element {value!r} outside GF(256)")
        self._rows[i][j] = int(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GFMatrix):
            return NotImplemented
        return self._rows == other._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GFMatrix({self._rows!r})"

    # ------------------------------------------------------------ operations

    def submatrix(self, row_indices: Iterable[int]) -> "GFMatrix":
        """Select the given rows (in the given order) into a new matrix."""
        return GFMatrix([self.row(i) for i in row_indices])

    def multiply(
        self,
        other: "GFMatrix",
        backend: Union[str, GFBackend, None] = None,
    ) -> "GFMatrix":
        """Matrix product ``self @ other`` over GF(256)."""
        if self.ncols != other.nrows:
            raise ValueError(f"cannot multiply {self.shape} by {other.shape}")
        rows = resolve_backend(backend).matmul(self._rows, other._rows)
        return GFMatrix(rows)

    def multiply_vector(
        self,
        vector: Sequence[int],
        backend: Union[str, GFBackend, None] = None,
    ) -> List[int]:
        """Matrix-vector product over GF(256)."""
        if len(vector) != self.ncols:
            raise ValueError("vector length must equal the number of columns")
        return resolve_backend(backend).matvec(self._rows, vector)

    def to_array(self) -> np.ndarray:
        """The matrix as a fresh (nrows, ncols) ``uint8`` numpy array."""
        return np.asarray(self._rows, dtype=np.uint8)

    def inverse(self) -> "GFMatrix":
        """Invert the matrix with Gauss–Jordan elimination over GF(256)."""
        if self.nrows != self.ncols:
            raise ValueError("only square matrices can be inverted")
        size = self.nrows
        work = [list(r) + identity_row for r, identity_row in
                zip(self.rows(), GFMatrix.identity(size).rows())]

        for col in range(size):
            # Find a pivot in or below row `col`.
            pivot_row = None
            for r in range(col, size):
                if work[r][col] != 0:
                    pivot_row = r
                    break
            if pivot_row is None:
                raise SingularMatrixError("matrix is singular over GF(256)")
            work[col], work[pivot_row] = work[pivot_row], work[col]

            # Normalise the pivot row.
            pivot = work[col][col]
            inv_pivot = gf_inv(pivot)
            work[col] = [gf_mul(inv_pivot, v) for v in work[col]]

            # Eliminate the column from every other row.
            for r in range(size):
                if r == col or work[r][col] == 0:
                    continue
                factor = work[r][col]
                work[r] = [gf_add(v, gf_mul(factor, p))
                           for v, p in zip(work[r], work[col])]

        return GFMatrix([row[size:] for row in work])

    def is_identity(self) -> bool:
        """True when the matrix is the identity matrix."""
        if self.nrows != self.ncols:
            return False
        return self == GFMatrix.identity(self.nrows)


def solve(matrix: GFMatrix, rhs: Sequence[int]) -> List[int]:
    """Solve ``matrix @ x = rhs`` for ``x`` over GF(256)."""
    return matrix.inverse().multiply_vector(rhs)
