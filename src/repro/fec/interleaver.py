"""Packet interleaving — spreading loss bursts across FEC groups.

Block erasure codes repair at most ``n - k`` losses per group, so a *burst*
of consecutive losses (common on 802.11: interference, fading, microwave
ovens) can defeat a code that would easily handle the same number of losses
spread out.  The classic counter-measure is interleaving: transmit packets
from ``depth`` different groups in round-robin order so that a burst of
``b`` consecutive channel losses costs each group at most ``ceil(b/depth)``
packets.

The paper's proxies keep groups small to bound jitter; the interleaver is
the complementary knob (trading extra buffering delay for burst tolerance)
and is used by the E5 benchmark's burst-loss ablation.
"""

from __future__ import annotations

from typing import Dict, List

from .packets import FecPacket


class BlockInterleaver:
    """Round-robin interleaver over fixed-size blocks of packets.

    Packets are buffered in rows of ``row_length`` (one FEC group per row);
    once ``depth`` rows have accumulated, they are emitted column by column.
    ``flush()`` emits whatever is buffered (padding nothing — a short final
    block is simply emitted in the same column order).
    """

    def __init__(self, depth: int, row_length: int) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if row_length < 1:
            raise ValueError("row_length must be >= 1")
        self.depth = depth
        self.row_length = row_length
        self._rows: List[List[FecPacket]] = []
        self._current: List[FecPacket] = []
        self.packets_in = 0
        self.packets_out = 0

    def add(self, packet: FecPacket) -> List[FecPacket]:
        """Add one packet; returns an interleaved block when one is ready."""
        self._current.append(packet)
        self.packets_in += 1
        if len(self._current) == self.row_length:
            self._rows.append(self._current)
            self._current = []
        if len(self._rows) == self.depth:
            return self._emit()
        return []

    def _emit(self) -> List[FecPacket]:
        rows, self._rows = self._rows, []
        out: List[FecPacket] = []
        for column in range(max(len(row) for row in rows)):
            for row in rows:
                if column < len(row):
                    out.append(row[column])
        self.packets_out += len(out)
        return out

    def flush(self) -> List[FecPacket]:
        """Emit everything still buffered (possibly a partial block)."""
        if self._current:
            self._rows.append(self._current)
            self._current = []
        if not self._rows:
            return []
        return self._emit()

    @property
    def buffered(self) -> int:
        """Packets currently held back waiting for a full block."""
        return sum(len(row) for row in self._rows) + len(self._current)

    @property
    def added_delay_packets(self) -> int:
        """Worst-case extra delay (in packets) the interleaver introduces."""
        return self.depth * self.row_length


class Deinterleaver:
    """Restore original per-group order on the receiving side.

    Because every :class:`~repro.fec.packets.FecPacket` carries its group id
    and index, deinterleaving does not need to mirror the interleaver's
    geometry: packets are simply reordered by (group, index) within a sliding
    window.  Losses leave gaps, which is fine — the FEC group decoder accepts
    packets in any order.
    """

    def __init__(self, window_groups: int = 8) -> None:
        if window_groups < 1:
            raise ValueError("window_groups must be >= 1")
        self.window_groups = window_groups
        self._pending: Dict[int, List[FecPacket]] = {}
        self.packets_in = 0

    def add(self, packet: FecPacket) -> List[FecPacket]:
        """Add one received packet; returns packets released in order."""
        self.packets_in += 1
        self._pending.setdefault(packet.group_id, []).append(packet)
        released: List[FecPacket] = []
        while len(self._pending) > self.window_groups:
            oldest = min(self._pending)
            released.extend(sorted(self._pending.pop(oldest),
                                   key=lambda p: p.index))
        return released

    def flush(self) -> List[FecPacket]:
        """Release every buffered packet in (group, index) order."""
        out: List[FecPacket] = []
        for group_id in sorted(self._pending):
            out.extend(sorted(self._pending.pop(group_id), key=lambda p: p.index))
        return out
