"""Arithmetic over the Galois field GF(2^8).

The paper's FEC filter uses (n, k) block erasure codes "[20]", i.e. Rizzo's
Vandermonde-based systematic erasure codes, which operate over GF(2^8).
This module provides the field arithmetic: addition is XOR, multiplication
and division use exponential/logarithm tables generated from the primitive
polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same polynomial used by
Rizzo's reference implementation.

Two representations are provided:

* scalar helpers (:func:`gf_add`, :func:`gf_mul`, :func:`gf_div`,
  :func:`gf_pow`, :func:`gf_inv`) used by the matrix algebra, and
* a full 256x256 multiplication table (:data:`MUL_TABLE`) exposed as a
  numpy array so that multiplying a scalar coefficient into an entire
  packet of bytes is a single fancy-indexing operation.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLYNOMIAL = 0x11D

#: Order of the multiplicative group.
FIELD_SIZE = 256


def _build_tables() -> "tuple[List[int], List[int]]":
    """Generate exp/log tables for the field."""
    exp = [0] * (2 * FIELD_SIZE)
    log = [0] * FIELD_SIZE
    x = 1
    for i in range(FIELD_SIZE - 1):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLYNOMIAL
    # Duplicate the table so that exp[a + b] never needs a modulo.
    for i in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        exp[i] = exp[i - (FIELD_SIZE - 1)]
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def gf_add(a: int, b: int) -> int:
    """Field addition (and subtraction): bitwise XOR."""
    return a ^ b


def gf_sub(a: int, b: int) -> int:
    """Field subtraction — identical to addition in characteristic 2."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Field multiplication via log/exp tables."""
    if a == 0 or b == 0:
        return 0
    return EXP_TABLE[LOG_TABLE[a] + LOG_TABLE[b]]


def gf_div(a: int, b: int) -> int:
    """Field division ``a / b``; raises ``ZeroDivisionError`` when b is 0."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return EXP_TABLE[LOG_TABLE[a] - LOG_TABLE[b] + (FIELD_SIZE - 1)]


def gf_pow(a: int, power: int) -> int:
    """Raise ``a`` to an integer power (power may be negative)."""
    if power == 0:
        return 1
    if a == 0:
        return 0
    exponent = (LOG_TABLE[a] * power) % (FIELD_SIZE - 1)
    return EXP_TABLE[exponent]


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a``."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return EXP_TABLE[(FIELD_SIZE - 1) - LOG_TABLE[a]]


def generator_element(i: int) -> int:
    """Return alpha**i, the i-th power of the field generator."""
    return EXP_TABLE[i % (FIELD_SIZE - 1)]


def _build_mul_table() -> np.ndarray:
    table = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
    for a in range(1, FIELD_SIZE):
        for b in range(1, FIELD_SIZE):
            table[a, b] = EXP_TABLE[LOG_TABLE[a] + LOG_TABLE[b]]
    return table


#: ``MUL_TABLE[a, b] == gf_mul(a, b)`` as a numpy uint8 array.
MUL_TABLE = _build_mul_table()


def gf_mul_bytes(coefficient: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``coefficient`` (vectorised).

    ``data`` must be a ``uint8`` numpy array; the result is a new array of
    the same shape.
    """
    if coefficient == 0:
        return np.zeros_like(data)
    if coefficient == 1:
        return data.copy()
    return MUL_TABLE[coefficient][data]


def gf_dot_bytes(coefficients: "List[int]", blocks: "List[np.ndarray]") -> np.ndarray:
    """Compute ``sum_i coefficients[i] * blocks[i]`` over GF(256).

    Every block must have the same length; the sum is the XOR of the
    per-block scalar products.  This is the inner loop of both encoding and
    decoding.
    """
    if len(coefficients) != len(blocks):
        raise ValueError("coefficients and blocks must have the same length")
    if not blocks:
        raise ValueError("at least one block is required")
    result = np.zeros_like(blocks[0])
    for coefficient, block in zip(coefficients, blocks):
        if coefficient == 0:
            continue
        result ^= gf_mul_bytes(coefficient, block)
    return result
