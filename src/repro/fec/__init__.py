"""(n, k) block erasure codes — the FEC substrate used by the proxy filters.

The paper's demand-driven FEC proxy protects audio streams on lossy wireless
LANs with systematic Vandermonde erasure codes (Rizzo-style): ``k`` source
packets become ``n`` encoded packets, and any ``k`` of the ``n`` reconstruct
the sources.  This package implements the field arithmetic, matrix algebra,
code construction, per-packet wire format and group assembly from scratch.
"""

from .backend import (
    BACKEND_ENV_VAR,
    GFBackend,
    GFBackendError,
    NumpyGFBackend,
    PurePythonGFBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from .block_codes import (
    BlockErasureCode,
    FecCodingError,
    decode_blocks,
    encode_blocks,
)
from .gf256 import (
    EXP_TABLE,
    FIELD_SIZE,
    LOG_TABLE,
    PRIMITIVE_POLYNOMIAL,
    gf_add,
    gf_div,
    gf_dot_bytes,
    gf_inv,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
    gf_sub,
)
from .interleaver import BlockInterleaver, Deinterleaver
from .group import (
    FecDecoderStats,
    FecEncoderStats,
    FecGroupDecoder,
    FecGroupEncoder,
)
from .matrix import GFMatrix, SingularMatrixError, solve
from .packets import (
    FEC_MAGIC,
    FEC_VERSION,
    FLAG_PARITY,
    FLAG_UNCODED,
    FecPacket,
    FecPacketError,
    block_size_for,
    pad_block,
    unpad_block,
)
from .vandermonde import (
    MAX_GROUP_SIZE,
    decoding_matrix,
    parity_rows,
    systematic_generator_matrix,
    validate_parameters,
    vandermonde_matrix,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "GFBackend",
    "GFBackendError",
    "NumpyGFBackend",
    "PurePythonGFBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "BlockErasureCode",
    "FecCodingError",
    "encode_blocks",
    "decode_blocks",
    "gf_add",
    "gf_sub",
    "gf_mul",
    "gf_div",
    "gf_pow",
    "gf_inv",
    "gf_mul_bytes",
    "gf_dot_bytes",
    "EXP_TABLE",
    "LOG_TABLE",
    "FIELD_SIZE",
    "PRIMITIVE_POLYNOMIAL",
    "GFMatrix",
    "SingularMatrixError",
    "solve",
    "vandermonde_matrix",
    "systematic_generator_matrix",
    "decoding_matrix",
    "parity_rows",
    "validate_parameters",
    "MAX_GROUP_SIZE",
    "FecPacket",
    "FecPacketError",
    "FLAG_PARITY",
    "FLAG_UNCODED",
    "FEC_MAGIC",
    "FEC_VERSION",
    "pad_block",
    "unpad_block",
    "block_size_for",
    "FecGroupEncoder",
    "FecGroupDecoder",
    "FecEncoderStats",
    "FecDecoderStats",
    "BlockInterleaver",
    "Deinterleaver",
]
