"""Wire format for FEC-encoded packets.

Every packet emitted by the FEC encoder filter carries a small header that
identifies the (n, k) code parameters, the FEC *group* the packet belongs
to, and the packet's index within the group (indices < k are data packets,
indices >= k are parity packets).  The decoder filter uses these headers to
reassemble groups and reconstruct lost data packets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: Header layout: magic, version, flags, k, n, index, group_id (u32).
_HEADER = struct.Struct(">BBBBBBI")
HEADER_SIZE = _HEADER.size

FEC_MAGIC = 0xFE
FEC_VERSION = 1

#: Flag: the payload is an uncoded passthrough packet (e.g. the tail of a
#: stream that did not fill a complete group).
FLAG_UNCODED = 0x01
#: Flag: the packet is a parity packet (index >= k); informational.
FLAG_PARITY = 0x02


class FecPacketError(ValueError):
    """Raised when an FEC packet header is malformed."""


@dataclass(frozen=True)
class FecPacket:
    """A single FEC-encoded packet (data or parity).

    Attributes
    ----------
    group_id:
        Monotonically increasing identifier of the FEC group.
    index:
        Position of this packet within the group's ``n`` encoded packets.
    k, n:
        Code parameters used for the group.
    payload:
        The encoded block (padded source block for data packets, parity
        bytes for parity packets) or the raw payload for uncoded packets.
    flags:
        Bitwise OR of ``FLAG_*`` values.
    """

    group_id: int
    index: int
    k: int
    n: int
    payload: bytes
    flags: int = 0

    @property
    def is_parity(self) -> bool:
        """True when this packet carries parity rather than source data."""
        return self.index >= self.k and not self.is_uncoded

    @property
    def is_data(self) -> bool:
        """True when this packet carries a (padded) source block."""
        return self.index < self.k and not self.is_uncoded

    @property
    def is_uncoded(self) -> bool:
        """True when the payload bypassed FEC (stream tail / flush)."""
        return bool(self.flags & FLAG_UNCODED)

    def pack(self) -> bytes:
        """Serialise the packet (header + payload) to bytes."""
        if not 0 <= self.group_id <= 0xFFFFFFFF:
            raise FecPacketError(f"group_id {self.group_id} out of range")
        if not 0 <= self.index < 256 or not 0 < self.k < 256 or not 0 < self.n < 256:
            raise FecPacketError("index/k/n out of range for the wire format")
        header = _HEADER.pack(FEC_MAGIC, FEC_VERSION, self.flags,
                              self.k, self.n, self.index, self.group_id)
        return header + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "FecPacket":
        """Parse a packet previously produced by :meth:`pack`."""
        if len(data) < HEADER_SIZE:
            raise FecPacketError(
                f"packet too short for FEC header ({len(data)} bytes)")
        magic, version, flags, k, n, index, group_id = _HEADER.unpack_from(data, 0)
        if magic != FEC_MAGIC:
            raise FecPacketError(f"bad FEC magic 0x{magic:02x}")
        if version != FEC_VERSION:
            raise FecPacketError(f"unsupported FEC version {version}")
        return cls(group_id=group_id, index=index, k=k, n=n,
                   payload=data[HEADER_SIZE:], flags=flags)


def pad_block(payload: bytes, block_size: int) -> bytes:
    """Prefix ``payload`` with its 16-bit length and pad to ``block_size``.

    The length prefix lets the decoder strip padding after reconstruction;
    the encoder chooses ``block_size`` as the longest payload in the group
    plus the two length bytes.
    """
    if len(payload) > 0xFFFF:
        raise FecPacketError("payload larger than 65535 bytes cannot be padded")
    prefixed = struct.pack(">H", len(payload)) + payload
    if len(prefixed) > block_size:
        raise FecPacketError(
            f"payload of {len(payload)} bytes does not fit block size {block_size}")
    return prefixed + b"\x00" * (block_size - len(prefixed))


def unpad_block(block: bytes) -> bytes:
    """Recover the original payload from a padded block."""
    if len(block) < 2:
        raise FecPacketError("padded block shorter than its length prefix")
    (length,) = struct.unpack_from(">H", block, 0)
    if length > len(block) - 2:
        raise FecPacketError(
            f"length prefix {length} exceeds block payload {len(block) - 2}")
    return block[2:2 + length]


def block_size_for(payloads: "list[bytes]") -> int:
    """The padded block size needed to carry every payload in a group."""
    if not payloads:
        raise FecPacketError("cannot size a block for an empty group")
    return max(len(p) for p in payloads) + 2
