"""repro — a reproduction of "Design of Composable Proxy Filters for
Heterogeneous Mobile Computing" (McKinley & Padmanabhan, 2001).

The package is organised as a set of substrates underneath the paper's
primary contribution:

===================  ========================================================
``repro.streams``    detachable streams (pause / disconnect / reconnect)
``repro.runtime``    pluggable execution engines (threaded, event-driven)
``repro.core``       composable filters, ControlThread, Proxy, ControlManager
``repro.filters``    the filter library (FEC, transcoders, compression, taps)
``repro.fec``        (n, k) block erasure codes over GF(2^8)
``repro.media``      PCM audio, WAV, GOP video, packetisation
``repro.net``        simulated WaveLAN, loss models, traces, Figure 7 stats
``repro.obs``        fleet observability: metrics, /metrics, events, replay
``repro.rapidware``  observer/responder raplets and adaptation policies
``repro.pavilion``   collaborative browsing substrate (leadership, browsers)
``repro.proxies``    composed proxies: FEC audio (Figure 6/7), transcoding
===================  ========================================================

The most commonly used classes are re-exported here; see the subpackages for
the full API.
"""

from . import (
    core,
    fec,
    filters,
    media,
    net,
    obs,
    pavilion,
    proxies,
    rapidware,
    runtime,
    streams,
)
from .core import (
    CallableSink,
    CallableSource,
    CollectorSink,
    ControlManager,
    ControlServer,
    ControlThread,
    Filter,
    FilterContainer,
    FilterRegistry,
    FilterSpec,
    IterableSource,
    PacketFilter,
    Proxy,
    default_registry,
    null_proxy,
)
from .filters import FecDecoderFilter, FecEncoderFilter
from .proxies import FecAudioProxy, run_fec_audio_experiment
from .rapidware import AdaptiveAudioSession, run_adaptive_walk_experiment
from .runtime import EventEngine, ExecutionEngine, ThreadedEngine, get_engine
from .streams import DetachableInputStream, DetachableOutputStream, make_pipe

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "streams",
    "runtime",
    "core",
    "filters",
    "fec",
    "media",
    "net",
    "obs",
    "rapidware",
    "pavilion",
    "proxies",
    "DetachableInputStream",
    "DetachableOutputStream",
    "make_pipe",
    "Filter",
    "PacketFilter",
    "FilterContainer",
    "IterableSource",
    "CallableSource",
    "CollectorSink",
    "CallableSink",
    "ControlThread",
    "Proxy",
    "null_proxy",
    "ControlServer",
    "ControlManager",
    "FilterRegistry",
    "FilterSpec",
    "default_registry",
    "FecEncoderFilter",
    "FecDecoderFilter",
    "FecAudioProxy",
    "run_fec_audio_experiment",
    "AdaptiveAudioSession",
    "run_adaptive_walk_experiment",
    "ExecutionEngine",
    "ThreadedEngine",
    "EventEngine",
    "get_engine",
]
