"""Simulated wired LAN — the lossless side of the proxy.

In the paper's configuration (Figure 3) the proxy node receives the
multicast stream from a sender on the wired network, which for the purposes
of the experiments is reliable and fast.  This module models that segment as
a simple reliable message fabric with named hosts and multicast groups, plus
bandwidth accounting so transcoding benchmarks can compare wired versus
wireless load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

#: Default wired bandwidth (100 Mbps switched Ethernet of the era).
WIRED_BANDWIDTH_BPS = 100_000_000


@dataclass
class WiredHost:
    """A host attached to the wired LAN."""

    name: str
    inbox: List[bytes] = field(default_factory=list)
    on_receive: Optional[Callable[[bytes], None]] = None
    packets_received: int = 0
    bytes_received: int = 0

    def deliver(self, data: bytes) -> None:
        self.packets_received += 1
        self.bytes_received += len(data)
        self.inbox.append(data)
        if self.on_receive is not None:
            self.on_receive(data)

    def take(self) -> List[bytes]:
        """Drain and return everything delivered since the last call."""
        packets, self.inbox = self.inbox, []
        return packets


class WiredLAN:
    """A reliable switched LAN with unicast and multicast delivery."""

    def __init__(self, bandwidth_bps: float = WIRED_BANDWIDTH_BPS) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps
        self._hosts: Dict[str, WiredHost] = {}
        self._groups: Dict[str, Set[str]] = {}
        self.packets_sent = 0
        self.bytes_sent = 0
        self.busy_time_s = 0.0

    # -- topology -------------------------------------------------------------

    def add_host(self, name: str,
                 on_receive: Optional[Callable[[bytes], None]] = None) -> WiredHost:
        if name in self._hosts:
            raise ValueError(f"host {name!r} already exists")
        host = WiredHost(name=name, on_receive=on_receive)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> WiredHost:
        return self._hosts[name]

    @property
    def hosts(self) -> List[WiredHost]:
        return list(self._hosts.values())

    def join_group(self, group: str, host_name: str) -> None:
        """Subscribe ``host_name`` to multicast group ``group``."""
        if host_name not in self._hosts:
            raise KeyError(f"unknown host {host_name!r}")
        self._groups.setdefault(group, set()).add(host_name)

    def leave_group(self, group: str, host_name: str) -> None:
        self._groups.get(group, set()).discard(host_name)

    def group_members(self, group: str) -> List[str]:
        return sorted(self._groups.get(group, set()))

    # -- transmission ---------------------------------------------------------

    def _account(self, nbytes: int) -> None:
        self.packets_sent += 1
        self.bytes_sent += nbytes
        self.busy_time_s += nbytes * 8.0 / self.bandwidth_bps

    def unicast(self, destination: str, data: bytes) -> None:
        """Deliver ``data`` reliably to a single host."""
        self._account(len(data))
        self._hosts[destination].deliver(data)

    def multicast(self, group: str, data: bytes,
                  exclude: Optional[str] = None) -> List[str]:
        """Deliver ``data`` to every member of ``group`` except ``exclude``."""
        self._account(len(data))
        delivered = []
        for member in sorted(self._groups.get(group, set())):
            if member == exclude:
                continue
            self._hosts[member].deliver(data)
            delivered.append(member)
        return delivered

    def broadcast(self, data: bytes, exclude: Optional[str] = None) -> List[str]:
        """Deliver ``data`` to every host on the LAN except ``exclude``."""
        self._account(len(data))
        delivered = []
        for name, host in sorted(self._hosts.items()):
            if name == exclude:
                continue
            host.deliver(data)
            delivered.append(name)
        return delivered
