"""Packet loss models for the simulated wireless channel.

The paper's experiments ran on a 2 Mbps WaveLAN network where "packet loss
rate can change dramatically over a distance of several meters"; the
Figure 7 trace was captured 25 m from the access point and saw an average
raw receipt rate of 98.54%.  Since the physical testbed is unavailable, this
module provides the loss processes used in its place:

* :class:`NoLoss` — a perfect channel (the wired LAN),
* :class:`BernoulliLoss` — independent losses with a fixed probability,
* :class:`GilbertElliottLoss` — the classic two-state bursty-loss model,
  which better matches 802.11 interference/fading behaviour,
* :class:`DistanceLoss` — loss probability as a function of receiver
  distance from the access point, calibrated so that 25 m gives the paper's
  measured ~1.46% loss and so that loss rises steeply beyond ~35 m.

All models are seeded and therefore reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Optional

#: Calibration anchors for :func:`loss_probability_at_distance`.
CALIBRATION_DISTANCE_M = 25.0
CALIBRATION_LOSS = 0.0146  # 1 - 0.9854, the paper's measured raw loss at 25 m
DISTANCE_SCALE_M = 6.0     # e-folding distance of the loss curve
MAX_LOSS_PROBABILITY = 0.95


def loss_probability_at_distance(distance_m: float) -> float:
    """Packet loss probability at ``distance_m`` metres from the access point.

    An exponential path-loss-driven curve anchored at the paper's measured
    operating point (1.46% at 25 m).  Representative values::

        5 m  -> ~0.05%     25 m -> 1.46%      35 m -> ~7.7%
        15 m -> ~0.27%     30 m -> ~3.4%      45 m -> ~41%

    which reproduces both the "already quite high" delivery at 25 m and the
    dramatic degradation over a few additional metres reported in the
    companion measurement study.
    """
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    probability = CALIBRATION_LOSS * math.exp(
        (distance_m - CALIBRATION_DISTANCE_M) / DISTANCE_SCALE_M)
    return min(probability, MAX_LOSS_PROBABILITY)


class LossModel:
    """Base class for per-packet loss decisions."""

    def packet_lost(self) -> bool:
        """Decide the fate of the next packet: True means dropped."""
        raise NotImplementedError

    def expected_loss_rate(self) -> float:
        """Long-run average loss probability of the model."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset any internal state (burst state, RNG position is kept)."""


class NoLoss(LossModel):
    """A lossless channel (used for the wired LAN)."""

    def packet_lost(self) -> bool:
        return False

    def expected_loss_rate(self) -> float:
        return 0.0


class BernoulliLoss(LossModel):
    """Independent (memoryless) packet losses with probability ``p``."""

    def __init__(self, probability: float, seed: Optional[int] = None) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self._rng = random.Random(seed)

    def packet_lost(self) -> bool:
        if self.probability <= 0.0:
            return False
        return self._rng.random() < self.probability

    def expected_loss_rate(self) -> float:
        return self.probability


class GilbertElliottLoss(LossModel):
    """Two-state (good/bad) bursty loss model.

    In the *good* state packets are lost with probability ``good_loss``; in
    the *bad* state with ``bad_loss``.  Transitions happen per packet with
    probabilities ``p_good_to_bad`` and ``p_bad_to_good``.  Wireless LAN
    losses are bursty (interference, fading, microwave ovens), and burstiness
    is exactly what stresses an FEC group: this model lets the benchmarks
    explore it.
    """

    def __init__(self, p_good_to_bad: float = 0.005, p_bad_to_good: float = 0.2,
                 good_loss: float = 0.001, bad_loss: float = 0.3,
                 seed: Optional[int] = None) -> None:
        for name, value in [("p_good_to_bad", p_good_to_bad),
                            ("p_bad_to_good", p_bad_to_good),
                            ("good_loss", good_loss), ("bad_loss", bad_loss)]:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if p_bad_to_good == 0.0 and p_good_to_bad > 0.0:
            raise ValueError("p_bad_to_good must be > 0 when the bad state is reachable")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self._rng = random.Random(seed)
        self._in_bad_state = False

    @property
    def in_bad_state(self) -> bool:
        return self._in_bad_state

    def packet_lost(self) -> bool:
        # State transition first, then the per-state loss draw.
        if self._in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss = self.bad_loss if self._in_bad_state else self.good_loss
        return self._rng.random() < loss

    def expected_loss_rate(self) -> float:
        denominator = self.p_good_to_bad + self.p_bad_to_good
        if denominator == 0.0:
            return self.good_loss
        fraction_bad = self.p_good_to_bad / denominator
        return fraction_bad * self.bad_loss + (1.0 - fraction_bad) * self.good_loss

    def reset(self) -> None:
        self._in_bad_state = False


class DistanceLoss(LossModel):
    """Loss driven by the receiver's distance from the access point.

    The distance can be updated at any time (user mobility); the loss
    probability follows :func:`loss_probability_at_distance`.
    """

    def __init__(self, distance_m: float, seed: Optional[int] = None) -> None:
        self._distance_m = 0.0
        self._rng = random.Random(seed)
        self.set_distance(distance_m)

    @property
    def distance_m(self) -> float:
        return self._distance_m

    def set_distance(self, distance_m: float) -> None:
        """Move the receiver to ``distance_m`` metres from the access point."""
        if distance_m < 0:
            raise ValueError("distance must be non-negative")
        self._distance_m = float(distance_m)

    def packet_lost(self) -> bool:
        return self._rng.random() < loss_probability_at_distance(self._distance_m)

    def expected_loss_rate(self) -> float:
        return loss_probability_at_distance(self._distance_m)


class FixedPatternLoss(LossModel):
    """Deterministic loss pattern (for unit tests and worked examples).

    ``pattern`` is a sequence of booleans; ``True`` at position ``i`` means
    the i-th packet is lost.  The pattern repeats if more packets are sent
    than it covers (unless ``repeat=False``, in which case extra packets are
    delivered).
    """

    def __init__(self, pattern, repeat: bool = True) -> None:
        self.pattern = [bool(v) for v in pattern]
        self.repeat = repeat
        self._position = 0

    def packet_lost(self) -> bool:
        if not self.pattern:
            return False
        if self._position >= len(self.pattern) and not self.repeat:
            return False
        lost = self.pattern[self._position % len(self.pattern)]
        self._position += 1
        return lost

    def expected_loss_rate(self) -> float:
        if not self.pattern:
            return 0.0
        return sum(self.pattern) / len(self.pattern)

    def reset(self) -> None:
        self._position = 0
