"""Network substrate: loss models, wireless/wired LAN simulation, traces.

The paper's evaluation ran on a real 2 Mbps WaveLAN; this package provides
the simulated replacement — calibrated distance-based loss, bursty
Gilbert–Elliott loss, an access point with independent per-receiver losses,
a reliable wired LAN, generic multicast groups, and packet traces/statistics
including the Figure 7 windowing.
"""

from .arq import (
    ArqResult,
    compare_fec_with_arq,
    fec_transmission_overhead,
    simulate_multicast_arq,
    simulate_unicast_arq,
)
from .channel import (
    CALIBRATION_DISTANCE_M,
    CALIBRATION_LOSS,
    BernoulliLoss,
    DistanceLoss,
    FixedPatternLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    loss_probability_at_distance,
)
from .multicast import MulticastGroup, SubscriberRecord
from .stats import (
    FIG7_WINDOW_SIZE,
    DeliveryReport,
    ReceiverStats,
    WindowPoint,
    loss_run_lengths,
    windowed_percentages,
)
from .trace import (
    EVENT_DELIVERED,
    EVENT_LOST,
    EVENT_REPAIRED,
    EVENT_SENT,
    PacketTrace,
    TraceEvent,
)
from .wired import WIRED_BANDWIDTH_BPS, WiredHost, WiredLAN
from .wlan import (
    PER_PACKET_OVERHEAD_S,
    WAVELAN_BANDWIDTH_BPS,
    AccessPoint,
    LinearWalk,
    TransmissionRecord,
    WirelessLAN,
    WirelessReceiver,
)

__all__ = [
    "ArqResult",
    "simulate_multicast_arq",
    "simulate_unicast_arq",
    "compare_fec_with_arq",
    "fec_transmission_overhead",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "DistanceLoss",
    "FixedPatternLoss",
    "loss_probability_at_distance",
    "CALIBRATION_DISTANCE_M",
    "CALIBRATION_LOSS",
    "AccessPoint",
    "WirelessLAN",
    "WirelessReceiver",
    "TransmissionRecord",
    "LinearWalk",
    "WAVELAN_BANDWIDTH_BPS",
    "PER_PACKET_OVERHEAD_S",
    "WiredLAN",
    "WiredHost",
    "WIRED_BANDWIDTH_BPS",
    "MulticastGroup",
    "SubscriberRecord",
    "ReceiverStats",
    "DeliveryReport",
    "WindowPoint",
    "FIG7_WINDOW_SIZE",
    "windowed_percentages",
    "loss_run_lengths",
    "PacketTrace",
    "TraceEvent",
    "EVENT_SENT",
    "EVENT_DELIVERED",
    "EVENT_LOST",
    "EVENT_REPAIRED",
]
