"""Packet event traces.

A lightweight event log used by the benchmarks to record what happened to
every packet (sent, delivered, lost, repaired) together with a logical
timestamp, so experiment results can be recomputed and inspected after a
run without re-running the simulation.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

EVENT_SENT = "sent"
EVENT_DELIVERED = "delivered"
EVENT_LOST = "lost"
EVENT_REPAIRED = "repaired"

_VALID_EVENTS = {EVENT_SENT, EVENT_DELIVERED, EVENT_LOST, EVENT_REPAIRED}


@dataclass(frozen=True)
class TraceEvent:
    """One packet event."""

    time_s: float
    event: str
    sequence: int
    receiver: str = ""
    size_bytes: int = 0


class PacketTrace:
    """An append-only log of :class:`TraceEvent` records."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._events: List[TraceEvent] = []

    def record(self, event: str, sequence: int, time_s: float = 0.0,
               receiver: str = "", size_bytes: int = 0) -> None:
        """Append one event to the trace."""
        if event not in _VALID_EVENTS:
            raise ValueError(f"unknown event type {event!r}")
        self._events.append(TraceEvent(time_s=time_s, event=event,
                                       sequence=sequence, receiver=receiver,
                                       size_bytes=size_bytes))

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            if event.event not in _VALID_EVENTS:
                raise ValueError(f"unknown event type {event.event!r}")
            self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- queries --------------------------------------------------------------

    def count(self, event: str, receiver: Optional[str] = None) -> int:
        """Number of events of a given type (optionally for one receiver)."""
        return sum(1 for e in self._events
                   if e.event == event and (receiver is None or e.receiver == receiver))

    def sequences(self, event: str, receiver: Optional[str] = None) -> List[int]:
        """Sequence numbers of all events of a given type."""
        return [e.sequence for e in self._events
                if e.event == event and (receiver is None or e.receiver == receiver)]

    def receivers(self) -> List[str]:
        return sorted({e.receiver for e in self._events if e.receiver})

    def summary(self) -> Dict[str, int]:
        """Event counts by type."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.event] = counts.get(event.event, 0) + 1
        return counts

    # -- export ---------------------------------------------------------------

    def to_csv(self) -> str:
        """Render the trace as CSV text (time, event, sequence, receiver, size)."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["time_s", "event", "sequence", "receiver", "size_bytes"])
        for event in self._events:
            writer.writerow([f"{event.time_s:.6f}", event.event, event.sequence,
                             event.receiver, event.size_bytes])
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str, name: str = "trace") -> "PacketTrace":
        """Parse a trace previously produced by :meth:`to_csv`."""
        trace = cls(name=name)
        reader = csv.DictReader(io.StringIO(text))
        for row in reader:
            trace.record(event=row["event"], sequence=int(row["sequence"]),
                         time_s=float(row["time_s"]), receiver=row["receiver"],
                         size_bytes=int(row["size_bytes"]))
        return trace
