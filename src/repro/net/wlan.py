"""Simulated wireless LAN — the paper's 2 Mbps WaveLAN segment.

The testbed of Figure 3 multicasts a proxy's output over a wireless LAN to
one or more mobile receivers; each receiver experiences its *own* packet
losses (which is why a single parity packet can repair different losses at
different receivers).  This module models that segment:

* an :class:`AccessPoint` with a configurable raw bandwidth (default the
  paper's 2 Mbps) and per-packet transmission overhead,
* any number of :class:`WirelessReceiver` objects, each with an independent,
  seeded loss model (distance-based by default),
* simulated transmission time accounting so benchmarks can report channel
  utilisation and per-packet latency without real clocks.

The simulation is synchronous and deterministic: ``multicast()`` returns the
per-receiver delivery outcome immediately and all randomness comes from the
seeded loss models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .channel import DistanceLoss, LossModel, NoLoss
from .stats import ReceiverStats

#: Raw bandwidth of the paper's WaveLAN network.
WAVELAN_BANDWIDTH_BPS = 2_000_000

#: Fixed per-packet channel time (preamble, MAC framing, inter-frame gaps),
#: a rough 802.11/WaveLAN figure used only for utilisation accounting.
PER_PACKET_OVERHEAD_S = 0.0006


class WirelessReceiver:
    """A mobile host listening on the wireless LAN.

    Packets delivered to the receiver are appended to an inbox (optionally
    forwarded to a callback); packets lost by the channel are counted but
    never seen by the inbox, exactly like a UDP socket on a lossy link.
    """

    def __init__(self, name: str, loss_model: LossModel,
                 on_receive: Optional[Callable[[bytes], None]] = None) -> None:
        self.name = name
        self.loss_model = loss_model
        self.on_receive = on_receive
        self.inbox: List[bytes] = []
        self.stats = ReceiverStats(name=name)
        self.loss_trace: List[bool] = []

    # -- channel-facing API ---------------------------------------------------

    def offer(self, data: bytes) -> bool:
        """Called by the access point for every transmitted packet.

        Applies the receiver's loss model and returns True when the packet
        was delivered.
        """
        lost = self.loss_model.packet_lost()
        self.loss_trace.append(lost)
        if lost:
            self.stats.record_loss()
            return False
        self.stats.record_delivery(len(data))
        self.inbox.append(data)
        if self.on_receive is not None:
            self.on_receive(data)
        return True

    # -- host-facing API ------------------------------------------------------

    def take(self) -> List[bytes]:
        """Drain and return everything delivered since the last call."""
        packets, self.inbox = self.inbox, []
        return packets

    def pending(self) -> int:
        """Number of delivered-but-unread packets."""
        return len(self.inbox)

    @property
    def distance_m(self) -> Optional[float]:
        """Receiver distance, when the loss model is distance-based."""
        if isinstance(self.loss_model, DistanceLoss):
            return self.loss_model.distance_m
        return None

    def move_to(self, distance_m: float) -> None:
        """Move the receiver (only meaningful for distance-based loss)."""
        if not isinstance(self.loss_model, DistanceLoss):
            raise TypeError(
                f"receiver {self.name!r} does not use a distance-based loss model")
        self.loss_model.set_distance(distance_m)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WirelessReceiver {self.name} received={self.stats.packets_received}>"


@dataclass
class TransmissionRecord:
    """Book-keeping for one multicast transmission."""

    size_bytes: int
    airtime_s: float
    delivered_to: List[str]
    lost_by: List[str]


class AccessPoint:
    """The wireless LAN segment: one sender (the proxy) to many receivers."""

    def __init__(self, bandwidth_bps: float = WAVELAN_BANDWIDTH_BPS,
                 per_packet_overhead_s: float = PER_PACKET_OVERHEAD_S,
                 default_seed: int = 0) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps
        self.per_packet_overhead_s = per_packet_overhead_s
        self._default_seed = default_seed
        self._receivers: Dict[str, WirelessReceiver] = {}
        self.packets_sent = 0
        self.bytes_sent = 0
        self.busy_time_s = 0.0
        self.history: List[TransmissionRecord] = []

    # -- topology -------------------------------------------------------------

    def add_receiver(self, name: str, distance_m: Optional[float] = None,
                     loss_model: Optional[LossModel] = None,
                     on_receive: Optional[Callable[[bytes], None]] = None,
                     seed: Optional[int] = None) -> WirelessReceiver:
        """Register a receiver, either by distance or with an explicit model.

        Each receiver gets its own independently seeded loss model so losses
        at different receivers are uncorrelated (the property the paper's
        multicast-FEC argument relies on).
        """
        if name in self._receivers:
            raise ValueError(f"receiver {name!r} already exists")
        if loss_model is None:
            if distance_m is None:
                loss_model = NoLoss()
            else:
                receiver_seed = seed if seed is not None else (
                    self._default_seed * 7919 + len(self._receivers) + 1)
                loss_model = DistanceLoss(distance_m, seed=receiver_seed)
        receiver = WirelessReceiver(name, loss_model, on_receive=on_receive)
        self._receivers[name] = receiver
        return receiver

    def remove_receiver(self, name: str) -> None:
        self._receivers.pop(name, None)

    def receiver(self, name: str) -> WirelessReceiver:
        return self._receivers[name]

    @property
    def receivers(self) -> List[WirelessReceiver]:
        return list(self._receivers.values())

    # -- transmission ---------------------------------------------------------

    def airtime_for(self, nbytes: int) -> float:
        """Channel time consumed by a packet of ``nbytes``."""
        return nbytes * 8.0 / self.bandwidth_bps + self.per_packet_overhead_s

    def multicast(self, data: bytes) -> TransmissionRecord:
        """Transmit one packet to every receiver (independent loss per receiver)."""
        airtime = self.airtime_for(len(data))
        delivered: List[str] = []
        lost: List[str] = []
        for receiver in self._receivers.values():
            if receiver.offer(data):
                delivered.append(receiver.name)
            else:
                lost.append(receiver.name)
        record = TransmissionRecord(size_bytes=len(data), airtime_s=airtime,
                                    delivered_to=delivered, lost_by=lost)
        self.packets_sent += 1
        self.bytes_sent += len(data)
        self.busy_time_s += airtime
        self.history.append(record)
        return record

    def multicast_many(self, packets: List[bytes]) -> List[TransmissionRecord]:
        """Transmit a batch of packets in order."""
        return [self.multicast(packet) for packet in packets]

    def unicast(self, name: str, data: bytes) -> bool:
        """Transmit one packet to a single named receiver."""
        receiver = self._receivers[name]
        airtime = self.airtime_for(len(data))
        self.packets_sent += 1
        self.bytes_sent += len(data)
        self.busy_time_s += airtime
        delivered = receiver.offer(data)
        self.history.append(TransmissionRecord(
            size_bytes=len(data), airtime_s=airtime,
            delivered_to=[name] if delivered else [],
            lost_by=[] if delivered else [name]))
        return delivered

    def utilisation(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` the channel spent transmitting."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.busy_time_s / elapsed_s)


class WirelessLAN:
    """Convenience wrapper bundling an access point with a send callable.

    Proxies and EndPoints only need ``send(bytes)``; tests and benchmarks
    additionally reach into :attr:`access_point` to add receivers and read
    statistics.
    """

    def __init__(self, bandwidth_bps: float = WAVELAN_BANDWIDTH_BPS,
                 seed: int = 0) -> None:
        self.access_point = AccessPoint(bandwidth_bps=bandwidth_bps,
                                        default_seed=seed)

    def add_receiver(self, name: str, distance_m: Optional[float] = None,
                     loss_model: Optional[LossModel] = None,
                     on_receive: Optional[Callable[[bytes], None]] = None,
                     seed: Optional[int] = None) -> WirelessReceiver:
        return self.access_point.add_receiver(name, distance_m=distance_m,
                                              loss_model=loss_model,
                                              on_receive=on_receive, seed=seed)

    def send(self, data: bytes) -> None:
        """Multicast ``data`` on the wireless segment (EndPoint sink API)."""
        self.access_point.multicast(data)

    @property
    def receivers(self) -> List[WirelessReceiver]:
        return self.access_point.receivers


@dataclass(frozen=True)
class LinearWalk:
    """A straight-line mobility trace: distance grows linearly with time.

    Models the paper's Section 3 scenario — "the user ... moves from her
    office (near the access point) to a conference room down the hall".
    """

    start_distance_m: float = 5.0
    end_distance_m: float = 40.0
    duration_s: float = 60.0

    def distance_at(self, t: float) -> float:
        """Distance from the access point at time ``t`` seconds."""
        if self.duration_s <= 0:
            return self.end_distance_m
        if t <= 0:
            return self.start_distance_m
        if t >= self.duration_s:
            return self.end_distance_m
        fraction = t / self.duration_s
        return (self.start_distance_m
                + fraction * (self.end_distance_m - self.start_distance_m))

    def positions(self, step_s: float) -> List["tuple[float, float]"]:
        """(time, distance) samples every ``step_s`` seconds."""
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        samples = []
        t = 0.0
        while t <= self.duration_s + 1e-9:
            samples.append((round(t, 9), self.distance_at(t)))
            t += step_s
        return samples
