"""Receiver statistics and the Figure 7 windowed-percentage computation.

Figure 7 of the paper plots, per window of sequence numbers, the percentage
of packets received raw and the percentage available after FEC
reconstruction, together with the run averages (98.54% and 99.98%).  This
module holds the counters and the windowing logic used to regenerate that
figure from simulated traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

#: The x-axis of Figure 7 advances in steps of 432 sequence numbers, which
#: is the window size used when the paper binned its trace.
FIG7_WINDOW_SIZE = 432


@dataclass
class ReceiverStats:
    """Per-receiver delivery counters."""

    name: str = ""
    packets_sent_to: int = 0
    packets_received: int = 0
    packets_lost: int = 0
    bytes_received: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Fraction of packets addressed to the receiver that arrived."""
        if self.packets_sent_to == 0:
            return 1.0
        return self.packets_received / self.packets_sent_to

    @property
    def loss_ratio(self) -> float:
        return 1.0 - self.delivery_ratio

    def record_delivery(self, nbytes: int) -> None:
        self.packets_sent_to += 1
        self.packets_received += 1
        self.bytes_received += nbytes

    def record_loss(self) -> None:
        self.packets_sent_to += 1
        self.packets_lost += 1


@dataclass
class WindowPoint:
    """One point of a Figure 7 style series."""

    window_start: int
    window_end: int
    received_percent: float
    reconstructed_percent: float


@dataclass
class DeliveryReport:
    """Raw-vs-reconstructed delivery accounting for one experiment run.

    ``total_packets`` is the number of source packets transmitted;
    ``received`` and ``reconstructed`` are the sets of source sequence
    numbers that were (a) received directly and (b) available to the
    application after FEC reconstruction.  ``reconstructed`` is always a
    superset of ``received`` in a correct run.
    """

    total_packets: int
    received: Set[int] = field(default_factory=set)
    reconstructed: Set[int] = field(default_factory=set)

    @property
    def received_percent(self) -> float:
        if self.total_packets == 0:
            return 100.0
        return 100.0 * len(self._clip(self.received)) / self.total_packets

    @property
    def reconstructed_percent(self) -> float:
        if self.total_packets == 0:
            return 100.0
        return 100.0 * len(self._clip(self.reconstructed)) / self.total_packets

    @property
    def repaired_count(self) -> int:
        """Packets missing from the raw stream but present after FEC."""
        return len(self._clip(self.reconstructed) - self._clip(self.received))

    def _clip(self, sequences: Set[int]) -> Set[int]:
        return {seq for seq in sequences if 0 <= seq < self.total_packets}

    def windowed(self, window_size: int = FIG7_WINDOW_SIZE) -> List[WindowPoint]:
        """Bin the run into Figure 7 style windows."""
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        received = self._clip(self.received)
        reconstructed = self._clip(self.reconstructed)
        points: List[WindowPoint] = []
        for start in range(0, self.total_packets, window_size):
            end = min(start + window_size, self.total_packets)
            count = end - start
            got = sum(1 for seq in range(start, end) if seq in received)
            fixed = sum(1 for seq in range(start, end) if seq in reconstructed)
            points.append(WindowPoint(
                window_start=start,
                window_end=end,
                received_percent=100.0 * got / count,
                reconstructed_percent=100.0 * fixed / count,
            ))
        return points

    def summary(self) -> Dict[str, float]:
        """Headline numbers in the form the paper reports them."""
        return {
            "total_packets": float(self.total_packets),
            "received_percent": self.received_percent,
            "reconstructed_percent": self.reconstructed_percent,
            "repaired_packets": float(self.repaired_count),
        }


def windowed_percentages(present: Iterable[int], total_packets: int,
                         window_size: int = FIG7_WINDOW_SIZE) -> List[float]:
    """Percentage of sequence numbers present per window (helper for plots)."""
    present_set = {seq for seq in present if 0 <= seq < total_packets}
    percentages = []
    for start in range(0, total_packets, window_size):
        end = min(start + window_size, total_packets)
        count = end - start
        got = sum(1 for seq in range(start, end) if seq in present_set)
        percentages.append(100.0 * got / count)
    return percentages


def loss_run_lengths(lost_flags: Sequence[bool]) -> List[int]:
    """Lengths of consecutive-loss bursts in a per-packet loss trace.

    Used by the benchmarks to characterise burstiness (Gilbert–Elliott vs
    Bernoulli) — burst length relative to the FEC group size determines
    whether a group is recoverable.
    """
    runs: List[int] = []
    current = 0
    for lost in lost_flags:
        if lost:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs
