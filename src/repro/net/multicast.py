"""Generic publish/subscribe multicast groups.

Pavilion distributes URL requests and page contents to all session members
over "a multicast protocol"; the RAPIDware event bus and the collaborative
examples need the same primitive.  :class:`MulticastGroup` is a small,
synchronous, in-process pub/sub channel with per-subscriber delivery
counters; it intentionally has no loss model (lossy delivery belongs to
:mod:`repro.net.wlan`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

Subscriber = Callable[[Any], None]


@dataclass
class SubscriberRecord:
    """Book-keeping for one group member."""

    name: str
    callback: Subscriber
    messages_delivered: int = 0
    delivery_errors: int = 0


class MulticastGroup:
    """A named, in-process multicast channel.

    Messages are delivered synchronously to every subscriber except the
    optional ``exclude`` member (senders normally exclude themselves).
    Subscriber exceptions are caught and counted so one faulty member cannot
    break delivery to the others — the same isolation a real multicast
    transport provides.
    """

    def __init__(self, name: str = "group") -> None:
        self.name = name
        self._subscribers: Dict[str, SubscriberRecord] = {}
        self.messages_sent = 0

    def subscribe(self, name: str, callback: Subscriber) -> None:
        """Add a member; replaces any existing member with the same name."""
        self._subscribers[name] = SubscriberRecord(name=name, callback=callback)

    def unsubscribe(self, name: str) -> None:
        self._subscribers.pop(name, None)

    @property
    def members(self) -> List[str]:
        return sorted(self._subscribers)

    def member_count(self) -> int:
        return len(self._subscribers)

    def send(self, message: Any, exclude: Optional[str] = None) -> int:
        """Deliver ``message`` to every member except ``exclude``.

        Returns the number of successful deliveries.
        """
        self.messages_sent += 1
        delivered = 0
        for record in list(self._subscribers.values()):
            if record.name == exclude:
                continue
            try:
                record.callback(message)
            except Exception:  # noqa: BLE001 - member faults must not spread
                record.delivery_errors += 1
                continue
            record.messages_delivered += 1
            delivered += 1
        return delivered

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-member delivery counters."""
        return {name: {"delivered": record.messages_delivered,
                       "errors": record.delivery_errors}
                for name, record in self._subscribers.items()}
