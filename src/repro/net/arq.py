"""ARQ (retransmission) baselines for multicast delivery.

The paper argues for *forward* error correction on wireless multicast
because "a single parity packet can be used to correct independent
single-packet losses among different receivers" — the implicit comparison is
against ARQ, where every receiver's loss costs its own retransmission and
real-time audio cannot wait for retransmission rounds anyway.

This module provides a synchronous (no-threads) simulator of NACK-based
selective-repeat multicast ARQ so the benchmarks can quantify that
comparison on the same loss processes used for FEC:

* how many transmissions the sender needs until *every* receiver holds every
  packet (bandwidth cost), and
* how many round trips each packet needs before the slowest receiver has it
  (latency cost — the quantity that makes ARQ unattractive for interactive
  audio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from .channel import LossModel


@dataclass
class ArqResult:
    """Outcome of one multicast ARQ simulation."""

    packet_count: int
    receiver_count: int
    transmissions: int = 0
    retransmissions: int = 0
    rounds_per_packet: List[int] = field(default_factory=list)
    undelivered: int = 0

    @property
    def transmission_overhead(self) -> float:
        """Transmissions per source packet (1.0 means no retransmissions)."""
        if self.packet_count == 0:
            return 1.0
        return self.transmissions / self.packet_count

    @property
    def mean_rounds(self) -> float:
        """Average number of multicast rounds until every receiver had a packet."""
        if not self.rounds_per_packet:
            return 0.0
        return sum(self.rounds_per_packet) / len(self.rounds_per_packet)

    @property
    def max_rounds(self) -> int:
        return max(self.rounds_per_packet) if self.rounds_per_packet else 0

    @property
    def delivery_ratio(self) -> float:
        if self.packet_count == 0 or self.receiver_count == 0:
            return 1.0
        total = self.packet_count * self.receiver_count
        return 1.0 - self.undelivered / total


def simulate_multicast_arq(packet_count: int,
                           loss_models: Sequence[LossModel],
                           max_rounds: int = 16) -> ArqResult:
    """Simulate NACK-based selective-repeat multicast of ``packet_count`` packets.

    Every packet is multicast once; receivers that lost it NACK, and the
    sender multicasts the packet again (a retransmission reaches every
    receiver, but each receiver applies its own loss process to it).  The
    process repeats until every receiver has the packet or ``max_rounds`` is
    exhausted (after which the packet counts as undelivered at the receivers
    that still miss it — what a playout deadline does to late audio).

    ``loss_models`` supplies one independent loss process per receiver.
    """
    if packet_count < 0:
        raise ValueError("packet_count must be non-negative")
    if not loss_models:
        raise ValueError("at least one receiver loss model is required")
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")

    result = ArqResult(packet_count=packet_count,
                       receiver_count=len(loss_models))
    for _packet in range(packet_count):
        missing = set(range(len(loss_models)))
        rounds = 0
        while missing and rounds < max_rounds:
            rounds += 1
            result.transmissions += 1
            if rounds > 1:
                result.retransmissions += 1
            delivered_now = {index for index in missing
                             if not loss_models[index].packet_lost()}
            missing -= delivered_now
        result.rounds_per_packet.append(rounds)
        result.undelivered += len(missing)
    return result


def simulate_unicast_arq(packet_count: int,
                         loss_models: Sequence[LossModel],
                         max_rounds: int = 16) -> ArqResult:
    """Per-receiver unicast retransmission (no multicast sharing at all).

    The worst-case baseline: the sender repeats each packet separately for
    each receiver until that receiver has it.  Transmission cost therefore
    scales with the number of receivers even when nothing is lost.
    """
    if not loss_models:
        raise ValueError("at least one receiver loss model is required")
    result = ArqResult(packet_count=packet_count,
                       receiver_count=len(loss_models))
    for _packet in range(packet_count):
        worst_rounds = 0
        for model in loss_models:
            rounds = 0
            delivered = False
            while not delivered and rounds < max_rounds:
                rounds += 1
                result.transmissions += 1
                if rounds > 1:
                    result.retransmissions += 1
                delivered = not model.packet_lost()
            if not delivered:
                result.undelivered += 1
            worst_rounds = max(worst_rounds, rounds)
        result.rounds_per_packet.append(worst_rounds)
    return result


def fec_transmission_overhead(k: int, n: int) -> float:
    """Transmissions per source packet for an (n, k) FEC multicast: n / k,
    independent of the number of receivers and of the loss realisation."""
    if k < 1 or n < k:
        raise ValueError("need 1 <= k <= n")
    return n / k


def compare_fec_with_arq(packet_count: int, receiver_count: int,
                         loss_model_factory: Callable[[int], LossModel],
                         k: int = 4, n: int = 6,
                         max_rounds: int = 16) -> Dict[str, float]:
    """Head-to-head transmission overhead: FEC vs multicast ARQ vs unicast ARQ.

    All three schemes face the same per-receiver loss processes (constructed
    via ``loss_model_factory(receiver_index)``; the factory is called anew
    for each scheme so every scheme sees an identical, independent copy).
    """
    multicast = simulate_multicast_arq(
        packet_count, [loss_model_factory(i) for i in range(receiver_count)],
        max_rounds=max_rounds)
    unicast = simulate_unicast_arq(
        packet_count, [loss_model_factory(i) for i in range(receiver_count)],
        max_rounds=max_rounds)
    return {
        "fec_overhead": fec_transmission_overhead(k, n),
        "multicast_arq_overhead": multicast.transmission_overhead,
        "unicast_arq_overhead": unicast.transmission_overhead,
        "multicast_arq_mean_rounds": multicast.mean_rounds,
        "multicast_arq_max_rounds": float(multicast.max_rounds),
        "fec_rounds": 1.0,
    }
