"""Serialisable stream descriptions for cross-process stream creation.

The parent cannot hand a worker live EndPoint objects — workers are
separate OS processes — so a cluster stream is described by a JSON-safe
:class:`StreamSpec`: a source spec, a sink spec, and a list of
:class:`~repro.core.registry.FilterSpec` dicts the worker instantiates
through its own :func:`~repro.core.registry.default_registry`.  This is
the same move the paper makes with serialised filter descriptions, one
level up: the whole stream is the serialised unit.

Source kinds:

``bytes``
    An explicit packet list (base64 in the spec).  Exact but O(payload)
    on the control channel — fine for tests and equivalence pinning.
``pattern``
    A deterministic pseudo-random packet generator (seed, packet count,
    packet size).  The parent and a verifier can regenerate the identical
    input without shipping it, which is how the benchmarks describe
    multi-MiB workloads in a few bytes of RPC.
``transport``
    Packets arriving on a channel of the worker's own transport
    (``REPRO_TRANSPORT`` honoured per worker) — the ingress path for
    SO_REUSEPORT-sharded UDP, where the kernel delivers each datagram to
    exactly one worker's socket.

Sink kinds: ``collect`` (in-memory, retrievable over RPC), ``null``
(discard, for throughput runs), ``transport`` (egress onto a channel of
the worker's transport).
"""

from __future__ import annotations

import base64
import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.endpoints import (
    CollectorSink,
    IterableSource,
    NullSink,
    SinkEndPoint,
    SourceEndPoint,
)
from ..core.registry import FilterSpec


def pattern_packets(seed: int, packets: int, packet_size: int) -> List[bytes]:
    """The deterministic packet list for a ``pattern`` source.

    Same (seed, packets, packet_size) → identical bytes in every process
    and on every run: the equivalence test regenerates the cluster's input
    to feed a single-process proxy, and both must see the same stream.
    """
    rng = random.Random(seed)
    return [rng.randbytes(packet_size) for _ in range(packets)]


def digest(chunks: List[bytes]) -> str:
    """An order-sensitive SHA-256 over a packet sequence.

    Each packet's length is mixed in before its payload so packet
    boundaries are part of the identity — ``[b"ab", b"c"]`` and
    ``[b"a", b"bc"]`` digest differently.
    """
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(len(chunk).to_bytes(4, "big"))
        h.update(chunk)
    return h.hexdigest()


@dataclass
class StreamSpec:
    """A JSON-safe description of one proxied stream."""

    name: str
    source: Dict[str, Any]
    sink: Dict[str, Any] = field(default_factory=lambda: {"kind": "collect"})
    filters: List[Dict[str, Any]] = field(default_factory=list)
    #: Serialised :class:`~repro.core.supervision.ErrorPolicy` (or a bare
    #: mode name) applied to the stream on the worker; None = unsupervised.
    policy: Optional[Any] = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_bytes(cls, name: str, items: List[bytes],
                   pacing_s: float = 0.0, **kwargs: Any) -> "StreamSpec":
        """A spec shipping an explicit packet list (base64-encoded)."""
        source = {
            "kind": "bytes",
            "items": [base64.b64encode(bytes(i)).decode("ascii")
                      for i in items],
            "pacing_s": pacing_s,
        }
        return cls(name=name, source=source, **kwargs)

    @classmethod
    def from_pattern(cls, name: str, seed: int, packets: int,
                     packet_size: int, pacing_s: float = 0.0,
                     **kwargs: Any) -> "StreamSpec":
        """A spec describing a deterministic generated workload."""
        source = {
            "kind": "pattern",
            "seed": int(seed),
            "packets": int(packets),
            "packet_size": int(packet_size),
            "pacing_s": pacing_s,
        }
        return cls(name=name, source=source, **kwargs)

    def with_filter(self, spec: FilterSpec) -> "StreamSpec":
        """This spec plus one more filter (appended before the sink)."""
        return StreamSpec(name=self.name, source=dict(self.source),
                          sink=dict(self.sink),
                          filters=[*self.filters, spec.to_dict()],
                          policy=self.policy)

    def with_policy(self, policy: Any) -> "StreamSpec":
        """This spec under an error policy (mode name or serialised dict)."""
        return StreamSpec(name=self.name, source=dict(self.source),
                          sink=dict(self.sink),
                          filters=[dict(f) for f in self.filters],
                          policy=policy)

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "name": self.name,
            "source": dict(self.source),
            "sink": dict(self.sink),
            "filters": [dict(f) for f in self.filters],
        }
        if self.policy is not None:
            payload["policy"] = self.policy
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StreamSpec":
        if "name" not in payload or "source" not in payload:
            raise ValueError("stream spec needs 'name' and 'source'")
        return cls(name=str(payload["name"]),
                   source=dict(payload["source"]),
                   sink=dict(payload.get("sink") or {"kind": "collect"}),
                   filters=[dict(f) for f in payload.get("filters") or []],
                   policy=payload.get("policy"))

    # -- materialisation (worker side) -----------------------------------------

    def source_packets(self) -> List[bytes]:
        """The full input packet list (bytes and pattern sources only)."""
        kind = self.source.get("kind")
        if kind == "bytes":
            return [base64.b64decode(i) for i in self.source["items"]]
        if kind == "pattern":
            return pattern_packets(self.source["seed"], self.source["packets"],
                                   self.source["packet_size"])
        raise ValueError(f"source kind {kind!r} has no static packet list")

    def build_source(self, transport=None) -> SourceEndPoint:
        """Instantiate this spec's source endpoint."""
        kind = self.source.get("kind")
        if kind in ("bytes", "pattern"):
            return IterableSource(self.source_packets(),
                                  name=f"{self.name}-source",
                                  frame_output=True,
                                  pacing_s=float(self.source.get("pacing_s")
                                                 or 0.0))
        if kind == "transport":
            from ..transport.endpoints import TransportSource

            if transport is None:
                raise ValueError(
                    "a transport source spec needs the worker's transport")
            channel = transport.open_channel(
                self.source.get("channel", self.name),
                **dict(self.source.get("options") or {}))
            # Join options pass straight through to the transport — e.g.
            # {"address": [host, port], "reuse_port": true} is the UDP
            # SO_REUSEPORT ingress shape: every worker binds the same
            # address and the kernel shards arriving datagrams.
            join_options = dict(self.source.get("join") or {})
            address = join_options.pop("address", None)
            if address is not None:
                join_options["address"] = (str(address[0]), int(address[1]))
            receiver = channel.join(self.source.get("member", self.name),
                                    **join_options)
            return TransportSource(receiver, name=f"{self.name}-source")
        raise ValueError(f"unknown source kind {kind!r}")

    def build_sink(self, transport=None) -> SinkEndPoint:
        """Instantiate this spec's sink endpoint."""
        kind = self.sink.get("kind", "collect")
        if kind == "collect":
            return CollectorSink(name=f"{self.name}-sink", expect_frames=True)
        if kind == "null":
            return NullSink(name=f"{self.name}-sink", expect_frames=True)
        if kind == "transport":
            from ..transport.endpoints import TransportSink

            if transport is None:
                raise ValueError(
                    "a transport sink spec needs the worker's transport")
            channel = transport.open_channel(
                self.sink.get("channel", self.name),
                **dict(self.sink.get("options") or {}))
            return TransportSink(channel, name=f"{self.name}-sink")
        raise ValueError(f"unknown sink kind {kind!r}")

    def filter_specs(self) -> List[FilterSpec]:
        """The filter chain as :class:`FilterSpec` objects."""
        return [FilterSpec.from_dict(f) for f in self.filters]

    def expected_output(self, registry=None) -> Optional[List[bytes]]:
        """Run this spec's packets through a local copy of its filter chain.

        The single-process reference for the byte-equivalence acceptance
        test: same spec, no cluster.  Returns None for transport sources
        (no static input to replay).
        """
        kind = self.source.get("kind")
        if kind not in ("bytes", "pattern"):
            return None
        from ..core.proxy import Proxy

        if registry is None:
            from ..core.registry import default_registry

            registry = default_registry()
        with Proxy(name=f"{self.name}-reference", engine="threaded",
                   transport="inproc") as proxy:
            source = IterableSource(self.source_packets(),
                                    name=f"{self.name}-ref-source",
                                    frame_output=True)
            sink = CollectorSink(name=f"{self.name}-ref-sink",
                                 expect_frames=True)
            control = proxy.add_stream(source, sink, name=self.name,
                                       auto_start=False)
            for spec in self.filter_specs():
                control.add(registry.create(spec))
            control.start()
            control.wait_for_completion(timeout=60.0)
        return sink.items()
