"""Multi-process proxy cluster — shard streams to break the GIL ceiling.

One Python process is capped at one core; :class:`ProxyCluster` runs N
full proxies in N worker OS processes, shards streams across them by
consistent hash on the stream id, and keeps a single control plane in
the parent: fleet-wide filter splice, graceful drain, crash restart with
interim shard reassignment, and aggregated observability (``/metrics``
with a ``worker`` label, fleet-summed ``ChainSnapshot``s).

See ``docs/ARCHITECTURE.md`` ("Process cluster") for the shard function,
the RPC frame layout, and the environment variables.
"""

from .cluster import (
    CLUSTER_WORKERS_ENV_VAR,
    DEFAULT_WORKERS,
    ClusterError,
    ProxyCluster,
    WorkerHandle,
)
from .rpc import (
    DEFAULT_RPC_TIMEOUT_S,
    MAX_RPC_FRAME,
    RPC_MAGIC,
    RPC_TIMEOUT_ENV_VAR,
    RpcConnection,
    RpcConnectionClosed,
    RpcError,
    decode_header,
    default_rpc_timeout,
    encode_message,
)
from .shard import REPLICAS, ShardRing
from .specs import StreamSpec, digest, pattern_packets
from .worker import WorkerProcess, serialize_families, worker_main

__all__ = [
    "CLUSTER_WORKERS_ENV_VAR",
    "DEFAULT_RPC_TIMEOUT_S",
    "DEFAULT_WORKERS",
    "MAX_RPC_FRAME",
    "RPC_TIMEOUT_ENV_VAR",
    "default_rpc_timeout",
    "REPLICAS",
    "RPC_MAGIC",
    "ClusterError",
    "ProxyCluster",
    "RpcConnection",
    "RpcConnectionClosed",
    "RpcError",
    "ShardRing",
    "StreamSpec",
    "WorkerHandle",
    "WorkerProcess",
    "decode_header",
    "digest",
    "encode_message",
    "pattern_packets",
    "serialize_families",
    "worker_main",
]
