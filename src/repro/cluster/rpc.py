"""Length-prefixed JSON RPC — the cluster's parent/worker control protocol.

One frame on the wire is::

    +--------+----------------+------------------------+
    | 0x9C   |  body length   |  UTF-8 JSON object     |
    | 1 byte |  >I (4 bytes)  |  `length` bytes        |
    +--------+----------------+------------------------+

the same magic-plus-big-endian-length shape as the stream framing in
:mod:`repro.streams.framing` and the UDP datagram framing, with a distinct
magic byte (``0x9C``) so a control frame can never be mistaken for stream
data.  The body is one JSON object; requests carry ``{"id": n, "op": ...}``
and responses echo the id as ``{"id": n, "ok": true/false, ...}``.

The transport is any connected stream socket (the cluster uses loopback
TCP: workers connect back to the parent's listener, which sidesteps fd
inheritance under the ``spawn`` start method).  :class:`RpcConnection`
gives both sides a symmetric message API; the parent's
:meth:`RpcConnection.request` serialises one outstanding request per
connection (the worker's control loop is single-threaded by design — a
drain cannot race a splice).
"""

from __future__ import annotations

import itertools
import json
import os
import random
import socket
import struct
import threading
import time
from typing import Any, Dict, Optional

_HEADER = struct.Struct(">BI")

#: Environment variable overriding the default per-call RPC deadline, in
#: seconds (``REPRO_RPC_TIMEOUT=5``).  ``0`` or a negative value means no
#: deadline (block forever — the pre-deadline behaviour).
RPC_TIMEOUT_ENV_VAR = "REPRO_RPC_TIMEOUT"

#: Deadline applied when neither the call nor the environment names one.
DEFAULT_RPC_TIMEOUT_S = 30.0

#: Sentinel distinguishing "caller passed nothing" from an explicit
#: ``timeout=None`` (which means block forever).
_UNSET = object()


def default_rpc_timeout() -> Optional[float]:
    """The process-wide RPC deadline: ``REPRO_RPC_TIMEOUT`` or 30 s."""
    raw = os.environ.get(RPC_TIMEOUT_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_RPC_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        raise RpcError(
            f"invalid {RPC_TIMEOUT_ENV_VAR} value {raw!r}: "
            f"expected seconds as a number") from None
    return value if value > 0 else None

#: First byte of every control frame.  Distinct from the stream/datagram
#: framing magic (``0xC5``) so cross-plugged sockets fail loudly.
RPC_MAGIC = 0x9C

HEADER_SIZE = _HEADER.size

#: Largest accepted body.  Control messages are small; the ceiling exists
#: so a corrupt length field cannot make a reader allocate gigabytes.
MAX_RPC_FRAME = 64 * 1024 * 1024


class RpcError(RuntimeError):
    """Raised for malformed frames or request failures."""


class RpcConnectionClosed(RpcError):
    """Raised when the peer closed the connection mid-conversation."""


def encode_message(payload: Dict[str, Any]) -> bytes:
    """Frame one JSON-serialisable message for the wire."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True,
                      default=str).encode("utf-8")
    if len(body) > MAX_RPC_FRAME:
        raise RpcError(
            f"RPC body of {len(body)} bytes exceeds {MAX_RPC_FRAME}")
    return _HEADER.pack(RPC_MAGIC, len(body)) + body


def decode_header(header: bytes) -> int:
    """Validate a frame header; returns the body length."""
    if len(header) != HEADER_SIZE:
        raise RpcError(f"short RPC header ({len(header)} bytes)")
    magic, length = _HEADER.unpack(header)
    if magic != RPC_MAGIC:
        raise RpcError(f"bad RPC magic 0x{magic:02x}")
    if length > MAX_RPC_FRAME:
        raise RpcError(f"RPC body length {length} exceeds {MAX_RPC_FRAME}")
    return length


def _retry_counter():
    from ..obs.metrics import default_registry

    return default_registry().counter(
        "repro_rpc_retries_total",
        "Cluster RPC attempts re-sent after a deadline timeout",
        label_names=("op",))


class RpcConnection:
    """A message pipe over one connected stream socket.

    Thread safety: sends take a lock (frames never interleave); receives
    are expected from a single reader thread per side, which is how both
    the worker's serve loop and the parent's per-worker handle use it.
    """

    def __init__(self, sock: socket.socket) -> None:
        try:
            # Control messages are tiny and latency-sensitive; don't let
            # Nagle batch them.  Non-TCP sockets (tests use socketpairs)
            # reject the option and are already unbuffered.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._socket = sock
        self._send_lock = threading.Lock()
        self._request_lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._closed = False

    # -- framing ---------------------------------------------------------------

    def _recv_exact(self, nbytes: int,
                    timeout: Optional[float]) -> bytes:
        """Read exactly ``nbytes`` (RpcConnectionClosed on EOF)."""
        self._socket.settimeout(timeout)
        pieces = []
        remaining = nbytes
        while remaining:
            try:
                piece = self._socket.recv(remaining)
            except socket.timeout:
                raise TimeoutError(
                    f"RPC receive timed out after {timeout}s") from None
            except OSError as exc:
                raise RpcConnectionClosed(
                    f"RPC connection lost: {exc}") from exc
            if not piece:
                raise RpcConnectionClosed("RPC peer closed the connection")
            pieces.append(piece)
            remaining -= len(piece)
        return b"".join(pieces)

    def send(self, payload: Dict[str, Any]) -> None:
        """Send one message (frames never interleave across threads)."""
        frame = encode_message(payload)
        with self._send_lock:
            try:
                self._socket.sendall(frame)
            except OSError as exc:
                raise RpcConnectionClosed(
                    f"RPC connection lost: {exc}") from exc

    def receive(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Receive one message (blocking up to ``timeout`` seconds)."""
        length = decode_header(self._recv_exact(HEADER_SIZE, timeout))
        body = self._recv_exact(length, timeout)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RpcError(f"malformed RPC body: {exc}") from exc
        if not isinstance(payload, dict):
            raise RpcError(
                f"RPC body must be a JSON object, got {type(payload).__name__}")
        return payload

    # -- request/response ------------------------------------------------------

    def request(self, op: str, timeout: Any = _UNSET, retries: int = 0,
                backoff_s: float = 0.05, backoff_factor: float = 2.0,
                jitter_s: float = 0.02, **fields: Any) -> Any:
        """One round trip: send ``op``, return the response's ``result``.

        Every call carries a deadline: the default comes from
        ``REPRO_RPC_TIMEOUT`` (falling back to 30 s), an explicit
        ``timeout=None`` blocks forever.  ``retries`` re-sends the request
        after a timeout, sleeping an exponential backoff plus a uniform
        jitter between attempts (idempotent ops only — the worker may have
        processed a timed-out attempt); each retry is counted in
        ``repro_rpc_retries_total{op=...}``.

        Raises :class:`RpcError` when the peer answered ``ok: false`` (the
        peer's error text is preserved), :class:`TimeoutError` when no
        response arrived within the deadline on any attempt.  One request
        is outstanding at a time per connection, matching the worker's
        single-threaded control loop.
        """
        if timeout is _UNSET:
            timeout = default_rpc_timeout()
        attempt = 0
        while True:
            try:
                with self._request_lock:
                    return self._request_locked(op, timeout, fields)
            except TimeoutError:
                if attempt >= retries:
                    raise
                _retry_counter().labels(op=op).inc()
                delay = min(backoff_s * (backoff_factor ** attempt), 5.0)
                time.sleep(delay + random.uniform(0.0, jitter_s))
                attempt += 1

    def try_request(self, op: str, timeout: Any = _UNSET,
                    **fields: Any) -> Any:
        """Like :meth:`request`, but give up instead of queueing.

        Returns ``None`` without sending anything when another request is
        already outstanding on this connection — the behaviour a heartbeat
        wants: never pile probe traffic behind a slow in-flight call (the
        in-flight call's own deadline covers that case).
        """
        if timeout is _UNSET:
            timeout = default_rpc_timeout()
        if not self._request_lock.acquire(blocking=False):
            return None
        try:
            return self._request_locked(op, timeout, fields)
        finally:
            self._request_lock.release()

    def _request_locked(self, op: str, timeout: Optional[float],
                        fields: Dict[str, Any]) -> Any:
        """One send/receive round trip (the request lock is already held)."""
        request_id = next(self._request_ids)
        message = {"id": request_id, "op": op}
        message.update(fields)
        self.send(message)
        while True:
            response = self.receive(timeout=timeout)
            if response.get("id") != request_id:
                # A stale response from an earlier timed-out request;
                # drop it and keep waiting for ours.
                continue
            if not response.get("ok"):
                raise RpcError(
                    f"RPC {op!r} failed: {response.get('error', 'unknown')}")
            return response.get("result")

    def respond(self, request: Dict[str, Any], result: Any = None) -> None:
        """Answer one request affirmatively."""
        self.send({"id": request.get("id"), "ok": True, "result": result})

    def respond_error(self, request: Dict[str, Any], error: str) -> None:
        """Answer one request with a failure."""
        self.send({"id": request.get("id"), "ok": False, "error": str(error)})

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - best effort
            pass

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def fileno(self) -> int:
        """The socket's fd (for selector-based waits)."""
        return self._socket.fileno()
