"""Length-prefixed JSON RPC — the cluster's parent/worker control protocol.

One frame on the wire is::

    +--------+----------------+------------------------+
    | 0x9C   |  body length   |  UTF-8 JSON object     |
    | 1 byte |  >I (4 bytes)  |  `length` bytes        |
    +--------+----------------+------------------------+

the same magic-plus-big-endian-length shape as the stream framing in
:mod:`repro.streams.framing` and the UDP datagram framing, with a distinct
magic byte (``0x9C``) so a control frame can never be mistaken for stream
data.  The body is one JSON object; requests carry ``{"id": n, "op": ...}``
and responses echo the id as ``{"id": n, "ok": true/false, ...}``.

The transport is any connected stream socket (the cluster uses loopback
TCP: workers connect back to the parent's listener, which sidesteps fd
inheritance under the ``spawn`` start method).  :class:`RpcConnection`
gives both sides a symmetric message API; the parent's
:meth:`RpcConnection.request` serialises one outstanding request per
connection (the worker's control loop is single-threaded by design — a
drain cannot race a splice).
"""

from __future__ import annotations

import itertools
import json
import socket
import struct
import threading
from typing import Any, Dict, Optional

_HEADER = struct.Struct(">BI")

#: First byte of every control frame.  Distinct from the stream/datagram
#: framing magic (``0xC5``) so cross-plugged sockets fail loudly.
RPC_MAGIC = 0x9C

HEADER_SIZE = _HEADER.size

#: Largest accepted body.  Control messages are small; the ceiling exists
#: so a corrupt length field cannot make a reader allocate gigabytes.
MAX_RPC_FRAME = 64 * 1024 * 1024


class RpcError(RuntimeError):
    """Raised for malformed frames or request failures."""


class RpcConnectionClosed(RpcError):
    """Raised when the peer closed the connection mid-conversation."""


def encode_message(payload: Dict[str, Any]) -> bytes:
    """Frame one JSON-serialisable message for the wire."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True,
                      default=str).encode("utf-8")
    if len(body) > MAX_RPC_FRAME:
        raise RpcError(
            f"RPC body of {len(body)} bytes exceeds {MAX_RPC_FRAME}")
    return _HEADER.pack(RPC_MAGIC, len(body)) + body


def decode_header(header: bytes) -> int:
    """Validate a frame header; returns the body length."""
    if len(header) != HEADER_SIZE:
        raise RpcError(f"short RPC header ({len(header)} bytes)")
    magic, length = _HEADER.unpack(header)
    if magic != RPC_MAGIC:
        raise RpcError(f"bad RPC magic 0x{magic:02x}")
    if length > MAX_RPC_FRAME:
        raise RpcError(f"RPC body length {length} exceeds {MAX_RPC_FRAME}")
    return length


class RpcConnection:
    """A message pipe over one connected stream socket.

    Thread safety: sends take a lock (frames never interleave); receives
    are expected from a single reader thread per side, which is how both
    the worker's serve loop and the parent's per-worker handle use it.
    """

    def __init__(self, sock: socket.socket) -> None:
        try:
            # Control messages are tiny and latency-sensitive; don't let
            # Nagle batch them.  Non-TCP sockets (tests use socketpairs)
            # reject the option and are already unbuffered.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._socket = sock
        self._send_lock = threading.Lock()
        self._request_lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._closed = False

    # -- framing ---------------------------------------------------------------

    def _recv_exact(self, nbytes: int,
                    timeout: Optional[float]) -> bytes:
        """Read exactly ``nbytes`` (RpcConnectionClosed on EOF)."""
        self._socket.settimeout(timeout)
        pieces = []
        remaining = nbytes
        while remaining:
            try:
                piece = self._socket.recv(remaining)
            except socket.timeout:
                raise TimeoutError(
                    f"RPC receive timed out after {timeout}s") from None
            except OSError as exc:
                raise RpcConnectionClosed(
                    f"RPC connection lost: {exc}") from exc
            if not piece:
                raise RpcConnectionClosed("RPC peer closed the connection")
            pieces.append(piece)
            remaining -= len(piece)
        return b"".join(pieces)

    def send(self, payload: Dict[str, Any]) -> None:
        """Send one message (frames never interleave across threads)."""
        frame = encode_message(payload)
        with self._send_lock:
            try:
                self._socket.sendall(frame)
            except OSError as exc:
                raise RpcConnectionClosed(
                    f"RPC connection lost: {exc}") from exc

    def receive(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Receive one message (blocking up to ``timeout`` seconds)."""
        length = decode_header(self._recv_exact(HEADER_SIZE, timeout))
        body = self._recv_exact(length, timeout)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RpcError(f"malformed RPC body: {exc}") from exc
        if not isinstance(payload, dict):
            raise RpcError(
                f"RPC body must be a JSON object, got {type(payload).__name__}")
        return payload

    # -- request/response ------------------------------------------------------

    def request(self, op: str, timeout: Optional[float] = 30.0,
                **fields: Any) -> Any:
        """One round trip: send ``op``, return the response's ``result``.

        Raises :class:`RpcError` when the peer answered ``ok: false`` (the
        peer's error text is preserved), :class:`TimeoutError` when no
        response arrived in time.  One request is outstanding at a time per
        connection, matching the worker's single-threaded control loop.
        """
        with self._request_lock:
            request_id = next(self._request_ids)
            message = {"id": request_id, "op": op}
            message.update(fields)
            self.send(message)
            while True:
                response = self.receive(timeout=timeout)
                if response.get("id") != request_id:
                    # A stale response from an earlier timed-out request;
                    # drop it and keep waiting for ours.
                    continue
                if not response.get("ok"):
                    raise RpcError(
                        f"RPC {op!r} failed: {response.get('error', 'unknown')}")
                return response.get("result")

    def respond(self, request: Dict[str, Any], result: Any = None) -> None:
        """Answer one request affirmatively."""
        self.send({"id": request.get("id"), "ok": True, "result": result})

    def respond_error(self, request: Dict[str, Any], error: str) -> None:
        """Answer one request with a failure."""
        self.send({"id": request.get("id"), "ok": False, "error": str(error)})

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - best effort
            pass

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def fileno(self) -> int:
        """The socket's fd (for selector-based waits)."""
        return self._socket.fileno()
