"""ProxyCluster — shard streams across worker OS processes.

One Python process tops out at one core no matter which execution engine
runs the proxy; the cluster breaks that ceiling by running N full proxies
in N worker processes and sharding streams across them by consistent
hash on the stream id (:mod:`repro.cluster.shard`).

The parent is a pure control plane: it never touches stream data.  It
spawns workers with the ``spawn`` start method (import-safe under
pytest), accepts one loopback-TCP control connection back from each
(:mod:`repro.cluster.rpc`), and fans control operations out over those
connections — open-stream, fleet-wide filter splice (each worker runs
the paper's pause → insert/remove → resume protocol on its own chains),
graceful drain, shutdown.

A supervisor thread watches worker process sentinels.  When a worker
dies unexpectedly the parent emits ``worker-exit``, marks the shard down
(new placements spill to ring successors — *only* the dead worker's
share moves), respawns the worker, replays its stream specs (at-least-
once: a stream cut mid-flight is re-run from its spec), marks the shard
up again and emits ``worker-restart`` with the same correlation id as
the exit, so the two events grep back into one incident.

Observability aggregates in the parent: :meth:`collect_metric_families`
re-labels every worker's scrape with ``worker="<id>"`` and the default
registry picks clusters up via ``register_cluster``, so one parent
``/metrics`` endpoint exposes the whole fleet.  ``ChainSnapshot.sum``
adds per-stream snapshots into fleet totals.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..obs.events import (
    EVENT_WORKER_EXIT,
    EVENT_WORKER_RESTART,
    EVENT_WORKER_START,
    EVENT_WORKER_UNRESPONSIVE,
    get_event_log,
    new_correlation_id,
)
from ..obs.exporter import (
    ensure_default_server,
    register_health_provider,
    unregister_health_provider,
)
from ..obs.metrics import MetricFamily, register_cluster
from .rpc import _UNSET, RpcConnection, RpcError, default_rpc_timeout
from .shard import ShardRing
from .specs import StreamSpec
from .worker import worker_main

#: Worker count consulted when ``ProxyCluster(workers=None)``.
CLUSTER_WORKERS_ENV_VAR = "REPRO_CLUSTER_WORKERS"

DEFAULT_WORKERS = 2

#: How long the parent waits for a spawned worker's hello frame.
HANDSHAKE_TIMEOUT_S = 30.0


class ClusterError(RuntimeError):
    """Raised for cluster lifecycle and control-plane failures."""


class WorkerHandle:
    """The parent's view of one worker slot.

    The slot (worker id, shard points, correlation id, stream specs)
    outlives any single OS process: a crash replaces ``process`` and
    ``connection`` but the handle — and therefore the shard — persists.
    """

    def __init__(self, worker_id: int, engine: Optional[str]) -> None:
        self.worker_id = worker_id
        self.engine = engine
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.connection: Optional[RpcConnection] = None
        self.pid: Optional[int] = None
        #: Stream specs this worker owns, for replay after a restart.
        self.streams: Dict[str, StreamSpec] = {}
        #: One correlation id per worker slot: start, exit and restart
        #: events for this slot all carry it.
        self.correlation_id = new_correlation_id("w")
        self.restarts = 0
        #: Called as ``on_timeout(handle, op, connection)`` when a request
        #: to this worker exceeds its deadline — the cluster hooks its
        #: unresponsive-worker handling here.  The connection the timeout
        #: happened on rides along so a *stale* timeout (the worker died
        #: and was already replaced while the request was blocked) cannot
        #: be mistaken for the replacement hanging.
        self.on_timeout: Optional[
            Callable[["WorkerHandle", str, RpcConnection], None]] = None
        #: ``time.monotonic()`` of the last answered heartbeat (None until
        #: the first one lands).
        self.last_heartbeat: Optional[float] = None

    def request(self, op: str, timeout: Any = _UNSET,
                **fields: Any) -> Any:
        """One RPC round trip to this worker, with the deadline plumbing.

        The default deadline is ``REPRO_RPC_TIMEOUT`` (30 s fallback); a
        timeout reports the worker to :attr:`on_timeout` before
        re-raising, so a *hung* worker — process alive, control loop
        wedged — enters the same supervision path a crashed one does.
        """
        connection = self.connection
        if connection is None:
            raise ClusterError(f"worker {self.worker_id} is not connected")
        try:
            return connection.request(op, timeout=timeout, **fields)
        except TimeoutError:
            if self.on_timeout is not None:
                self.on_timeout(self, op, connection)
            raise


def _worker_count(workers: Optional[int]) -> int:
    if workers is not None:
        return int(workers)
    raw = os.environ.get(CLUSTER_WORKERS_ENV_VAR, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ClusterError(
                f"{CLUSTER_WORKERS_ENV_VAR}={raw!r} is not an integer") from None
    return DEFAULT_WORKERS


class ProxyCluster:
    """N worker processes, one control plane, one shard ring.

    Parameters
    ----------
    workers:
        Worker count; None consults ``REPRO_CLUSTER_WORKERS`` (default 2).
    engine:
        Execution engine per worker: one name for all, a sequence of
        names (one per worker — mixed fleets are fine), or None to let
        each worker resolve ``REPRO_ENGINE`` itself.
    restart_workers:
        When True (default) a crashed worker is respawned and its stream
        specs replayed; False leaves the shard marked down.
    name:
        Cluster name, used in metrics and event records.
    heartbeat_s:
        Interval between liveness pings from the supervisor thread; 0
        disables heartbeats (hangs are then caught only when a real
        request hits its deadline).
    heartbeat_timeout_s:
        Deadline for one heartbeat ping; None uses the RPC default capped
        at 5 s (a liveness probe should fail fast).
    """

    def __init__(self, workers: Optional[int] = None,
                 engine: Union[str, Sequence[Optional[str]], None] = None,
                 restart_workers: bool = True,
                 name: str = "cluster",
                 heartbeat_s: float = 2.0,
                 heartbeat_timeout_s: Optional[float] = None) -> None:
        count = _worker_count(workers)
        if count < 1:
            raise ClusterError("a cluster needs at least one worker")
        self.name = name
        self.restart_workers = restart_workers
        if engine is None or isinstance(engine, str):
            engines: List[Optional[str]] = [engine] * count
        else:
            engines = list(engine)
            if len(engines) != count:
                raise ClusterError(
                    f"{len(engines)} engine names for {count} workers")
        self.heartbeat_s = float(heartbeat_s)
        if heartbeat_timeout_s is None:
            default = default_rpc_timeout()
            heartbeat_timeout_s = min(default, 5.0) if default else 5.0
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self._handles: Dict[int, WorkerHandle] = {
            worker_id: WorkerHandle(worker_id, engines[worker_id])
            for worker_id in range(count)
        }
        for handle in self._handles.values():
            handle.on_timeout = self._worker_unresponsive
        self.ring = ShardRing(self._handles)
        self._mp = multiprocessing.get_context("spawn")
        self._listener: Optional[socket.socket] = None
        self._listen_addr: Optional[tuple] = None
        self._supervisor: Optional[threading.Thread] = None
        self._lock = threading.RLock()
        self._started = False
        self._shutdown = False
        # Same fleet-observability hooks as Proxy: visible to scrape-time
        # collectors, /metrics server on REPRO_METRICS_ADDR.
        register_cluster(self)
        ensure_default_server()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ProxyCluster":
        """Open the control listener, spawn every worker, start supervising."""
        with self._lock:
            if self._started:
                return self
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.bind(("127.0.0.1", 0))
            self._listener.listen(len(self._handles) + 4)
            self._listen_addr = self._listener.getsockname()
            for handle in self._handles.values():
                self._spawn(handle)
            self._started = True
            self._supervisor = threading.Thread(
                target=self._supervise, name=f"{self.name}-supervisor",
                daemon=True)
            self._supervisor.start()
        # Surface fleet liveness on the process /healthz endpoint: the
        # probe answers 200 either way, but reports status "degraded"
        # with per-worker detail while any shard is down.
        register_health_provider(f"cluster-{self.name}", self._health_check)
        return self

    def _health_check(self) -> Dict[str, Any]:
        """Worker liveness for ``/healthz`` (fed by the heartbeat loop)."""
        now = time.monotonic()
        workers: Dict[str, Any] = {}
        with self._lock:
            started = self._started and not self._shutdown
            for worker_id, handle in sorted(self._handles.items()):
                alive = (handle.process is not None
                         and handle.process.is_alive()
                         and handle.connection is not None)
                up = alive and started and not self.ring.is_down(worker_id)
                info: Dict[str, Any] = {
                    "up": bool(up),
                    "pid": handle.pid,
                    "restarts": handle.restarts,
                }
                if handle.last_heartbeat is not None:
                    info["heartbeat_age_s"] = round(
                        now - handle.last_heartbeat, 3)
                workers[str(worker_id)] = info
        return {
            "healthy": started and all(w["up"] for w in workers.values()),
            "cluster": self.name,
            "workers": workers,
        }

    def _spawn(self, handle: WorkerHandle) -> None:
        """Start one worker process and complete its hello handshake."""
        event_log_path = os.environ.get("REPRO_EVENT_LOG", "").strip() or None
        if event_log_path == "-":
            event_log_path = None
        process = self._mp.Process(
            target=worker_main,
            args=(handle.worker_id, self._listen_addr[0],
                  self._listen_addr[1], handle.engine, event_log_path),
            name=f"{self.name}-worker-{handle.worker_id}",
            daemon=True)
        process.start()
        connection, hello = self._accept_hello(handle.worker_id)
        handle.process = process
        handle.connection = connection
        handle.pid = hello.get("pid")
        get_event_log().emit(
            EVENT_WORKER_START, stream="", cid=handle.correlation_id,
            cluster=self.name, worker=handle.worker_id, pid=handle.pid,
            engine=handle.engine or "", restarts=handle.restarts)

    def _accept_hello(self, worker_id: int):
        """Accept the control connection of one specific worker."""
        self._listener.settimeout(HANDSHAKE_TIMEOUT_S)
        try:
            conn, _ = self._listener.accept()
        except socket.timeout:
            raise ClusterError(
                f"worker {worker_id} did not connect within "
                f"{HANDSHAKE_TIMEOUT_S}s") from None
        connection = RpcConnection(conn)
        hello = connection.receive(timeout=HANDSHAKE_TIMEOUT_S)
        if hello.get("op") != "hello" or hello.get("worker") != worker_id:
            connection.close()
            raise ClusterError(
                f"unexpected handshake from worker: {hello!r} "
                f"(expected hello from worker {worker_id})")
        return connection, hello

    # -- supervision -----------------------------------------------------------

    def _supervise(self) -> None:
        """Watch process sentinels; restart crashed workers.

        The same loop drives liveness heartbeats: every ``heartbeat_s``
        each connected worker gets a non-queueing ``ping``
        (:meth:`RpcConnection.try_request` — a heartbeat never piles up
        behind an in-flight request).  A ping that times out means the
        process is alive but its control loop is wedged; the worker is
        declared unresponsive and terminated, which routes the hang into
        the ordinary sentinel/restart path below.
        """
        next_heartbeat = time.monotonic() + self.heartbeat_s
        while not self._shutdown:
            with self._lock:
                # "Unhandled" (connection still set), not "alive": a worker
                # that died between two polls has is_alive() False but its
                # death has not been processed yet — its sentinel must stay
                # in the wait set (wait() returns an already-fired sentinel
                # immediately).  _handle_worker_death clears the connection,
                # which is what retires a sentinel from this set.
                sentinels = {
                    handle.process.sentinel: handle
                    for handle in self._handles.values()
                    if handle.process is not None
                    and handle.connection is not None
                }
            if not sentinels:
                return
            ready = multiprocessing.connection.wait(
                list(sentinels), timeout=0.25)
            for sentinel in ready:
                handle = sentinels[sentinel]
                with self._lock:
                    if self._shutdown:
                        return
                    self._handle_worker_death(handle)
            if self.heartbeat_s > 0 and time.monotonic() >= next_heartbeat:
                next_heartbeat = time.monotonic() + self.heartbeat_s
                self._heartbeat(sentinels.values())

    def _heartbeat(self, handles) -> None:
        """Ping each connected worker; declare the silent ones unresponsive."""
        for handle in handles:
            connection = handle.connection
            if self._shutdown or connection is None or connection.closed:
                continue
            try:
                answer = connection.try_request(
                    "ping", timeout=self.heartbeat_timeout_s)
            except TimeoutError:
                self._worker_unresponsive(handle, "ping", connection)
            except (RpcError, ClusterError, OSError):
                # Connection-level failures mean death, not a hang; the
                # sentinel watcher owns that path.
                continue
            else:
                if answer is not None:  # None = a request was in flight
                    handle.last_heartbeat = time.monotonic()

    def _worker_unresponsive(self, handle: WorkerHandle, op: str,
                             connection: RpcConnection) -> None:
        """A live worker stopped answering: declare it lost and terminate.

        Termination fires the process sentinel, so recovery — mark the
        shard down, respawn, replay specs, mark up — is exactly the
        crashed-worker path; a hang and a crash differ only in this event.
        """
        with self._lock:
            if (self._shutdown or handle.process is None
                    or handle.connection is None
                    or not handle.process.is_alive()):
                return  # already dead or being torn down; nothing to declare
            if handle.connection is not connection:
                # The deadline fired on a connection the worker slot has
                # since replaced: the request was racing a crash the
                # sentinel watcher already recovered from.  Terminating
                # now would kill the healthy replacement.
                return
            get_event_log().emit(
                EVENT_WORKER_UNRESPONSIVE, stream="",
                cid=handle.correlation_id, cluster=self.name,
                worker=handle.worker_id, pid=handle.pid, op=op,
                restart=self.restart_workers)
            handle.process.terminate()

    def _handle_worker_death(self, handle: WorkerHandle) -> None:
        """One worker died unexpectedly: record, reassign, restart."""
        exitcode = handle.process.exitcode if handle.process else None
        if handle.connection is not None:
            handle.connection.close()
            handle.connection = None
        get_event_log().emit(
            EVENT_WORKER_EXIT, stream="", cid=handle.correlation_id,
            cluster=self.name, worker=handle.worker_id, pid=handle.pid,
            exitcode=exitcode, streams=sorted(handle.streams))
        # Interim reassignment: while the worker is down, placements for
        # its shard spill to ring successors; nobody else's streams move.
        self.ring.mark_down(handle.worker_id)
        if not self.restart_workers:
            return
        handle.restarts += 1
        self._spawn(handle)
        replayed = []
        for spec in list(handle.streams.values()):
            try:
                handle.request("open-stream", spec=spec.to_dict())
                replayed.append(spec.name)
            except (RpcError, ClusterError, TimeoutError):
                handle.streams.pop(spec.name, None)
        self.ring.mark_up(handle.worker_id)
        get_event_log().emit(
            EVENT_WORKER_RESTART, stream="", cid=handle.correlation_id,
            cluster=self.name, worker=handle.worker_id, pid=handle.pid,
            restarts=handle.restarts, replayed_streams=replayed)

    # -- inspection ------------------------------------------------------------

    @property
    def worker_ids(self) -> List[int]:
        return sorted(self._handles)

    def worker(self, worker_id: int) -> WorkerHandle:
        if worker_id not in self._handles:
            raise ClusterError(f"no worker {worker_id} in cluster {self.name!r}")
        return self._handles[worker_id]

    def worker_for(self, stream_id: str) -> int:
        """The worker id the shard ring assigns to ``stream_id``."""
        return self.ring.worker_for(stream_id)

    def stream_worker(self, stream_name: str) -> Optional[int]:
        """Which worker currently hosts an open stream (None if unknown)."""
        with self._lock:
            for handle in self._handles.values():
                if stream_name in handle.streams:
                    return handle.worker_id
        return None

    def stream_names(self) -> List[str]:
        with self._lock:
            return sorted(name for handle in self._handles.values()
                          for name in handle.streams)

    # -- streams ---------------------------------------------------------------

    def open_stream(self, spec: StreamSpec) -> int:
        """Open one stream on the worker its id hashes to; returns worker id."""
        self._ensure_started()
        with self._lock:
            worker_id = self.ring.worker_for(spec.name)
            handle = self._handles[worker_id]
            handle.request("open-stream", spec=spec.to_dict())
            handle.streams[spec.name] = spec
        return worker_id

    def open_streams(self, specs: Sequence[StreamSpec]) -> Dict[str, int]:
        """Open many streams; returns ``{stream name: worker id}``."""
        return {spec.name: self.open_stream(spec) for spec in specs}

    def stream_result(self, stream_name: str, include_data: bool = False,
                      timeout: float = 30.0) -> Dict[str, Any]:
        """Digest/size (and optionally payload) of a collector stream."""
        worker_id = self.stream_worker(stream_name)
        if worker_id is None:
            raise ClusterError(f"no stream named {stream_name!r} in cluster")
        return self._handles[worker_id].request(
            "stream-result", stream=stream_name,
            include_data=include_data, timeout=timeout)

    def wait_stream(self, stream_name: str, timeout: float = 30.0) -> bool:
        """Wait for one stream's EOF to reach its sink."""
        worker_id = self.stream_worker(stream_name)
        if worker_id is None:
            raise ClusterError(f"no stream named {stream_name!r} in cluster")
        result = self._handles[worker_id].request(
            "stream-done", stream=stream_name, timeout=timeout + 5.0,
            wait_s=timeout)
        return bool(result.get("done"))

    def drain(self, timeout: float = 30.0) -> Dict[int, Dict[str, bool]]:
        """Wait for every stream on every worker to complete."""
        self._ensure_started()
        completed: Dict[int, Dict[str, bool]] = {}
        for worker_id, handle in sorted(self._handles.items()):
            if handle.connection is None or not handle.streams:
                completed[worker_id] = {}
                continue
            result = handle.request("drain", timeout=timeout + 5.0,
                                    wait_s=timeout)
            completed[worker_id] = dict(result.get("completed", {}))
        return completed

    # -- fleet-wide control ----------------------------------------------------

    def splice_insert(self, filter_spec, position: Optional[int] = None,
                      timeout: float = 30.0) -> Dict[int, Dict[str, int]]:
        """Insert a filter into every stream on every worker.

        Each worker runs the paper's pause → insert → resume protocol on
        its own chains; the parent only fans the spec out.  The stored
        stream specs are updated too, so a worker restarted later comes
        back with the spliced chain.
        """
        self._ensure_started()
        payload = filter_spec.to_dict()
        positions: Dict[int, Dict[str, int]] = {}
        with self._lock:
            for worker_id, handle in sorted(self._handles.items()):
                if handle.connection is None:
                    continue
                result = handle.request("splice-insert", filter=payload,
                                        position=position, timeout=timeout)
                positions[worker_id] = dict(result.get("positions", {}))
                for name, spec in list(handle.streams.items()):
                    handle.streams[name] = spec.with_filter(filter_spec)
        return positions

    def splice_remove(self, filter_name: str,
                      timeout: float = 30.0) -> Dict[int, Dict[str, str]]:
        """Remove a named filter from every stream on every worker."""
        self._ensure_started()
        removed: Dict[int, Dict[str, str]] = {}
        with self._lock:
            for worker_id, handle in sorted(self._handles.items()):
                if handle.connection is None:
                    continue
                result = handle.request("splice-remove", name=filter_name,
                                        timeout=timeout)
                removed[worker_id] = dict(result.get("removed", {}))
                for name, spec in list(handle.streams.items()):
                    kept = [f for f in spec.filters
                            if f.get("name") != filter_name]
                    handle.streams[name] = StreamSpec(
                        name=spec.name, source=dict(spec.source),
                        sink=dict(spec.sink), filters=kept,
                        policy=spec.policy)
        return removed

    # -- observability ---------------------------------------------------------

    def snapshots(self) -> Dict[int, Dict[str, dict]]:
        """Per-worker, per-stream ChainSnapshot dicts."""
        self._ensure_started()
        fleet: Dict[int, Dict[str, dict]] = {}
        for worker_id, handle in sorted(self._handles.items()):
            if handle.connection is None:
                continue
            result = handle.request("snapshot")
            fleet[worker_id] = dict(result.get("streams", {}))
        return fleet

    def snapshot_sum(self):
        """Fleet-wide totals: every stream's snapshot summed into one."""
        from ..core.stats import ChainSnapshot

        snapshots = [ChainSnapshot.from_dict(payload)
                     for streams in self.snapshots().values()
                     for payload in streams.values()]
        return ChainSnapshot.sum(snapshots, stream_name=f"{self.name}-fleet")

    def collect_metric_families(self) -> List[MetricFamily]:
        """Every worker's scrape, re-labelled with ``worker="<id>"``.

        Called by the default registry's cluster collector at scrape time,
        so the parent's ``/metrics`` endpoint exposes the whole fleet.  A
        worker that fails to answer (mid-restart) is skipped — scrapes
        must never block on a dead worker.
        """
        merged: Dict[str, MetricFamily] = {}
        fleet = MetricFamily("repro_cluster_workers", "gauge",
                             "Live workers per cluster")
        with self._lock:
            handles = sorted(self._handles.items()) if self._started else []
            live = len(self.ring.live_workers) if self._started else 0
        fleet.add(live, {"cluster": self.name})
        for worker_id, handle in handles:
            if handle.connection is None:
                continue
            try:
                result = handle.request("metrics", timeout=10.0)
            except (RpcError, ClusterError, TimeoutError):
                continue
            for payload in result.get("families", []):
                name = payload["name"]
                family = merged.get(name)
                if family is None:
                    family = MetricFamily(name, payload.get("kind", "gauge"),
                                          payload.get("help", ""))
                    merged[name] = family
                for pairs, value in payload.get("samples", []):
                    family.samples.append((
                        tuple(sorted([*[tuple(p) for p in pairs],
                                      ("worker", str(worker_id))],
                                     key=lambda p: (p[0] != "__suffix__",
                                                    p))),
                        float(value)))
        return [fleet, *merged.values()]

    # -- shutdown --------------------------------------------------------------

    def shutdown(self, timeout: float = 10.0, drain: bool = True) -> None:
        """Gracefully stop the fleet: drain, shut workers down, reap.

        Idempotent.  ``drain=False`` skips the wait-for-completion pass
        (used when streams are endless).
        """
        unregister_health_provider(f"cluster-{self.name}")
        with self._lock:
            if self._shutdown or not self._started:
                self._shutdown = True
                self._close_listener()
                return
            self._shutdown = True
        if drain:
            try:
                self.drain(timeout=timeout)
            except (RpcError, ClusterError, TimeoutError):
                pass
        for handle in self._handles.values():
            if handle.connection is None:
                continue
            try:
                handle.request("shutdown", timeout=timeout)
            except (RpcError, ClusterError, TimeoutError):
                pass
            handle.connection.close()
            handle.connection = None
        for handle in self._handles.values():
            if handle.process is not None:
                handle.process.join(timeout=timeout)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=5.0)
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        self._close_listener()

    def _close_listener(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    def _ensure_started(self) -> None:
        if not self._started:
            raise ClusterError(f"cluster {self.name!r} has not been started")
        if self._shutdown:
            raise ClusterError(f"cluster {self.name!r} has been shut down")

    def __enter__(self) -> "ProxyCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ProxyCluster {self.name!r} workers={self.worker_ids} "
                f"streams={self.stream_names()}>")
