"""The cluster worker process: one full proxy driven by a control loop.

Each worker is an ordinary OS process (spawned by
:class:`~repro.cluster.cluster.ProxyCluster`) running one
:class:`~repro.core.proxy.Proxy` under its own execution engine —
``REPRO_ENGINE`` is honoured *per worker*, so a cluster can mix a
threaded worker with event-loop workers.  The worker connects back to
the parent's control listener over loopback TCP (spawn-safe: no fd
inheritance) and then serves the RPC ops below from a single-threaded
loop, so control operations on one worker are naturally serialised —
a drain can never race a splice.

Ops served (all request/response, see :mod:`repro.cluster.rpc`):

=================  ==========================================================
``ping``           liveness probe; returns pid/engine
``open-stream``    instantiate a :class:`~repro.cluster.specs.StreamSpec`
``stream-done``    wait for one stream's EOF to reach its sink
``drain``          wait for *every* stream to complete (graceful shutdown)
``stream-result``  digest + payload of a completed collector stream
``splice-insert``  pause → insert filter from spec → resume, per stream
``splice-remove``  remove a named filter, per stream
``snapshot``       every stream's ChainSnapshot as dicts
``metrics``        serialised scrape of this process's MetricsRegistry
``stop-stream``    shut down one stream
``shutdown``       stop the proxy and exit the control loop
``crash``          ``os._exit`` (test hook for the restart path)
``hang``           sleep in the control loop (test hook for RPC deadlines)
=================  ==========================================================
"""

from __future__ import annotations

import base64
import os
import socket
from typing import Any, Dict, List, Optional

from .rpc import RpcConnection, RpcConnectionClosed, RpcError
from .specs import StreamSpec, digest


def serialize_families(families) -> List[Dict[str, Any]]:
    """MetricFamily list → JSON-safe payload (lossless for the exporter).

    Sample label pairs survive as ``[[key, value], ...]`` lists; histogram
    suffixes already live in the ``__suffix__`` pseudo-label, so nothing
    else is needed for a faithful re-render on the parent.
    """
    return [
        {
            "name": family.name,
            "kind": family.kind,
            "help": family.help_text,
            "samples": [[[list(pair) for pair in pairs], value]
                        for pairs, value in family.samples],
        }
        for family in families
    ]


class WorkerProcess:
    """The in-process half of one cluster worker (testable without spawn)."""

    def __init__(self, worker_id: int, connection: RpcConnection,
                 engine: Optional[str] = None) -> None:
        from ..core.proxy import Proxy
        from ..core.registry import default_registry

        self.worker_id = worker_id
        self.connection = connection
        self.proxy = Proxy(name=f"cluster-worker-{worker_id}", engine=engine)
        self.registry = default_registry()
        self._collectors: Dict[str, Any] = {}
        self._running = True

    # -- op handlers -----------------------------------------------------------

    def op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "engine": getattr(self.proxy.engine, "name", ""),
            "streams": self.proxy.stream_names(),
        }

    def op_open_stream(self, request: Dict[str, Any]) -> Dict[str, Any]:
        spec = StreamSpec.from_dict(request["spec"])
        source = spec.build_source(transport=self.proxy.transport)
        sink = spec.build_sink(transport=self.proxy.transport)
        control = self.proxy.add_stream(source, sink, name=spec.name,
                                        auto_start=False,
                                        error_policy=spec.policy)
        for filter_spec in spec.filter_specs():
            control.add(self.registry.create(filter_spec))
        control.start()
        if hasattr(sink, "items"):
            self._collectors[spec.name] = sink
        return {"stream": spec.name, "filters": control.filter_names()}

    def op_stream_done(self, request: Dict[str, Any]) -> Dict[str, Any]:
        control = self.proxy.stream(request["stream"])
        done = control.wait_for_completion(
            timeout=float(request.get("wait_s", 30.0)))
        return {"stream": control.name, "done": done}

    def op_drain(self, request: Dict[str, Any]) -> Dict[str, Any]:
        timeout = float(request.get("wait_s", 30.0))
        completed = {}
        for name, control in self.proxy.streams.items():
            completed[name] = control.wait_for_completion(timeout=timeout)
        return {"completed": completed}

    def op_stream_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request["stream"]
        sink = self._collectors.get(name)
        if sink is None:
            raise RpcError(f"stream {name!r} has no collector sink")
        items = sink.items()
        result = {
            "stream": name,
            "items": len(items),
            "bytes": sum(map(len, items)),
            "digest": digest(items),
        }
        if request.get("include_data"):
            result["data"] = [base64.b64encode(i).decode("ascii")
                              for i in items]
        return result

    def _target_streams(self, request: Dict[str, Any]):
        """The streams a splice op applies to.

        Explicitly named streams are returned as-is (a dead one fails the
        op loudly); the implicit everything case skips streams whose EOF
        already reached the sink — a fleet-wide splice composes into what
        is still flowing, it does not fail because one stream finished.
        """
        names = request.get("streams")
        if names is None:
            return [control for control in self.proxy.streams.values()
                    if not control.sink.eof_seen.is_set()]
        return [self.proxy.stream(name) for name in names]

    def op_splice_insert(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from ..core.registry import FilterSpec

        spec = FilterSpec.from_dict(request["filter"])
        position = request.get("position")
        positions = {}
        for control in self._target_streams(request):
            # One fresh instance per stream: a Filter belongs to one chain.
            positions[control.name] = control.add(
                self.registry.create(spec),
                position=None if position is None else int(position))
        return {"positions": positions}

    def op_splice_remove(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request["name"]
        removed = {}
        for control in self._target_streams(request):
            control.remove(name)
            removed[control.name] = name
        return {"removed": removed}

    def op_snapshot(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"streams": self.proxy.snapshot()}

    def op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from ..obs.metrics import default_registry as metrics_registry

        return {"families": serialize_families(metrics_registry().collect())}

    def op_stop_stream(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.proxy.remove_stream(request["stream"])
        self._collectors.pop(request["stream"], None)
        return {"stream": request["stream"]}

    def op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._running = False
        return {"worker": self.worker_id}

    def op_crash(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # Test hook for the supervisor's restart path: die without any
        # cleanup, exactly like a segfault would.  The response is never
        # sent.
        os._exit(int(request.get("code", 17)))

    def op_hang(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # Test hook for the parent's RPC deadlines: the process stays
        # alive (no sentinel fires) but the single-threaded control loop
        # sleeps, so every subsequent request — including heartbeats —
        # goes unanswered until the parent's deadline declares the worker
        # unresponsive.
        import time

        time.sleep(float(request.get("seconds", 3600.0)))
        return {"worker": self.worker_id}

    _OPS = {
        "ping": op_ping,
        "open-stream": op_open_stream,
        "stream-done": op_stream_done,
        "drain": op_drain,
        "stream-result": op_stream_result,
        "splice-insert": op_splice_insert,
        "splice-remove": op_splice_remove,
        "snapshot": op_snapshot,
        "metrics": op_metrics,
        "stop-stream": op_stop_stream,
        "shutdown": op_shutdown,
        "crash": op_crash,
        "hang": op_hang,
    }

    # -- control loop ----------------------------------------------------------

    def serve(self) -> None:
        """Serve control requests until shutdown or parent disconnect."""
        try:
            while self._running:
                try:
                    request = self.connection.receive(timeout=None)
                except RpcConnectionClosed:
                    break  # parent is gone; exit quietly
                op = request.get("op", "")
                handler = self._OPS.get(op)
                if handler is None:
                    self.connection.respond_error(
                        request, f"unknown op {op!r}")
                    continue
                try:
                    result = handler(self, request)
                except Exception as exc:  # noqa: BLE001 - reported to parent
                    try:
                        self.connection.respond_error(request, str(exc))
                    except RpcConnectionClosed:
                        break
                    continue
                try:
                    self.connection.respond(request, result)
                except RpcConnectionClosed:
                    break
        finally:
            self.proxy.shutdown()
            self.connection.close()


def worker_main(worker_id: int, host: str, port: int,
                engine: Optional[str] = None,
                event_log_path: Optional[str] = None) -> None:
    """Entry point for a spawned cluster worker (module-level for spawn).

    Connects back to the parent's control listener, identifies itself with
    a ``hello`` frame, and serves the control loop until told to stop.
    ``engine`` overrides ``REPRO_ENGINE`` for this worker only;
    ``event_log_path`` tees this worker's event log to the parent's JSONL
    file so fleet timelines interleave in one place.
    """
    if engine:
        os.environ["REPRO_ENGINE"] = engine
    if event_log_path:
        os.environ["REPRO_EVENT_LOG"] = event_log_path
    sock = socket.create_connection((host, port), timeout=30.0)
    sock.settimeout(None)
    connection = RpcConnection(sock)
    connection.send({"op": "hello", "worker": worker_id, "pid": os.getpid()})
    worker = WorkerProcess(worker_id, connection, engine=engine)
    worker.serve()
