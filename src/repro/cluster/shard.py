"""Consistent-hash sharding of stream ids onto cluster workers.

The parent assigns every stream to one worker by hashing the stream id
onto a ring of virtual nodes (``REPLICAS`` points per worker, positioned
by SHA-1 so placement is stable across processes and Python runs —
``hash()`` is salted per process and useless here).

Consistent hashing matters for the crash path: when a worker dies its
streams move to the next points on the ring, but every *other* stream
keeps its worker.  A modulo shard would reshuffle nearly everything on a
census change; the ring disturbs only the dead worker's share.  When the
worker restarts (``mark_up``) its ring points return and new streams for
its shard land on it again.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

#: Virtual nodes per worker.  64 points keeps the ring balanced to within
#: a few percent for single-digit worker counts while the ring stays tiny
#: (8 workers = 512 points).
REPLICAS = 64


def _point(key: str) -> int:
    """A stable 64-bit ring position for ``key``."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """A consistent-hash ring mapping stream ids to worker ids.

    Workers can be marked down (crash) and up (restart) without losing
    their ring points: a down worker's points are skipped during lookup,
    so its streams spill to ring successors while everyone else's
    placement is untouched.
    """

    def __init__(self, worker_ids: Iterable[int],
                 replicas: int = REPLICAS) -> None:
        self._replicas = replicas
        self._workers: List[int] = []
        self._down: set = set()
        self._points: List[Tuple[int, int]] = []  # (position, worker_id)
        for worker_id in worker_ids:
            self.add_worker(worker_id)

    # -- membership ------------------------------------------------------------

    def add_worker(self, worker_id: int) -> None:
        """Add a worker's virtual nodes to the ring."""
        if worker_id in self._workers:
            raise ValueError(f"worker {worker_id} already on the ring")
        self._workers.append(worker_id)
        for replica in range(self._replicas):
            position = _point(f"worker-{worker_id}-{replica}")
            bisect.insort(self._points, (position, worker_id))

    def mark_down(self, worker_id: int) -> None:
        """Skip this worker during lookups (its points stay on the ring)."""
        if worker_id not in self._workers:
            raise ValueError(f"worker {worker_id} not on the ring")
        self._down.add(worker_id)

    def mark_up(self, worker_id: int) -> None:
        """Restore a previously downed worker to lookup eligibility."""
        self._down.discard(worker_id)

    @property
    def workers(self) -> List[int]:
        """All workers ever added, in addition order."""
        return list(self._workers)

    @property
    def live_workers(self) -> List[int]:
        """Workers currently eligible for placement."""
        return [w for w in self._workers if w not in self._down]

    def is_down(self, worker_id: int) -> bool:
        """True while the worker is marked down."""
        return worker_id in self._down

    # -- placement -------------------------------------------------------------

    def worker_for(self, stream_id: str) -> int:
        """The worker id owning ``stream_id`` (ring successor lookup)."""
        if not self._points:
            raise RuntimeError("shard ring is empty")
        if not self.live_workers:
            raise RuntimeError("no live workers on the shard ring")
        position = _point(stream_id)
        index = bisect.bisect_right(self._points, (position, 1 << 63))
        # Walk clockwise from the successor point until a live worker.
        for offset in range(len(self._points)):
            _, worker_id = self._points[(index + offset) % len(self._points)]
            if worker_id not in self._down:
                return worker_id
        raise RuntimeError("no live workers on the shard ring")  # unreachable

    def census(self, stream_ids: Iterable[str]) -> Dict[int, List[str]]:
        """Group stream ids by owning worker (live workers only)."""
        placement: Dict[int, List[str]] = {w: [] for w in self.live_workers}
        for stream_id in stream_ids:
            placement[self.worker_for(stream_id)].append(stream_id)
        return placement
