"""Process-wide metrics: named counters, gauges and histograms.

The observability plane follows the house registry idiom
(:mod:`repro.fec.backend` / :mod:`repro.runtime` / :mod:`repro.transport`):
a :class:`MetricsRegistry` holds named instruments, a process-wide default
registry is shared by every subsystem, and selection of the export surface
is environment-driven (``REPRO_METRICS_ADDR``, see
:mod:`repro.obs.exporter`).

Two rules keep the data path fast:

* **Instrument writes are lock-free.**  ``Counter.inc`` / ``Gauge.set`` are
  plain-int/float attribute updates — GIL-atomic, exactly like
  :class:`repro.core.stats.FilterStats` — so control-plane components may
  update them from any thread without a lock round-trip.  (Instrument
  *creation* takes a lock; create once, update forever.)
* **Fleet state is collected at scrape time.**  Per-filter/per-stream
  counters already exist on the data path (``FilterStats``); rather than
  mirroring every increment into this registry, *collectors* walk the live
  proxies/engines/channels only when ``/metrics`` is scraped.  The hot path
  therefore pays nothing for observability — the acceptance criterion of
  the E6 perf floor.

Proxies, execution engines and datagram channels register themselves into
module-level weak sets (:func:`register_proxy`, :func:`register_engine`,
:func:`register_channel`); the default registry's built-in collectors turn
whatever is alive at scrape time into Prometheus metric families.
"""

from __future__ import annotations

import re
import threading
import weakref
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Bucket upper bounds used when a histogram is created without explicit
#: buckets (byte-ish sizes: 64 B .. 1 MiB).
DEFAULT_BUCKETS = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)


class MetricsError(ValueError):
    """Raised for invalid metric names, labels, or conflicting registration."""


LabelPairs = Tuple[Tuple[str, str], ...]


def _validate_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name or ""):
        raise MetricsError(f"invalid metric name {name!r}")
    return name


def _validate_label_names(label_names: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(label_names)
    for label in names:
        if not _LABEL_NAME_RE.match(label or "") or label.startswith("__"):
            raise MetricsError(f"invalid label name {label!r}")
    if len(set(names)) != len(names):
        raise MetricsError(f"duplicate label names in {names!r}")
    return names


class MetricFamily:
    """One named family of samples, as rendered into the exposition format."""

    def __init__(self, name: str, kind: str, help_text: str = "") -> None:
        self.name = _validate_name(name)
        self.kind = kind
        self.help_text = help_text
        #: ``(sorted label pairs, value)`` rows, in insertion order.
        self.samples: List[Tuple[LabelPairs, float]] = []

    def add(
        self,
        value: float,
        labels: Optional[Dict[str, str]] = None,
        suffix: str = "",
    ) -> None:
        """Append one sample (``suffix`` is for histogram sub-series)."""
        pairs = tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))
        for key, _ in pairs:
            if not _LABEL_NAME_RE.match(key):
                raise MetricsError(f"invalid label name {key!r}")
        if suffix:
            pairs = (("__suffix__", suffix),) + pairs
        self.samples.append((pairs, float(value)))


class Counter:
    """A monotonically increasing counter.

    With ``label_names``, per-label children are created on demand with
    :meth:`labels`; without, :meth:`inc` updates the instrument directly.
    Increments are GIL-atomic ``+=`` — no lock on the update path.
    """

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> None:
        self.name = _validate_name(name)
        self.help_text = help_text
        self.label_names = _validate_label_names(label_names)
        self._value = 0.0
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "Counter"] = {}

    def inc(self, amount: float = 1.0) -> None:
        if self.label_names:
            raise MetricsError(
                f"counter {self.name!r} is labelled; use .labels(...) first"
            )
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def labels(self, **labels: str) -> "Counter":
        """The child counter for one label combination (created on demand)."""
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"counter {self.name!r} expects labels {self.label_names!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = type(self)(self.name, self.help_text)
                    self._children[key] = child
        return child

    def collect(self) -> MetricFamily:
        family = MetricFamily(self.name, self.kind, self.help_text)
        if self.label_names:
            with self._lock:
                children = list(self._children.items())
            for key, child in children:
                family.add(child._value, dict(zip(self.label_names, key)))
        else:
            family.add(self._value)
        return family


class Gauge(Counter):
    """A value that can go up and down, or be computed at scrape time."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, label_names)
        self._function: Optional[Callable[[], float]] = None

    def inc(self, amount: float = 1.0) -> None:
        if self.label_names:
            raise MetricsError(
                f"gauge {self.name!r} is labelled; use .labels(...) first"
            )
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        if self.label_names:
            raise MetricsError(
                f"gauge {self.name!r} is labelled; use .labels(...) first"
            )
        self._value = float(value)

    def set_function(self, function: Callable[[], float]) -> None:
        """Evaluate ``function`` at scrape time instead of storing a value."""
        if self.label_names:
            raise MetricsError(
                f"gauge {self.name!r} is labelled; set functions on children"
            )
        self._function = function

    def collect(self) -> MetricFamily:
        if self._function is None and not self.label_names:
            return super().collect()
        family = MetricFamily(self.name, self.kind, self.help_text)
        if self.label_names:
            with self._lock:
                children = list(self._children.items())
            for key, child in children:
                function = child._function
                value = function() if function is not None else child._value
                family.add(value, dict(zip(self.label_names, key)))
        else:
            try:
                family.add(self._function())
            except Exception:  # noqa: BLE001 - a dead callback must not kill scrape
                family.add(self._value)
        return family


class Histogram:
    """A cumulative histogram (Prometheus ``_bucket``/``_sum``/``_count``).

    ``observe`` takes a small lock: histograms are for control-plane sizes
    and latencies, never for per-chunk data-path accounting.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = _validate_name(name)
        self.help_text = help_text
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricsError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise MetricsError("histogram bucket bounds must be distinct")
        self.label_names: Tuple[str, ...] = ()
        self.bounds = bounds
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def collect(self) -> MetricFamily:
        family = MetricFamily(self.name, self.kind, self.help_text)
        with self._lock:
            counts = list(self._bucket_counts)
            total, total_sum = self._count, self._sum
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            label = repr(bound) if bound != int(bound) else str(int(bound))
            family.add(cumulative, {"le": label}, suffix="_bucket")
        family.add(total, {"le": "+Inf"}, suffix="_bucket")
        family.add(total_sum, suffix="_sum")
        family.add(total, suffix="_count")
        return family


#: A collector: a zero-argument callable returning metric families, run at
#: scrape time.  This is how fleet state (proxies, engines, channels) is
#: exported without touching the data path.
Collector = Callable[[], Iterable[MetricFamily]]


class MetricsRegistry:
    """A named set of instruments plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}
        self._collectors: List[Collector] = []

    # ------------------------------------------------------------ instruments

    def register(self, instrument):
        """Add an instrument; re-registering an identical name returns the
        existing instrument (concurrent registration is first-wins), a
        conflicting one raises."""
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None:
                same_type = type(existing) is type(instrument)
                if same_type and existing.label_names == instrument.label_names:
                    return existing
                raise MetricsError(
                    f"metric {instrument.name!r} already registered "
                    f"as a {type(existing).__name__}"
                )
            self._instruments[instrument.name] = instrument
            return instrument

    def unregister(self, name: str) -> None:
        with self._lock:
            self._instruments.pop(name, None)

    def counter(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> Counter:
        """Get or create the named counter."""
        return self.register(Counter(name, help_text, label_names))

    def gauge(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
    ) -> Gauge:
        """Get or create the named gauge."""
        return self.register(Gauge(name, help_text, label_names))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the named histogram."""
        return self.register(Histogram(name, help_text, buckets))

    def get(self, name: str):
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    # ------------------------------------------------------------- collectors

    def register_collector(self, collector: Collector) -> Collector:
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)
        return collector

    def unregister_collector(self, collector: Collector) -> None:
        with self._lock:
            self._collectors = [c for c in self._collectors if c != collector]

    # ----------------------------------------------------------------- scrape

    def collect(self) -> List[MetricFamily]:
        """Every family from every instrument and collector, sorted by name.

        Families with the same name are merged (first kind/help wins) so a
        collector may extend an instrument's family with fleet samples.
        """
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        merged: Dict[str, MetricFamily] = {}
        for instrument in instruments:
            family = instrument.collect()
            merged[family.name] = family
        for collector in collectors:
            try:
                families = list(collector())
            except Exception:  # noqa: BLE001 - a broken collector must not kill scrape
                continue
            for family in families:
                existing = merged.get(family.name)
                if existing is None:
                    merged[family.name] = family
                else:
                    existing.samples.extend(family.samples)
        return [merged[name] for name in sorted(merged)]


# ---------------------------------------------------------------------------
# Fleet registration: live proxies / engines / channels, collected at scrape
# ---------------------------------------------------------------------------

_proxies: "weakref.WeakSet" = weakref.WeakSet()
_engines: "weakref.WeakSet" = weakref.WeakSet()
_channels: "weakref.WeakSet" = weakref.WeakSet()
_clusters: "weakref.WeakSet" = weakref.WeakSet()


def register_proxy(proxy) -> None:
    """Track a live Proxy for scrape-time collection (weakly referenced)."""
    _proxies.add(proxy)


def register_cluster(cluster) -> None:
    """Track a live ProxyCluster for scrape-time collection.

    Duck-typed (anything with ``collect_metric_families()``) so this
    module never imports :mod:`repro.cluster` — the dependency points the
    other way, matching proxies/engines/channels.
    """
    _clusters.add(cluster)


def register_engine(engine) -> None:
    """Track a live ExecutionEngine for scrape-time collection."""
    _engines.add(engine)


def register_channel(channel) -> None:
    """Track a live DatagramChannel for scrape-time collection."""
    _channels.add(channel)


def live_proxies() -> List[object]:
    return list(_proxies)


def live_engines() -> List[object]:
    return list(_engines)


def live_channels() -> List[object]:
    return list(_channels)


def live_clusters() -> List[object]:
    return list(_clusters)


def collect_clusters() -> List[MetricFamily]:
    """Fleet metrics from every live cluster's aggregated worker scrapes.

    Each cluster returns families whose samples already carry the
    ``worker`` label; a cluster that cannot be scraped (shutting down,
    workers mid-restart) contributes nothing rather than failing the
    whole scrape.
    """
    families: List[MetricFamily] = []
    for cluster in list(_clusters):
        try:
            families.extend(cluster.collect_metric_families())
        except Exception:  # noqa: BLE001 - a dead cluster must not kill scrape
            continue
    return families


_STREAM_STAT_FAMILIES = (
    # metric suffix, FilterStats key pairs collapsed under a direction label
    ("chunks", "chunks_in", "chunks_out"),
    ("bytes", "bytes_in", "bytes_out"),
    ("packets", "packets_in", "packets_out"),
)


def collect_proxies() -> List[MetricFamily]:
    """Per-stream / per-element metrics from every live proxy's snapshots.

    Reads the same lock-free ``FilterStats`` counters the control plane
    displays; the walk happens here, at scrape time, never on the data path.
    """
    streams = MetricFamily(
        "repro_proxy_streams", "gauge", "Streams hosted by the proxy"
    )
    running = MetricFamily(
        "repro_stream_running", "gauge", "1 while the stream's endpoints are alive"
    )
    filters = MetricFamily(
        "repro_stream_filters", "gauge", "Filters currently composed into the stream"
    )
    wakeups = MetricFamily(
        "repro_stream_idle_wakeups_total",
        "counter",
        "Idle-waiter wakeups delivered on this stream",
    )
    directional = {}
    for suffix, _, _ in _STREAM_STAT_FAMILIES:
        directional[suffix] = MetricFamily(
            f"repro_stream_{suffix}_total",
            "counter",
            f"Stream {suffix} moved, by element and direction",
        )
    errors = MetricFamily(
        "repro_stream_errors_total", "counter", "Element errors recorded on the stream"
    )
    exhausted = MetricFamily(
        "repro_stream_pump_budget_exhausted_total",
        "counter",
        "Pump steps that drained a full input budget (backlog signal)",
    )

    for proxy in live_proxies():
        try:
            controls = proxy.streams
        except Exception:  # noqa: BLE001 - a proxy mid-shutdown must not kill scrape
            continue
        streams.add(len(controls), {"proxy": proxy.name})
        for stream_name, control in controls.items():
            try:
                snap = control.snapshot()
            except Exception:  # noqa: BLE001 - as above
                continue
            base = {"proxy": proxy.name, "stream": stream_name}
            running.add(1.0 if snap.running else 0.0, base)
            filters.add(len(snap.filter_names), base)
            wakeups.add(getattr(control, "idle_wakeups", 0), base)
            elements = [("source", snap.source_stats)]
            elements += list(zip(snap.filter_names, snap.filter_stats))
            elements.append(("sink", snap.sink_stats))
            for element_name, stats in elements:
                labels = dict(base, element=element_name)
                for suffix, in_key, out_key in _STREAM_STAT_FAMILIES:
                    directional[suffix].add(
                        stats.get(in_key, 0), dict(labels, direction="in")
                    )
                    directional[suffix].add(
                        stats.get(out_key, 0), dict(labels, direction="out")
                    )
                errors.add(stats.get("errors", 0), labels)
                exhausted.add(stats.get("budget_exhausted", 0), labels)
    families = [streams, running, filters, wakeups]
    families.extend(directional.values())
    families.extend([errors, exhausted])
    return families


def collect_engines() -> List[MetricFamily]:
    """Scheduler metrics from every live execution engine.

    Engines expose ``metrics_snapshot() -> {"counters": {...},
    "gauges": {...}}`` of plain scheduler-thread-private ints; reading them
    here may lag an in-flight increment by one round, which dashboards
    tolerate by design.
    """
    families: Dict[str, MetricFamily] = {}
    for engine in live_engines():
        snapshot_fn = getattr(engine, "metrics_snapshot", None)
        if snapshot_fn is None:
            continue
        try:
            snapshot = snapshot_fn()
        except Exception:  # noqa: BLE001 - an engine mid-shutdown must not kill scrape
            continue
        labels = {"engine": engine.name, "instance": f"{id(engine):x}"}
        for kind, key_suffix in (("counters", "_total"), ("gauges", "")):
            for key, value in snapshot.get(kind, {}).items():
                name = f"repro_engine_{key}{key_suffix}"
                family = families.get(name)
                if family is None:
                    family = MetricFamily(
                        name,
                        "counter" if kind == "counters" else "gauge",
                        f"Engine scheduler {key.replace('_', ' ')}",
                    )
                    families[name] = family
                family.add(value, labels)
    return list(families.values())


def collect_event_log() -> List[MetricFamily]:
    """Drop accounting for the process-wide event log's bounded ring.

    The ring evicts oldest-first when full; without this counter a chaos
    run that emits faster than anyone reads would lose its own evidence
    silently.  Imported lazily — events never imports metrics, so the
    dependency stays one-way.
    """
    from .events import get_event_log

    dropped = MetricFamily(
        "repro_events_dropped_total",
        "counter",
        "Event records evicted from the in-memory ring (tee unaffected)",
    )
    dropped.add(get_event_log().dropped_total)
    return [dropped]


def collect_channels() -> List[MetricFamily]:
    """Datagram-channel metrics from every live transport channel."""
    sent = MetricFamily(
        "repro_transport_datagrams_sent_total",
        "counter",
        "Datagrams sent on the channel",
    )
    sent_bytes = MetricFamily(
        "repro_transport_bytes_sent_total",
        "counter",
        "Payload bytes sent on the channel",
    )
    send_errors = MetricFamily(
        "repro_transport_send_errors_total",
        "counter",
        "Datagram send attempts that failed",
    )
    received = MetricFamily(
        "repro_transport_datagrams_received_total",
        "counter",
        "Datagrams delivered to a local channel member",
    )
    framing_errors = MetricFamily(
        "repro_transport_framing_errors_total",
        "counter",
        "Malformed datagrams detected and dropped by a local member",
    )
    for channel in live_channels():
        labels = {"transport": type(channel).__name__, "channel": channel.name}
        sent.add(getattr(channel, "packets_sent", 0), labels)
        sent_bytes.add(getattr(channel, "bytes_sent", 0), labels)
        send_errors.add(getattr(channel, "send_errors", 0), labels)
        try:
            receivers = channel.local_receivers()
        except Exception:  # noqa: BLE001 - a channel mid-close must not kill scrape
            receivers = []
        for receiver in receivers:
            member_labels = dict(labels, member=receiver.name)
            received.add(getattr(receiver, "packets_received", 0), member_labels)
            framing_errors.add(getattr(receiver, "framing_errors", 0), member_labels)
    return [sent, sent_bytes, send_errors, received, framing_errors]


# ---------------------------------------------------------------------------
# Process-wide default registry (house idiom: lazily built, lock-guarded)
# ---------------------------------------------------------------------------

_default_registry: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry, pre-wired with the fleet collectors."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            registry = MetricsRegistry()
            registry.register_collector(collect_proxies)
            registry.register_collector(collect_engines)
            registry.register_collector(collect_channels)
            registry.register_collector(collect_clusters)
            registry.register_collector(collect_event_log)
            _default_registry = registry
        return _default_registry
