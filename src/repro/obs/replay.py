"""Trace replay: drive a live proxy with loss recorded in a packet trace.

The inproc simulation generates loss from a distance model; this harness
generates it from *data* — a :class:`~repro.net.trace.PacketTrace` recorded
by an earlier run (or built synthetically) is reduced to a
:class:`LossSchedule` of per-window loss rates, and those rates are applied
to a real transport channel's receive path while a live proxy streams
sequenced media through it.  The :class:`~repro.obs.loss.LossEstimator` on
the receiving side measures the induced loss, a
:class:`~repro.obs.loss.MeasuredLossObserver` publishes it, and the
standard :class:`~repro.rapidware.responders.FecResponder` adapts the
chain — the full measured-loss control loop, end to end, on ``loopback``
or ``udp``.

Dropping at the receive hook (rather than replaying exact per-sequence
drops) is deliberate: once the responder inserts FEC, the wire carries
parity packets the original trace never saw, so only a *rate* transfers
from the recording to the replay.  The drop RNG is seeded for
reproducibility.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..core import CallableSource, ControlThread, Proxy
from ..media import MediaPacket
from ..net.trace import EVENT_LOST, EVENT_SENT, PacketTrace
from ..rapidware.events import EventBus
from ..rapidware.policy import AdaptationLimits, FecPolicy
from ..rapidware.responders import FecResponder
from ..transport import TransportSink
from .loss import LossEstimator, MeasuredLossObserver


class LossSchedule:
    """Per-window loss rates derived from a trace (or given directly)."""

    def __init__(self, rates: List[float], window_s: float = 1.0) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.rates = [min(1.0, max(0.0, float(rate))) for rate in rates]
        self.window_s = float(window_s)

    @classmethod
    def from_rates(cls, rates: List[float], window_s: float = 1.0) -> "LossSchedule":
        return cls(list(rates), window_s)

    @classmethod
    def from_trace(
        cls,
        trace: PacketTrace,
        window_s: float = 1.0,
        receiver: Optional[str] = None,
    ) -> "LossSchedule":
        """Reduce a packet trace to per-window loss rates.

        Each window's rate is ``lost / sent`` over the trace events falling
        inside it (``sent`` defaulting to the window's lost+delivered count
        for traces that only recorded outcomes).
        """
        sent: dict = {}
        lost: dict = {}
        outcomes: dict = {}
        horizon = 0
        for event in trace.events:
            if receiver is not None and event.receiver not in ("", receiver):
                continue
            index = int(event.time_s // window_s)
            horizon = max(horizon, index + 1)
            if event.event == EVENT_SENT:
                sent[index] = sent.get(index, 0) + 1
            elif event.event == EVENT_LOST:
                lost[index] = lost.get(index, 0) + 1
                outcomes[index] = outcomes.get(index, 0) + 1
            else:
                outcomes[index] = outcomes.get(index, 0) + 1
        rates = []
        for index in range(horizon):
            denominator = sent.get(index) or outcomes.get(index, 0)
            rates.append(lost.get(index, 0) / denominator if denominator else 0.0)
        return cls(rates, window_s)

    def rate_at(self, time_s: float) -> float:
        """The loss rate in effect at ``time_s`` (0 outside the schedule)."""
        if time_s < 0 or not self.rates:
            return 0.0
        index = int(time_s // self.window_s)
        return self.rates[index] if index < len(self.rates) else 0.0

    def __len__(self) -> int:
        return len(self.rates)


@dataclass
class ReplayStepRecord:
    """What happened during one schedule window of a replay."""

    window: int
    time_s: float
    applied_loss_rate: float
    measured_loss_rate: float
    fec_active: bool
    fec_code: Optional["tuple[int, int]"]
    packets_delivered: int
    packets_dropped: int


@dataclass
class TraceReplayResult:
    """The full record of one trace replay run."""

    steps: List[ReplayStepRecord] = field(default_factory=list)
    insertions: int = 0
    removals: int = 0
    upgrades: int = 0
    final_fec_active: bool = False

    def max_code(self) -> Optional["tuple[int, int]"]:
        """The strongest (n, k) the responder reached, by parity count."""
        best = None
        for step in self.steps:
            if step.fec_code is None:
                continue
            parity = step.fec_code[1] - step.fec_code[0]
            if best is None or parity > best[1] - best[0]:
                best = step.fec_code
        return best

    def fec_activation_window(self) -> Optional[int]:
        for step in self.steps:
            if step.fec_active:
                return step.window
        return None


class TraceReplaySession:
    """A live proxied stream whose receive path drops per a loss schedule.

    The chain is the adaptive-session shape — queue-fed
    :class:`~repro.core.endpoints.CallableSource` through the proxy to a
    :class:`~repro.transport.endpoints.TransportSink` multicasting on a
    channel — but the receiving member is instrumented: every delivered
    payload is either dropped (seeded RNG at the current schedule rate) or
    handed to the :class:`LossEstimator`, and the measured-loss observer /
    FEC responder pair closes the loop.
    """

    def __init__(
        self,
        transport: str = "loopback",
        engine=None,
        channel_name: str = "trace-replay",
        receiver_name: str = "replay-receiver",
        policy: Optional[FecPolicy] = None,
        limits: Optional[AdaptationLimits] = None,
        observer_min_sample: int = 10,
        drop_seed: int = 23,
    ) -> None:
        self.proxy = Proxy("trace-replay-proxy", engine=engine, transport=transport)
        self.channel = self.proxy.open_channel(channel_name)
        self.estimator = LossEstimator()
        self._rng = random.Random(drop_seed)
        self._rate = 0.0
        self.packets_delivered = 0
        self.packets_dropped = 0
        # Callback-only member: payloads reach _on_payload (where the
        # schedule drops or the estimator measures) and are never queued.
        self.channel_receiver = self.channel.join(
            receiver_name, on_receive=self._on_payload, queue_payloads=False
        )

        import queue as queue_module
        import threading

        self._queue: "queue_module.Queue[Optional[bytes]]" = queue_module.Queue()
        self._source_done = threading.Event()
        self._enqueued_packets = 0
        self._next_sequence = 0
        self._source = CallableSource(
            self._pull,
            name="replay-feed",
            frame_output=True,
        )
        self._sink = TransportSink(
            self.channel, name="replay-sender", expect_frames=True
        )
        self.control: ControlThread = self.proxy.add_stream(
            self._source, self._sink, name="replay", auto_start=True
        )

        self.bus = EventBus()
        effective_policy = policy or FecPolicy()
        self.observer = MeasuredLossObserver(
            self.estimator,
            self.bus,
            receiver_name=receiver_name,
            degraded_threshold=effective_policy.insert_threshold,
            min_sample_packets=observer_min_sample,
        )
        self.responder = FecResponder(
            self.control,
            self.bus,
            policy=effective_policy,
            limits=limits or AdaptationLimits(min_interval_s=0.0),
        )

    # -- receive path ----------------------------------------------------------

    def _on_payload(self, payload: bytes) -> None:
        if self._rate > 0.0 and self._rng.random() < self._rate:
            self.packets_dropped += 1
            return
        self.packets_delivered += 1
        self.estimator.observe(payload)

    def set_loss_rate(self, rate: float) -> None:
        self._rate = min(1.0, max(0.0, float(rate)))

    # -- stream feeding --------------------------------------------------------

    def _pull(self) -> Optional[bytes]:
        item = self._queue.get()
        return None if item is None else item

    def enqueue_media(
        self, count: int, payload_bytes: int = 160, timestamp_step_ms: int = 20
    ) -> None:
        """Feed ``count`` synthetic sequenced media packets to the stream."""
        for _ in range(count):
            packet = MediaPacket(
                sequence=self._next_sequence,
                timestamp_ms=self._next_sequence * timestamp_step_ms,
                payload=bytes([self._next_sequence % 251] * payload_bytes),
            )
            self._queue.put(packet.pack())
            self._next_sequence += 1
            self._enqueued_packets += 1

    def enqueue_packets(self, packets: List[MediaPacket]) -> None:
        """Feed pre-built media packets (e.g. a recorded stream)."""
        for packet in packets:
            self._queue.put(packet.pack())
            self._enqueued_packets += 1
            self._next_sequence = max(self._next_sequence, packet.sequence + 1)

    def _fed_through(self) -> bool:
        """True once every enqueued packet has cleared the source."""
        if not self._queue.empty():
            return False
        return self._source.items_produced >= self._enqueued_packets

    def wait_quiescent(self, timeout: float = 10.0) -> bool:
        return self.control.wait_idle(timeout=timeout, extra=self._fed_through)

    def drain_receiver(self, settle_rounds: int = 3, timeout: float = 5.0) -> int:
        """Pull everything off the receive path (UDP drains on poll).

        Loops until the receiver's delivery count holds still for
        ``settle_rounds`` consecutive polls; push transports (loopback)
        settle immediately, socket transports get the kernel buffer pulled.
        """
        deadline = time.monotonic() + timeout
        last = -1
        stable = 0
        while stable < settle_rounds and time.monotonic() < deadline:
            self.channel_receiver.pending()  # drains the socket if any
            count = self.channel_receiver.packets_received
            if count == last:
                stable += 1
                time.sleep(0.005)
            else:
                stable = 0
                last = count
        return self.channel_receiver.packets_received

    # -- replay loop -----------------------------------------------------------

    def run(
        self,
        schedule: LossSchedule,
        packets_per_window: int = 60,
        quiesce_timeout: float = 30.0,
    ) -> TraceReplayResult:
        """Play every schedule window through the live chain."""
        result = TraceReplayResult()
        now_s = 0.0
        for window, rate in enumerate(schedule.rates):
            self.set_loss_rate(rate)
            before_delivered = self.packets_delivered
            before_dropped = self.packets_dropped
            self.enqueue_media(packets_per_window)
            if not self.wait_quiescent(timeout=quiesce_timeout):
                raise RuntimeError("the replay stream failed to quiesce")
            self.drain_receiver()
            self.observer.observe(now_s)
            step = ReplayStepRecord(
                window=window,
                time_s=now_s,
                applied_loss_rate=rate,
                measured_loss_rate=self.observer.last_loss_rate,
                fec_active=self.responder.fec_active,
                fec_code=self.responder.current_code,
                packets_delivered=self.packets_delivered - before_delivered,
                packets_dropped=self.packets_dropped - before_dropped,
            )
            result.steps.append(step)
            now_s += schedule.window_s
        result.insertions = self.responder.insertions
        result.removals = self.responder.removals
        result.upgrades = self.responder.upgrades
        result.final_fec_active = self.responder.fec_active
        return result

    # -- teardown --------------------------------------------------------------

    def finish(self, timeout: float = 30.0) -> None:
        self._source_done.set()
        self._queue.put(None)
        self.control.wait_for_completion(timeout=timeout)

    def shutdown(self) -> None:
        self._source_done.set()
        self._queue.put(None)
        self.proxy.shutdown()


def replay_schedule(
    schedule: LossSchedule,
    transport: str = "loopback",
    engine=None,
    policy: Optional[FecPolicy] = None,
    limits: Optional[AdaptationLimits] = None,
    packets_per_window: int = 60,
    drop_seed: int = 23,
) -> TraceReplayResult:
    """Replay a loss schedule through a fresh session (convenience)."""
    session = TraceReplaySession(
        transport=transport,
        engine=engine,
        policy=policy,
        limits=limits,
        drop_seed=drop_seed,
    )
    try:
        result = session.run(schedule, packets_per_window=packets_per_window)
        session.finish()
    finally:
        session.shutdown()
    return result


def replay_trace(
    trace: PacketTrace,
    window_s: float = 1.0,
    receiver: Optional[str] = None,
    **session_options,
) -> TraceReplayResult:
    """Reduce a recorded trace to a schedule and replay it (convenience)."""
    schedule = LossSchedule.from_trace(trace, window_s=window_s, receiver=receiver)
    return replay_schedule(schedule, **session_options)
