"""Measured loss from real receive paths, feeding the adaptive FEC policy.

The inproc simulation knows exactly which packets it dropped, so its
:class:`~repro.rapidware.observers.LossRateObserver` reads loss straight
off the simulated receiver.  Real transports (``udp``) have no such oracle:
loss must be *measured* from what arrives.  Two signals are available on
the receive path, and :class:`LossEstimator` uses both:

* **FEC group gaps** — every FEC-coded packet names its group and its
  index within the group's ``n`` packets, so a sealed group with fewer
  than ``n`` distinct indices received is direct evidence of loss (this is
  the paper's own feedback signal: the decoder knows how many packets each
  group was missing);
* **media sequence gaps** — before FEC is inserted the stream is plain
  sequenced media packets, so holes in the sequence window measure loss
  during exactly the phase where the insert decision must be made.

:class:`MeasuredLossObserver` wraps the estimator in the standard
:class:`~repro.rapidware.raplets.ObserverRaplet` protocol, publishing the
same ``EVENT_LOSS_RATE`` events the simulated observer does — the existing
:class:`~repro.rapidware.responders.FecResponder` drives off them
unchanged, which is the point: only the *measurement* is new, the policy
is the one the simulation validated.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..fec.packets import FecPacket, FecPacketError
from ..media import MediaPacket
from ..media.packetizer import MediaPacketError
from ..rapidware.events import (
    EVENT_LOSS_RATE,
    SEVERITY_CRITICAL,
    SEVERITY_DEGRADED,
    SEVERITY_INFO,
    Event,
    EventBus,
)
from ..rapidware.raplets import ObserverRaplet


class LossEstimator:
    """Estimate packet loss from the payloads that arrive at a receiver.

    Feed every delivered payload to :meth:`observe` (or :meth:`attach` the
    estimator to a transport receiver's ``on_receive`` hook).  The
    estimator classifies each payload the same way the audio receiver
    does — FEC header first, media header otherwise — and maintains:

    * a table of **open FEC groups** (group id -> indices seen, ``n``).  A
      group *seals* once a group ``seal_margin`` ids newer appears (the
      stream has clearly moved on); sealed groups enter a sliding window
      of the ``window_groups`` most recent, and FEC loss is
      ``1 - received / expected`` over that window.
    * a sliding window of the last ``window_sequences`` **media sequence
      numbers**; sequence loss is the fraction of the covered sequence
      span that never arrived.

    :meth:`loss_rate` prefers the FEC signal when any group has sealed
    (it measures the full coded stream, parity included) and falls back
    to the sequence signal otherwise.

    The estimator runs on the *measuring host's* receive path — the
    subscriber side of the channel, not the proxy's pump — so the small
    lock below is off the proxy data path and the E6 floor by
    construction.
    """

    def __init__(
        self,
        window_groups: int = 32,
        seal_margin: int = 2,
        window_sequences: int = 128,
    ) -> None:
        if window_groups < 1 or window_sequences < 2 or seal_margin < 1:
            raise ValueError("estimator windows must be positive")
        self.window_groups = window_groups
        self.seal_margin = seal_margin
        self.window_sequences = window_sequences
        self._lock = threading.Lock()
        self._open_groups: "OrderedDict[int, Tuple[int, Set[int]]]" = OrderedDict()
        self._sealed: Deque[Tuple[int, int]] = deque(maxlen=window_groups)
        self._sequences: Deque[int] = deque(maxlen=window_sequences)
        self._sequence_set: Set[int] = set()
        self.packets_observed = 0
        self.fec_packets = 0
        self.media_packets = 0
        self.unparsed_packets = 0
        self.groups_sealed = 0

    # -- ingest ----------------------------------------------------------------

    def observe(self, payload: bytes) -> None:
        """Classify and account one delivered payload."""
        with self._lock:
            self.packets_observed += 1
            try:
                packet = FecPacket.unpack(payload)
            except FecPacketError:
                packet = None
            if packet is not None and not packet.is_uncoded:
                self.fec_packets += 1
                self._observe_group(packet)
                return
            media_payload = packet.payload if packet is not None else payload
            try:
                media = MediaPacket.unpack(media_payload)
            except MediaPacketError:
                self.unparsed_packets += 1
                return
            self.media_packets += 1
            self._observe_sequence(media.sequence)

    def attach(self, receiver) -> None:
        """Chain :meth:`observe` onto a receiver's ``on_receive`` hook."""
        previous = receiver.on_receive

        def _chained(payload: bytes) -> None:
            self.observe(payload)
            if previous is not None:
                previous(payload)

        receiver.on_receive = _chained

    def _observe_group(self, packet: FecPacket) -> None:
        entry = self._open_groups.get(packet.group_id)
        if entry is None:
            self._open_groups[packet.group_id] = (packet.n, {packet.index})
        else:
            entry[1].add(packet.index)
        newest = max(self._open_groups)
        stale = [gid for gid in self._open_groups if gid + self.seal_margin <= newest]
        for gid in sorted(stale):
            n, indices = self._open_groups.pop(gid)
            self._sealed.append((len(indices), n))
            self.groups_sealed += 1

    def _observe_sequence(self, sequence: int) -> None:
        if sequence in self._sequence_set:
            return
        if len(self._sequences) == self._sequences.maxlen:
            self._sequence_set.discard(self._sequences[0])
        self._sequences.append(sequence)
        self._sequence_set.add(sequence)

    # -- estimates -------------------------------------------------------------

    def fec_loss_rate(self) -> Optional[float]:
        """Loss over the sealed-group window, or None before any group seals."""
        with self._lock:
            if not self._sealed:
                return None
            received = sum(got for got, _ in self._sealed)
            expected = sum(n for _, n in self._sealed)
        if expected <= 0:
            return None
        return max(0.0, 1.0 - received / expected)

    def sequence_loss_rate(self) -> Optional[float]:
        """Loss over the media-sequence window, or None below two packets."""
        with self._lock:
            if len(self._sequences) < 2:
                return None
            span = max(self._sequences) - min(self._sequences) + 1
            received = len(self._sequence_set)
        if span <= 0:
            return None
        return max(0.0, 1.0 - received / span)

    def loss_rate(self) -> float:
        """The best available estimate (FEC-based preferred), default 0."""
        fec = self.fec_loss_rate()
        if fec is not None:
            return fec
        sequence = self.sequence_loss_rate()
        return sequence if sequence is not None else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Counters and current estimates, for dashboards and tests."""
        with self._lock:
            counters = {
                "packets_observed": self.packets_observed,
                "fec_packets": self.fec_packets,
                "media_packets": self.media_packets,
                "unparsed_packets": self.unparsed_packets,
                "groups_sealed": self.groups_sealed,
            }
        counters["fec_loss_rate"] = self.fec_loss_rate() or 0.0
        counters["sequence_loss_rate"] = self.sequence_loss_rate() or 0.0
        counters["loss_rate"] = self.loss_rate()
        return counters


class MeasuredLossObserver(ObserverRaplet):
    """Publish measured loss as standard ``EVENT_LOSS_RATE`` events.

    The raplet protocol and event payload match
    :class:`~repro.rapidware.observers.LossRateObserver`, so the existing
    :class:`~repro.rapidware.responders.FecResponder` consumes measured
    loss without modification.  Events carry ``measured: True`` so logs
    can distinguish the two planes.
    """

    def __init__(
        self,
        estimator: LossEstimator,
        bus: EventBus,
        receiver_name: str = "",
        degraded_threshold: float = 0.01,
        critical_threshold: float = 0.10,
        min_sample_packets: int = 20,
        smoothing: float = 0.5,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"measured-loss-observer:{receiver_name}", bus)
        if not 0.0 <= degraded_threshold <= critical_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= degraded <= critical <= 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.estimator = estimator
        self.receiver_name = receiver_name
        self.degraded_threshold = degraded_threshold
        self.critical_threshold = critical_threshold
        self.min_sample_packets = min_sample_packets
        self.smoothing = smoothing
        self._last_observed = 0
        self.last_loss_rate = 0.0
        self.raw_loss_rate = 0.0

    def measure(self, now_s: float) -> List[Event]:
        observed = self.estimator.packets_observed
        delta = observed - self._last_observed
        if delta < self.min_sample_packets:
            return []
        self._last_observed = observed
        window_loss = self.estimator.loss_rate()
        self.raw_loss_rate = window_loss
        keep = 1.0 - self.smoothing
        loss_rate = self.smoothing * window_loss + keep * self.last_loss_rate
        self.last_loss_rate = loss_rate

        if loss_rate >= self.critical_threshold:
            severity = SEVERITY_CRITICAL
        elif loss_rate >= self.degraded_threshold:
            severity = SEVERITY_DEGRADED
        else:
            severity = SEVERITY_INFO
        event = Event(
            event_type=EVENT_LOSS_RATE,
            source=self.name,
            severity=severity,
            time_s=now_s,
            data={
                "receiver": self.receiver_name,
                "loss_rate": loss_rate,
                "window_packets": delta,
                "measured": True,
            },
        )
        return [event]
