"""Observability: metrics, event log, exporter, measured loss, trace replay.

The fleet-facing surface of the proxy (ROADMAP open item 5).  Three parts
are dependency-free and imported eagerly — the process-wide
:class:`MetricsRegistry` (:mod:`repro.obs.metrics`), the structured JSONL
:class:`EventLog` (:mod:`repro.obs.events`), and the Prometheus-text
exporter (:mod:`repro.obs.exporter`).  The measured-loss plane
(:mod:`repro.obs.loss`) and trace-replay harness (:mod:`repro.obs.replay`)
sit *above* the core and rapidware layers, so they load lazily (PEP 562) —
``repro.core`` imports this package for metrics/events without a cycle.

Environment:

* ``REPRO_METRICS_ADDR=host:port`` — serve ``/metrics`` + ``/healthz``
  (port 0 binds ephemerally); started by the first ``Proxy``.
* ``REPRO_EVENT_LOG=path`` — tee events to a JSONL file (``-`` = stderr).
"""

from .events import (
    EVENT_CHAOS_FAULT,
    EVENT_FEC_POLICY_CHANGE,
    EVENT_FILTER_BYPASS,
    EVENT_FILTER_RESTART,
    EVENT_LOG_ENV_VAR,
    EVENT_SPLICE_INSERT,
    EVENT_SPLICE_REMOVE,
    EVENT_STREAM_ERROR,
    EVENT_STREAM_STALL,
    EVENT_STREAM_START,
    EVENT_STREAM_STOP,
    EVENT_TRANSPORT_ERROR,
    EVENT_WORKER_UNRESPONSIVE,
    EventLog,
    configure_event_log,
    get_event_log,
    new_correlation_id,
)
from .exporter import (
    METRICS_ADDR_ENV_VAR,
    MetricsServer,
    default_server,
    ensure_default_server,
    health_status,
    parse_metrics_addr,
    register_health_provider,
    render,
    shutdown_default_server,
    unregister_health_provider,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
    default_registry,
    register_channel,
    register_engine,
    register_proxy,
)

#: Lazily loaded symbols (they import core/rapidware, which import us).
_LAZY = {
    "LossEstimator": "loss",
    "MeasuredLossObserver": "loss",
    "LossSchedule": "replay",
    "ReplayStepRecord": "replay",
    "TraceReplayResult": "replay",
    "TraceReplaySession": "replay",
    "replay_schedule": "replay",
    "replay_trace": "replay",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "EVENT_CHAOS_FAULT",
    "EVENT_FEC_POLICY_CHANGE",
    "EVENT_FILTER_BYPASS",
    "EVENT_FILTER_RESTART",
    "EVENT_LOG_ENV_VAR",
    "EVENT_SPLICE_INSERT",
    "EVENT_SPLICE_REMOVE",
    "EVENT_STREAM_ERROR",
    "EVENT_STREAM_STALL",
    "EVENT_STREAM_START",
    "EVENT_STREAM_STOP",
    "EVENT_TRANSPORT_ERROR",
    "EVENT_WORKER_UNRESPONSIVE",
    "EventLog",
    "configure_event_log",
    "get_event_log",
    "new_correlation_id",
    "METRICS_ADDR_ENV_VAR",
    "MetricsServer",
    "default_server",
    "ensure_default_server",
    "health_status",
    "parse_metrics_addr",
    "register_health_provider",
    "render",
    "shutdown_default_server",
    "unregister_health_provider",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsError",
    "MetricsRegistry",
    "default_registry",
    "register_channel",
    "register_engine",
    "register_proxy",
    "LossEstimator",
    "MeasuredLossObserver",
    "LossSchedule",
    "ReplayStepRecord",
    "TraceReplayResult",
    "TraceReplaySession",
    "replay_schedule",
    "replay_trace",
]
