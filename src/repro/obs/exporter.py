"""Prometheus text-format exporter over a stdlib HTTP server thread.

``render`` turns a :class:`~repro.obs.metrics.MetricsRegistry` into
exposition-format 0.0.4 text; :class:`MetricsServer` serves it on
``/metrics`` (plus a ``/healthz`` JSON liveness probe) from a daemon
``ThreadingHTTPServer``.  Activation follows the house env-var idiom:
``REPRO_METRICS_ADDR=host:port`` (port ``0`` binds an ephemeral port) and
:func:`ensure_default_server` — called from ``Proxy.__init__`` — starts the
process-wide server at most once.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .metrics import MetricFamily, MetricsRegistry, default_registry

METRICS_ADDR_ENV_VAR = "REPRO_METRICS_ADDR"
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Named liveness checks evaluated per ``/healthz`` request.  A provider is
#: a zero-argument callable returning a JSON-safe dict; ``healthy: false``
#: in any result degrades the overall status.  Components with real health
#: state (the cluster's worker heartbeats) register here; a process with no
#: providers reports plain ``{"status": "ok"}`` exactly as before.
_health_providers: dict = {}
_health_lock = threading.Lock()


def register_health_provider(name: str, provider) -> None:
    """Add (or replace) one named ``/healthz`` check."""
    with _health_lock:
        _health_providers[str(name)] = provider


def unregister_health_provider(name: str) -> None:
    """Remove a named check (missing is a no-op)."""
    with _health_lock:
        _health_providers.pop(str(name), None)


def health_status() -> dict:
    """The ``/healthz`` body: overall status plus every provider's result.

    Always answerable — a provider that raises is reported as an unhealthy
    check rather than failing the probe — and always HTTP 200; degradation
    is in the body (``status: "degraded"``), matching the convention that
    the probe reports on the process, not with its own availability.
    """
    with _health_lock:
        providers = dict(_health_providers)
    checks = {}
    status = "ok"
    for name, provider in sorted(providers.items()):
        try:
            result = provider()
        except Exception as exc:  # noqa: BLE001 - probe must not crash
            result = {"healthy": False, "error": str(exc)}
        checks[name] = result
        if isinstance(result, dict) and result.get("healthy") is False:
            status = "degraded"
    body = {"status": status}
    if checks:
        body["checks"] = checks
    return body


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_family(family: MetricFamily) -> str:
    lines = []
    if family.help_text:
        lines.append(f"# HELP {family.name} {_escape_help(family.help_text)}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for pairs, value in family.samples:
        suffix = ""
        label_pairs = []
        for key, val in pairs:
            if key == "__suffix__":
                suffix = val
            else:
                label_pairs.append((key, val))
        name = family.name + suffix
        if label_pairs:
            rendered = ",".join(
                f'{key}="{_escape_label_value(val)}"' for key, val in label_pairs
            )
            lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
        else:
            lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines)


def render(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry's full scrape, as exposition-format text."""
    registry = registry if registry is not None else default_registry()
    blocks = [_render_family(family) for family in registry.collect()]
    return "\n".join(blocks) + "\n" if blocks else ""


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            try:
                body = render(self.server.registry).encode("utf-8")
            except Exception as exc:  # noqa: BLE001 - report, don't crash server
                self.send_error(500, explain=str(exc))
                return
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/healthz":
            body = json.dumps(health_status(), sort_keys=True).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404)

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes are frequent and boring; keep them off stderr."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    registry: MetricsRegistry


class MetricsServer:
    """Serve ``/metrics`` and ``/healthz`` from a daemon thread."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._server = _Server((host, port), _Handler)
        self._server.registry = registry if registry is not None else default_registry()
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved if ephemeral)."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()


def parse_metrics_addr(addr: str) -> Tuple[str, int]:
    """``"host:port"`` / ``":port"`` / ``"port"`` -> ``(host, port)``."""
    addr = addr.strip()
    if ":" in addr:
        host, _, port_text = addr.rpartition(":")
        host = host or "127.0.0.1"
    else:
        host, port_text = "127.0.0.1", addr
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid {METRICS_ADDR_ENV_VAR} value {addr!r}: expected host:port"
        ) from None
    return host, port


_default_server: Optional[MetricsServer] = None
_default_lock = threading.Lock()


def ensure_default_server() -> Optional[MetricsServer]:
    """Start the process-wide server if ``REPRO_METRICS_ADDR`` asks for one.

    Idempotent and cheap when the variable is unset; called from
    ``Proxy.__init__`` so any process that hosts a proxy exports metrics
    without code changes.
    """
    global _default_server
    addr = os.environ.get(METRICS_ADDR_ENV_VAR, "").strip()
    if not addr:
        return None
    with _default_lock:
        if _default_server is None:
            host, port = parse_metrics_addr(addr)
            _default_server = MetricsServer(host, port).start()
        return _default_server


def default_server() -> Optional[MetricsServer]:
    """The process-wide server, if one has been started."""
    with _default_lock:
        return _default_server


def shutdown_default_server() -> None:
    """Stop and forget the process-wide server (test hygiene)."""
    global _default_server
    with _default_lock:
        if _default_server is not None:
            _default_server.stop()
            _default_server = None
