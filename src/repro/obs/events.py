"""Structured JSONL event log with per-stream correlation ids.

Control-plane state transitions (stream start/stop, filter splice, FEC
policy change, transport error) are appended as one JSON object per line.
Every stream gets a correlation id at start; every event carries it, so a
fleet-wide log can be grepped back into per-stream timelines.

Selection follows the house env-var idiom: ``REPRO_EVENT_LOG`` names a
file to append to (``-`` for stderr); unset means in-memory ring only.

Record schema (all records)::

    {"ts": <float unix seconds>, "event": "<type>",
     "stream": "<stream name>", "cid": "<correlation id>", ...fields}

``stream``/``cid`` are empty strings for process-scoped events (e.g.
transport errors on a shared channel).
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
from collections import deque
from typing import Dict, List, Optional, TextIO

EVENT_LOG_ENV_VAR = "REPRO_EVENT_LOG"

#: Event types emitted by the core control plane and rapidware responders.
EVENT_STREAM_START = "stream-start"
EVENT_STREAM_STOP = "stream-stop"
EVENT_SPLICE_INSERT = "splice-insert"
EVENT_SPLICE_REMOVE = "splice-remove"
EVENT_FEC_POLICY_CHANGE = "fec-policy-change"
EVENT_TRANSPORT_ERROR = "transport-error"
#: Cluster worker lifecycle (emitted by the parent's control plane; the
#: same correlation id spans a worker slot's start/exit/restart events).
EVENT_WORKER_START = "worker-start"
EVENT_WORKER_EXIT = "worker-exit"
EVENT_WORKER_RESTART = "worker-restart"
#: A worker that is alive but not answering RPCs within the deadline; the
#: parent terminates it and the normal exit/restart pair follows, so an
#: incident timeline reads unresponsive → exit → restart under one cid.
EVENT_WORKER_UNRESPONSIVE = "worker-unresponsive"
#: Stream supervision (see :mod:`repro.core.supervision`): recovery actions
#: share the stream's correlation id with its start/splice/stop events.
EVENT_STREAM_ERROR = "stream-error"
EVENT_STREAM_STALL = "stream-stall"
EVENT_FILTER_RESTART = "filter-restart"
EVENT_FILTER_BYPASS = "filter-bypass"
#: One injected fault from the chaos plane (:mod:`repro.chaos`); process
#: scoped (empty stream/cid) but deterministic in order for a fixed seed.
EVENT_CHAOS_FAULT = "chaos-fault"

_cid_counter = itertools.count(1)


def new_correlation_id(prefix: str = "s") -> str:
    """A process-unique correlation id (``s-1``, ``s-2``, ...)."""
    return f"{prefix}-{next(_cid_counter)}"


class EventLog:
    """A bounded in-memory ring of events, optionally teed to a JSONL sink."""

    def __init__(
        self,
        capacity: int = 1024,
        stream: Optional[TextIO] = None,
        path: Optional[str] = None,
    ) -> None:
        if path is not None and stream is not None:
            raise ValueError("pass either stream= or path=, not both")
        self._lock = threading.Lock()
        self._ring: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._owns_stream = path is not None
        self._stream = open(path, "a", encoding="utf-8") if path else stream
        #: Records evicted from the full ring (the JSONL tee, when one is
        #: configured, still saw them).  Surfaced by the default metrics
        #: registry as ``repro_events_dropped_total`` so a chaos run that
        #: outpaces its ring cannot quietly lose its own evidence.
        self.dropped_total = 0

    def emit(
        self, event: str, stream: str = "", cid: str = "", **fields: object
    ) -> Dict[str, object]:
        """Append one event record; returns the record."""
        record: Dict[str, object] = {
            "ts": time.time(),
            "event": str(event),
            "stream": str(stream),
            "cid": str(cid),
        }
        for key, value in fields.items():
            record[str(key)] = value
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._ring.maxlen is not None and len(self._ring) == self._ring.maxlen:
                self.dropped_total += 1
            self._ring.append(record)
            if self._stream is not None:
                try:
                    self._stream.write(line + "\n")
                    self._stream.flush()
                except (OSError, ValueError):
                    # A dead sink (closed file, full disk) silences the tee
                    # but never the control plane.
                    self._stream = None
        return record

    def records(
        self, event: Optional[str] = None, cid: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """A snapshot of buffered records, optionally filtered."""
        with self._lock:
            records = list(self._ring)
        if event is not None:
            records = [r for r in records if r["event"] == event]
        if cid is not None:
            records = [r for r in records if r["cid"] == cid]
        return records

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        with self._lock:
            if self._stream is not None and self._owns_stream:
                try:
                    self._stream.close()
                except OSError:
                    pass
            self._stream = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


_default_log: Optional[EventLog] = None
_default_lock = threading.Lock()


def _build_default() -> EventLog:
    target = os.environ.get(EVENT_LOG_ENV_VAR, "").strip()
    if not target:
        return EventLog()
    if target == "-":
        return EventLog(stream=sys.stderr)
    return EventLog(path=target)


def get_event_log() -> EventLog:
    """The process-wide event log (built from ``REPRO_EVENT_LOG`` once)."""
    global _default_log
    with _default_lock:
        if _default_log is None:
            _default_log = _build_default()
        return _default_log


def configure_event_log(log: Optional[EventLog]) -> EventLog:
    """Replace the process-wide log (pass ``None`` to rebuild from env)."""
    global _default_log
    with _default_lock:
        if _default_log is not None:
            _default_log.close()
        _default_log = log if log is not None else _build_default()
        return _default_log
