"""Deterministic fault injection over the proxy's pluggable substrates.

The chaos plane composes with, rather than replaces, the existing
registries: a :class:`FaultPlan` (what to break, from which seed) plus a
:class:`ChaosTransport` wrapper that decorates any registered transport —
selected as ``chaos:<inner>`` through the transport registry, or applied
implicitly to every :func:`repro.transport.get_transport` resolution when
``REPRO_CHAOS`` is set.  Filter-level faults (crash at chunk N, per-chunk
latency) live in :class:`repro.filters.FaultInjectionFilter`, and stream
recovery from those faults in :mod:`repro.core.supervision`.
"""

from .plan import CHAOS_ENV_VAR, FaultPlan, FaultPlanError
from .transport import ChaosChannel, ChaosTransport, DatagramFaultInjector

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosChannel",
    "ChaosTransport",
    "DatagramFaultInjector",
    "FaultPlan",
    "FaultPlanError",
]
