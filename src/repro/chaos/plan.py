"""FaultPlan — a declarative, seeded description of faults to inject.

One plan describes *what* goes wrong; the chaos transport wrapper
(:mod:`repro.chaos.transport`) and the fault-injection filter
(:mod:`repro.filters.chaos`) decide *where* it is applied.  Everything is
deterministic: probabilistic faults draw from a :class:`random.Random`
seeded from ``plan.seed`` mixed with the channel name, and offset-based
faults fire on exact datagram indices — so the acceptance criterion holds
by construction: two runs of the same plan on the same input produce the
same faults in the same order, bit for bit.

Selection follows the house env-var idiom: ``REPRO_CHAOS`` carries the
plan.  Two syntaxes are accepted::

    REPRO_CHAOS='{"seed": 42, "drop_p": 0.05}'      # JSON
    REPRO_CHAOS='seed=42,drop=0.05,dup_at=3;9'      # compact k=v pairs

Compact keys: ``seed``, ``drop``/``dup``/``reorder``/``corrupt``
(probabilities), ``drop_at``/``dup_at``/``reorder_at``/``corrupt_at``
(``;``-separated datagram offsets), ``delay`` (seconds added to every
send), ``stall_at``/``stall`` (one long stall at a given offset),
``crash_at`` (filter hook: raise at chunk N) and ``slow`` (filter hook:
per-chunk latency in seconds).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

#: Environment variable carrying the process-wide fault plan.  Setting it
#: makes :func:`repro.transport.base.get_transport` wrap every resolved
#: transport in a :class:`~repro.chaos.transport.ChaosTransport`, so an
#: unchanged test suite runs under faults.
CHAOS_ENV_VAR = "REPRO_CHAOS"


class FaultPlanError(ValueError):
    """Raised for malformed ``REPRO_CHAOS`` values or plan payloads."""


def _offsets(value: Any) -> Tuple[int, ...]:
    """Normalise an offsets field (list, tuple, or ``;``-joined string)."""
    if value is None:
        return ()
    if isinstance(value, str):
        value = [part for part in value.split(";") if part.strip()]
    try:
        return tuple(sorted({int(v) for v in value}))
    except (TypeError, ValueError) as exc:
        raise FaultPlanError(f"invalid offsets {value!r}: {exc}") from None


@dataclass(frozen=True)
class FaultPlan:
    """What to break, where, and from which seed.

    Datagram faults (applied by :class:`~repro.chaos.transport.ChaosChannel`
    on the send side, per payload, counted from 0 per channel):

    * ``drop_p`` / ``drop_offsets`` — the datagram is never sent;
    * ``duplicate_p`` / ``duplicate_offsets`` — sent twice back to back;
    * ``reorder_p`` / ``reorder_offsets`` — held back one slot and emitted
      after the next datagram (adjacent swap);
    * ``corrupt_p`` / ``corrupt_offsets`` — one payload byte is XOR-flipped;
    * ``delay_s`` — sleep before every send (link latency);
    * ``stall_offset`` / ``stall_s`` — one long sleep at a given offset
      (a link freeze, long enough to trip a pump-stall watchdog).

    Filter hooks (honoured by
    :class:`~repro.filters.chaos.FaultInjectionFilter`):

    * ``crash_at_chunk`` — raise on that input chunk;
    * ``filter_delay_s`` — sleep per chunk (a slow filter).
    """

    seed: int = 0
    drop_p: float = 0.0
    duplicate_p: float = 0.0
    reorder_p: float = 0.0
    corrupt_p: float = 0.0
    drop_offsets: Tuple[int, ...] = field(default_factory=tuple)
    duplicate_offsets: Tuple[int, ...] = field(default_factory=tuple)
    reorder_offsets: Tuple[int, ...] = field(default_factory=tuple)
    corrupt_offsets: Tuple[int, ...] = field(default_factory=tuple)
    delay_s: float = 0.0
    stall_offset: Optional[int] = None
    stall_s: float = 0.0
    crash_at_chunk: Optional[int] = None
    filter_delay_s: float = 0.0

    def __post_init__(self) -> None:
        for prob_field in ("drop_p", "duplicate_p", "reorder_p", "corrupt_p"):
            value = getattr(self, prob_field)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(
                    f"{prob_field}={value!r} outside [0, 1]")
        # Normalise offset collections passed as lists/sets/strings.
        for offsets_field in ("drop_offsets", "duplicate_offsets",
                              "reorder_offsets", "corrupt_offsets"):
            object.__setattr__(self, offsets_field,
                               _offsets(getattr(self, offsets_field)))

    # -- selection ------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when the plan injects any datagram fault at all.

        An inactive plan makes the chaos wrapper a strict passthrough —
        ``chaos:<inner>`` with no ``REPRO_CHAOS`` set is byte-transparent.
        """
        return bool(
            self.drop_p or self.duplicate_p or self.reorder_p
            or self.corrupt_p or self.drop_offsets or self.duplicate_offsets
            or self.reorder_offsets or self.corrupt_offsets or self.delay_s
            or (self.stall_offset is not None and self.stall_s > 0))

    # -- parsing --------------------------------------------------------------

    _COMPACT_KEYS = {
        "seed": ("seed", int),
        "drop": ("drop_p", float),
        "dup": ("duplicate_p", float),
        "reorder": ("reorder_p", float),
        "corrupt": ("corrupt_p", float),
        "drop_at": ("drop_offsets", _offsets),
        "dup_at": ("duplicate_offsets", _offsets),
        "reorder_at": ("reorder_offsets", _offsets),
        "corrupt_at": ("corrupt_offsets", _offsets),
        "delay": ("delay_s", float),
        "stall_at": ("stall_offset", int),
        "stall": ("stall_s", float),
        "crash_at": ("crash_at_chunk", int),
        "slow": ("filter_delay_s", float),
    }

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from a ``REPRO_CHAOS``-style string (JSON or k=v)."""
        text = (text or "").strip()
        if not text:
            return cls()
        if text.startswith("{"):
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as exc:
                raise FaultPlanError(
                    f"invalid chaos plan JSON: {exc}") from exc
            return cls.from_dict(payload)
        values: Dict[str, Any] = {}
        for pair in text.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, raw = pair.partition("=")
            key = key.strip()
            if not sep or key not in cls._COMPACT_KEYS:
                known = ", ".join(sorted(cls._COMPACT_KEYS))
                raise FaultPlanError(
                    f"bad chaos plan entry {pair!r} (known keys: {known})")
            field_name, convert = cls._COMPACT_KEYS[key]
            try:
                values[field_name] = convert(raw.strip())
            except (TypeError, ValueError) as exc:
                raise FaultPlanError(
                    f"bad chaos plan value {pair!r}: {exc}") from None
        return cls(**values)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> "FaultPlan":
        """The plan described by ``REPRO_CHAOS`` (empty/no-op when unset)."""
        environ = os.environ if environ is None else environ
        return cls.parse(environ.get(CHAOS_ENV_VAR, ""))

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict (defaults omitted, so empty plans stay empty)."""
        payload: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                if value:
                    payload[spec.name] = list(value)
            elif spec.name in ("stall_offset", "crash_at_chunk"):
                # Optional offsets: 0 is a real value, only None is "unset".
                if value is not None:
                    payload[spec.name] = value
            elif value:
                payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown chaos plan fields {sorted(unknown)!r}")
        return cls(**payload)

    def describe(self) -> str:
        """A short human-readable summary (used in events and logs)."""
        parts = [f"{key}={value}" for key, value in sorted(
            self.to_dict().items())]
        return ",".join(parts) if parts else "no-op"
