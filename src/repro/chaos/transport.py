"""The ``chaos:<inner>`` transport — deterministic faults over any transport.

:class:`ChaosTransport` decorates a registered transport; every datagram
channel it opens is wrapped in a :class:`ChaosChannel` that applies one
:class:`~repro.chaos.plan.FaultPlan` on the *send* side.  Injecting at the
sender means the same wrapper breaks inproc, loopback and UDP identically
— the fault happens before the substrate, so the whole equivalence suite
runs under faults unchanged.

Determinism: each channel owns a :class:`random.Random` seeded from
``plan.seed`` mixed with the channel name, and every send consumes a fixed
number of draws (one per probabilistic fault kind, triggered or not), so a
given (plan, channel, payload sequence) produces the same fault sequence
on every run — the bit-reproducibility acceptance criterion.

Every injected fault is emitted as a ``chaos-fault`` event and counted in
``repro_chaos_faults_total{action=...}``; the stream service
(``listen``/``connect``) and unicast ``send_to`` (FEC repair traffic)
pass through untouched so control planes stay reliable while the data
plane burns.
"""

from __future__ import annotations

import threading
import time
import zlib
from random import Random
from typing import Dict, List, Optional, Tuple

from ..obs.events import EVENT_CHAOS_FAULT, get_event_log
from ..obs.metrics import default_registry
from ..transport.base import DatagramChannel, DatagramReceiver, Transport
from .plan import FaultPlan


def _fault_counter():
    return default_registry().counter(
        "repro_chaos_faults_total",
        "Datagram faults injected by the chaos transport",
        label_names=("action",))


class DatagramFaultInjector:
    """Per-channel fault decisions, deterministic in (plan, key, index).

    Not thread-safe by itself; :class:`ChaosChannel` serialises calls.
    """

    def __init__(self, plan: FaultPlan, key: str) -> None:
        self.plan = plan
        # Mix the channel name into the seed so two channels under one plan
        # draw independent (but individually reproducible) fault sequences.
        self._rng = Random((plan.seed & 0xFFFFFFFF) << 32
                           ^ zlib.crc32(key.encode("utf-8")))
        self._index = 0
        self._held: Optional[bytes] = None

    @property
    def index(self) -> int:
        """Datagrams seen so far (the offset of the *next* send)."""
        return self._index

    def _triggered(self, draw: float, probability: float,
                   offsets: Tuple[int, ...], offset: int) -> bool:
        return offset in offsets or (probability > 0.0 and draw < probability)

    def process(self, payload: bytes):
        """Decide one datagram's fate.

        Returns ``(sends, faults, delay_s)``: the payloads to hand to the
        inner channel *in order*, the ``(action, offset)`` faults applied,
        and seconds to sleep before sending (latency/stall injection).
        """
        plan = self.plan
        offset = self._index
        self._index += 1
        # Fixed draw order, consumed whether or not each fault triggers:
        # changing one probability never shifts another fault's sequence.
        draws = (self._rng.random(), self._rng.random(),
                 self._rng.random(), self._rng.random())
        drop = self._triggered(draws[0], plan.drop_p,
                               plan.drop_offsets, offset)
        duplicate = self._triggered(draws[1], plan.duplicate_p,
                                    plan.duplicate_offsets, offset)
        reorder = self._triggered(draws[2], plan.reorder_p,
                                  plan.reorder_offsets, offset)
        corrupt = self._triggered(draws[3], plan.corrupt_p,
                                  plan.corrupt_offsets, offset)

        delay_s = plan.delay_s
        faults: List[Tuple[str, int]] = []
        if plan.stall_offset == offset and plan.stall_s > 0:
            faults.append(("stall", offset))
            delay_s += plan.stall_s

        # The previously held datagram (if any) goes out *after* whatever
        # this call emits — that completes the adjacent swap.
        flush, self._held = self._held, None
        sends: List[bytes] = []
        if drop:
            faults.append(("drop", offset))
        else:
            data = payload
            if corrupt and len(payload):
                data = self._corrupt(payload, offset)
                faults.append(("corrupt", offset))
            if reorder:
                self._held = data
                faults.append(("reorder", offset))
            else:
                sends.append(data)
            if duplicate:
                sends.append(data)
                faults.append(("duplicate", offset))
        if flush is not None:
            sends.append(flush)
        return sends, faults, delay_s

    def flush(self) -> Optional[bytes]:
        """Release a datagram still held for reordering (on channel close)."""
        held, self._held = self._held, None
        return held

    @staticmethod
    def _corrupt(payload: bytes, offset: int) -> bytes:
        """Flip one byte, at a position derived from the datagram offset."""
        mutated = bytearray(payload)
        mutated[offset % len(mutated)] ^= 0xFF
        return bytes(mutated)


class ChaosChannel(DatagramChannel):
    """A datagram channel that injects the plan's faults on send.

    Membership, delivery and unicast go straight to the wrapped channel;
    only the multicast send path (``send``/``send_many``) passes through
    the injector.  Faults are decided under one lock so concurrent senders
    see a single, well-ordered fault sequence.
    """

    def __init__(self, inner: DatagramChannel, plan: FaultPlan) -> None:
        super().__init__(inner.name)
        self.inner = inner
        self.plan = plan
        self._injector = DatagramFaultInjector(plan, inner.name)
        self._send_lock = threading.Lock()
        self._counter = _fault_counter()

    # -- membership (delegated) ------------------------------------------------

    def join(self, member: str, **options) -> DatagramReceiver:
        return self.inner.join(member, **options)

    def leave(self, member: str) -> None:
        self.inner.leave(member)

    def members(self) -> List[str]:
        return self.inner.members()

    def local_receivers(self) -> List[DatagramReceiver]:
        return self.inner.local_receivers()

    # -- send path -------------------------------------------------------------

    def _record_faults(self, faults) -> None:
        log = get_event_log()
        for action, offset in faults:
            self._counter.labels(action=action).inc()
            log.emit(EVENT_CHAOS_FAULT, channel=self.name, action=action,
                     offset=offset, plan=self.plan.describe())

    def send(self, data: bytes) -> int:
        with self._send_lock:
            sends, faults, delay_s = self._injector.process(data)
            self._record_faults(faults)
            if delay_s > 0:
                time.sleep(delay_s)
            targeted = 0
            for payload in sends:
                targeted = max(targeted, self.inner.send(payload))
                self._account(len(payload))
        # A dropped datagram still "targeted" the membership — callers use
        # the return value for fan-out accounting, not delivery receipts.
        return targeted if sends else len(self.members())

    def send_to(self, member: str, data: bytes) -> bool:
        # Unicast is the repair/control path (e.g. FEC retransmissions);
        # chaos applies to the broadcast data plane only.
        return self.inner.send_to(member, data)

    def send_many(self, payloads) -> int:
        # Per-payload faults: the vectored fast path re-splits here by
        # design — chaos runs measure behaviour, not throughput.
        delivered = 0
        for payload in payloads:
            if self.send(payload) > 0:
                delivered += 1
        return delivered

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        with self._send_lock:
            held = self._injector.flush()
            if held is not None:
                # Never lose the reorder-held datagram to a close racing
                # the swap; it simply arrives last.
                self.inner.send(held)
                self._account(len(held))
        self.inner.close()
        super().close()

    def __getattr__(self, name: str):
        # Transport-specific extras (e.g. UDP's address accessors) pass
        # through so the wrapper stays drop-in for any inner channel.
        return getattr(self.inner, name)


class ChaosTransport(Transport):
    """Wrap any registered transport with fault injection.

    Selected as ``chaos:<inner>`` through the transport registry, or
    implicitly for any transport when ``REPRO_CHAOS`` is set (see
    :func:`repro.transport.base.get_transport`).  The plan defaults to
    :meth:`FaultPlan.from_env`.
    """

    def __init__(self, inner: Transport,
                 plan: Optional[FaultPlan] = None) -> None:
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan.from_env()
        self.name = f"chaos:{inner.name}"
        self._channels: Dict[str, ChaosChannel] = {}
        self._lock = threading.Lock()

    def open_channel(self, name: str = "default", **options) -> DatagramChannel:
        inner_channel = self.inner.open_channel(name, **options)
        if not self.plan.active:
            # An empty plan is a strict passthrough — no wrapper object,
            # no per-send overhead, byte-identical behaviour.
            return inner_channel
        with self._lock:
            channel = self._channels.get(name)
            if channel is None or channel.inner is not inner_channel:
                channel = ChaosChannel(inner_channel, self.plan)
                self._channels[name] = channel
            return channel

    def listen(self, address=None):
        return self.inner.listen(address)

    def connect(self, address):
        return self.inner.connect(address)

    def close(self) -> None:
        with self._lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for channel in channels:
            try:
                channel.close()
            except Exception:  # noqa: BLE001 - best effort teardown
                pass
        self.inner.close()
