"""Stream supervision: error policies, restarts, bypass, stall watchdog.

The ControlThread's composition protocol already knows how to splice a
*dead* filter out of a live chain; this module decides **when** and **what
next**.  An :class:`ErrorPolicy` names the strategy per stream:

* ``fail`` — today's behaviour: a crashed filter closes its downstream
  (EOF propagates, the stream ends), plus a structured ``stream-error``
  event so the failure is observable.
* ``restart-filter`` — the crashed filter is spliced out and an
  equivalent replacement (same creation spec) is spliced back in, with a
  bounded retry budget and exponential backoff.  Chunks buffered inside
  the dead filter are lost (exactly what the paper's dead-element splice
  loses); everything upstream and downstream keeps flowing.
* ``bypass`` — the crashed filter is spliced out and *not* replaced: the
  stream degrades (no FEC, no compression, ...) but keeps running.

A :class:`StreamSupervisor` is a small per-stream daemon thread that
watches the Filter Vector for crashed elements and (optionally) for
*stalled* ones — queued input but no counter movement for
``stall_timeout_s`` — and applies the policy.  Recovery never runs on the
data path: the watchdog polls cheap per-filter counters and takes the
composition lock only to splice.

Stall *recovery* (abandon + splice-around) assumes the wedged filter runs
on its own thread — i.e. the threaded engine.  Under a cooperative engine
a transform that blocks forever stalls the shared scheduler itself; the
watchdog still emits ``stream-stall`` so the condition is visible, but
routing around it cannot help and is not attempted.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional, Union

from ..obs.events import (
    EVENT_FILTER_BYPASS,
    EVENT_FILTER_RESTART,
    EVENT_STREAM_ERROR,
    EVENT_STREAM_STALL,
)
from ..streams import (
    BrokenStreamError,
    NotConnectedError,
    StreamClosedError,
)
from .errors import CompositionError, ProxyError, StreamSupervisionError
from .filter import Filter

#: Errors that mean "the chain was torn down around the filter", not "the
#: filter failed" — supervision must never try to recover from teardown.
_TEARDOWN_ERRORS = (StreamClosedError, BrokenStreamError, NotConnectedError)

VALID_MODES = ("fail", "restart-filter", "bypass")


@dataclass(frozen=True)
class ErrorPolicy:
    """What a stream does when one of its filters crashes or stalls.

    ``stall_timeout_s`` arms the pump-stall watchdog: a filter with queued
    input whose throughput counters do not move for that long is declared
    stalled (``stream-stall`` event) and, under a recoverable mode,
    abandoned and routed around like a crash.  ``None`` disables it.
    """

    mode: str = "fail"
    max_restarts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    stall_timeout_s: Optional[float] = None
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.mode not in VALID_MODES:
            raise ValueError(
                f"unknown error policy mode {self.mode!r}; "
                f"expected one of {', '.join(VALID_MODES)}")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    @property
    def recoverable(self) -> bool:
        """True when the policy routes around failures (vs. reporting them)."""
        return self.mode in ("restart-filter", "bypass")

    @classmethod
    def resolve(cls, value: Union["ErrorPolicy", str, Dict[str, Any], None],
                ) -> Optional["ErrorPolicy"]:
        """Normalise an ``error_policy=`` argument.

        ``None`` means unsupervised (no watcher thread at all — exactly the
        pre-supervision behaviour); a string names a mode with defaults; a
        dict is a full serialised policy (e.g. off a cluster StreamSpec).
        """
        if value is None or isinstance(value, ErrorPolicy):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise ValueError(
            f"error_policy must be an ErrorPolicy, mode name, dict, or None: "
            f"{value!r}")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe payload (round-trips through StreamSpec.to_dict)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ErrorPolicy":
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown error policy fields {sorted(unknown)!r}")
        return cls(**payload)


def _restart_counter():
    from ..obs.metrics import default_registry

    return default_registry().counter(
        "repro_stream_filter_restarts_total",
        "Filters restarted in place by stream supervision",
        label_names=("stream",))


class StreamSupervisor:
    """Watches one ControlThread's chain and applies its ErrorPolicy."""

    def __init__(self, control, policy: ErrorPolicy) -> None:
        self.control = control
        self.policy = policy
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Crashes already acted on, keyed by id(filter) — a filter object
        # is handled at most once (restart creates a *new* object).
        self._handled: Dict[int, bool] = {}
        # Restart budget per filter *name*: a replacement that crashes
        # again burns the same budget, so a deterministic crasher cannot
        # restart forever.
        self._restarts: Dict[str, int] = {}
        # Stall tracking: filter id -> (progress marker, first-seen time).
        self._progress: Dict[int, tuple] = {}

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "StreamSupervisor":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run,
                name=f"{self.control.name}-supervisor",
                daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        # Final report-only pass: a filter that crashed in the last poll
        # window (fast streams end in milliseconds) still gets its
        # stream-error on the record.  No recovery this late — the chain
        # is being dismantled.
        for filter_obj in self.control.filters:
            key = id(filter_obj)
            if key in self._handled:
                continue
            if (filter_obj.finished and filter_obj.error is not None
                    and not isinstance(filter_obj.error, _TEARDOWN_ERRORS)):
                self._handled[key] = True
                self._emit_stream_error(filter_obj, str(filter_obj.error))

    # ------------------------------------------------------------- main loop

    def _run(self) -> None:
        while not self._stop.wait(self.policy.poll_interval_s):
            if self.control._shutdown:
                return
            try:
                self._scan()
            except Exception:  # noqa: BLE001 - the watchdog must survive
                pass

    def _scan(self) -> None:
        for filter_obj in self.control.filters:
            key = id(filter_obj)
            if key in self._handled:
                continue
            if filter_obj.finished and filter_obj.error is not None:
                self._handled[key] = True
                if isinstance(filter_obj.error, _TEARDOWN_ERRORS):
                    continue  # the chain ended around it; nothing to recover
                self._handle_failure(filter_obj)
            elif self.policy.stall_timeout_s is not None:
                self._check_stall(filter_obj, key)

    # --------------------------------------------------------- stall watchdog

    def _check_stall(self, filter_obj: Filter, key: int) -> None:
        # Work is pending when input is queued — or when the filter took a
        # batch and is busy inside its transform (the threaded read loop
        # drains the DIS whole, so a wedged transform shows available()==0
        # but _busy True).  An idle filter with neither is just waiting.
        queued = filter_obj.dis.available()
        busy = getattr(filter_obj, "_busy", False)
        if filter_obj.finished or (queued == 0 and not busy):
            self._progress.pop(key, None)
            return
        stats = filter_obj.stats
        marker = (stats.chunks_in, stats.chunks_out,
                  stats.bytes_in, stats.bytes_out)
        previous = self._progress.get(key)
        now = time.monotonic()
        if previous is None or previous[0] != marker:
            self._progress[key] = (marker, now)
            return
        if now - previous[1] < self.policy.stall_timeout_s:
            return
        # Queued input, no counter movement for the whole window: stalled.
        self._handled[key] = True
        self._progress.pop(key, None)
        self.control._emit_event(
            EVENT_STREAM_STALL, filter=filter_obj.name,
            queued_bytes=queued,
            stall_timeout_s=self.policy.stall_timeout_s, policy=self.policy.mode)
        if not self.policy.recoverable or not self._threaded(filter_obj):
            # Visible but unrecoverable (fail mode, or a cooperative engine
            # where the scheduler itself is the wedged thread).
            return
        filter_obj.abandon(StreamSupervisionError(
            f"filter {filter_obj.name!r} stalled with {queued} queued bytes "
            f"for {self.policy.stall_timeout_s}s"))
        self._handle_failure(filter_obj)

    @staticmethod
    def _threaded(filter_obj: Filter) -> bool:
        """True when the filter runs on its own worker thread."""
        return not filter_obj.cooperative

    # ------------------------------------------------------------- recovery

    def _handle_failure(self, dead: Filter) -> None:
        error_text = str(dead.error) if dead.error else "unknown error"
        if self.policy.mode == "restart-filter":
            self._restart(dead, error_text)
        elif self.policy.mode == "bypass":
            self._bypass(dead, error_text)
        else:
            self._emit_stream_error(dead, error_text)

    def _emit_stream_error(self, dead: Filter, error_text: str,
                           **fields) -> None:
        self.control._emit_event(
            EVENT_STREAM_ERROR, filter=dead.name, type=dead.type_name,
            error=error_text, policy=self.policy.mode, **fields)

    def _splice_out(self, dead: Filter) -> int:
        """Remove the dead filter (the ControlThread's dead-element splice).

        ``stop_filter=False`` skips the engine's blocking join — the thread
        of an *abandoned* filter may still be wedged in its transform; once
        the chain is detached around it, its next write raises and it dies.
        Returns the position the filter held.
        """
        position = self.control.position_of(dead)
        self.control.remove(dead, stop_filter=False)
        try:
            self.control.engine.stop_element(dead, timeout=0.2)
        except Exception:  # noqa: BLE001 - cleanup of an already-dead element
            pass
        return position

    def _bypass(self, dead: Filter, error_text: str) -> None:
        try:
            position = self._splice_out(dead)
        except (CompositionError, ProxyError) as exc:
            self._emit_stream_error(dead, error_text, splice_error=str(exc))
            return
        self.control._emit_event(
            EVENT_FILTER_BYPASS, filter=dead.name, type=dead.type_name,
            position=position, error=error_text)

    def _restart(self, dead: Filter, error_text: str) -> None:
        attempt = self._restarts.get(dead.name, 0)
        if attempt >= self.policy.max_restarts:
            # Budget exhausted: degrade to *fail*, not to silent bypass —
            # report, then close the dead filter's output so EOF reaches
            # the sink and the stream terminates instead of hanging
            # (recoverable policies suppress the automatic error-path EOF).
            self._emit_stream_error(dead, error_text,
                                    restarts_exhausted=attempt)
            try:
                dead._close_output()
            except Exception:  # noqa: BLE001 - best effort EOF propagation
                pass
            return
        self._restarts[dead.name] = attempt + 1
        delay = min(self.policy.backoff_s * (self.policy.backoff_factor
                                             ** attempt),
                    self.policy.max_backoff_s)
        if delay > 0:
            self._stop.wait(delay)  # backoff, but wake early on shutdown
        try:
            replacement = self._build_replacement(dead)
            replacement.close_output_on_error = False
            position = self._splice_out(dead)
            self.control.add(replacement, position=position)
        except (CompositionError, ProxyError, TypeError) as exc:
            self._emit_stream_error(dead, error_text, restart_error=str(exc))
            try:
                dead._close_output()
            except Exception:  # noqa: BLE001
                pass
            return
        self.control._emit_event(
            EVENT_FILTER_RESTART, filter=dead.name, type=dead.type_name,
            position=position, attempt=attempt + 1,
            max_restarts=self.policy.max_restarts, error=error_text,
            backoff_s=round(delay, 4))
        _restart_counter().labels(stream=self.control.name).inc()

    @staticmethod
    def _build_replacement(dead: Filter) -> Filter:
        """An equivalent fresh instance of the crashed filter.

        Registry-built filters carry their :class:`FilterSpec` (stamped by
        ``FilterRegistry.create``) and are rebuilt from it; hand-constructed
        filters fall back to ``type(dead)(name=dead.name)``, which covers
        any filter whose constructor takes only the base kwargs.
        """
        spec = getattr(dead, "creation_spec", None)
        if spec is not None:
            from .registry import default_registry

            return default_registry().create(spec)
        return type(dead)(name=dead.name)
