"""The composable-proxy-filter core — the paper's primary contribution.

* :class:`~repro.core.filter.Filter` / :class:`~repro.core.filter.PacketFilter`
  — the components a proxy composes;
* :class:`~repro.core.endpoints.SourceEndPoint` /
  :class:`~repro.core.endpoints.SinkEndPoint` — chain anchors;
* :class:`~repro.core.control_thread.ControlThread` — dynamic insertion,
  removal and reordering of filters on a running stream;
* :class:`~repro.core.proxy.Proxy` — a node hosting several streams;
* :class:`~repro.core.control_server.ControlServer` /
  :class:`~repro.core.control_manager.ControlManager` — remote management
  and filter upload;
* :class:`~repro.core.registry.FilterRegistry` — instantiate filters by name
  and accept third-party filter uploads.
"""

from .boundary import (
    any_packet_boundary,
    frame_type_boundary,
    gop_boundary,
    i_frame_boundary,
    sequence_multiple_boundary,
)
from .commands import (
    ALL_COMMANDS,
    CommandHandler,
    decode_message,
    encode_message,
    error_response,
    ok_response,
)
from .control_manager import ControlManager, ProxyControlClient
from .control_server import ControlServer
from .control_thread import DEFAULT_OPERATION_TIMEOUT, ControlThread
from .endpoints import (
    CallableSink,
    CallableSource,
    CollectorSink,
    EndPoint,
    IterableSource,
    NullSink,
    SinkEndPoint,
    SocketSink,
    SocketSource,
    SourceEndPoint,
)
from .errors import (
    CompositionError,
    ControlProtocolError,
    FilterStateError,
    ProxyError,
    RegistryError,
    StreamSupervisionError,
)
from .filter import Filter, FilterContainer, PacketFilter
from .proxy import Proxy, null_proxy
from .registry import FilterRegistry, FilterSpec, default_registry
from .stats import ChainSnapshot, FilterStats
from .supervision import ErrorPolicy, StreamSupervisor

__all__ = [
    "Filter",
    "PacketFilter",
    "FilterContainer",
    "FilterStats",
    "ChainSnapshot",
    "EndPoint",
    "SourceEndPoint",
    "SinkEndPoint",
    "IterableSource",
    "CallableSource",
    "SocketSource",
    "CollectorSink",
    "CallableSink",
    "SocketSink",
    "NullSink",
    "ControlThread",
    "DEFAULT_OPERATION_TIMEOUT",
    "Proxy",
    "null_proxy",
    "ControlServer",
    "ControlManager",
    "ProxyControlClient",
    "CommandHandler",
    "encode_message",
    "decode_message",
    "ok_response",
    "error_response",
    "ALL_COMMANDS",
    "FilterRegistry",
    "FilterSpec",
    "default_registry",
    "ProxyError",
    "CompositionError",
    "FilterStateError",
    "ControlProtocolError",
    "RegistryError",
    "StreamSupervisionError",
    "ErrorPolicy",
    "StreamSupervisor",
    "any_packet_boundary",
    "gop_boundary",
    "i_frame_boundary",
    "frame_type_boundary",
    "sequence_multiple_boundary",
]
