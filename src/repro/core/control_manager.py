"""The ControlManager — managing RAPIDware proxies.

The paper's ControlManager is a Swing GUI that "supports management of
multiple proxies", builds "a graphical representation of the state of the
proxy, including the current configuration of filters", lets an
administrator "insert and remove filters at specified locations in a given
stream", and "uses serialization of filter objects to deliver new filters to
the proxy".

This reproduction keeps the management *capabilities* and drops the GUI:

* :class:`ProxyControlClient` talks the JSON control protocol to one proxy,
  either over TCP (to a :class:`~repro.core.control_server.ControlServer`)
  or directly in-process (handy for tests and single-process deployments);
* :class:`ControlManager` manages any number of registered proxies and can
  render a textual representation of their filter chains — the console
  analogue of the paper's GUI panel.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Union

from .commands import (
    CMD_DESCRIBE,
    CMD_INSERT_FILTER,
    CMD_LIST_FILTER_TYPES,
    CMD_LIST_STREAMS,
    CMD_MOVE_FILTER,
    CMD_PING,
    CMD_REMOVE_FILTER,
    CMD_REORDER_FILTERS,
    CMD_SHUTDOWN_STREAM,
    CMD_STATS,
    CMD_UPLOAD_FILTERS,
    CommandHandler,
    decode_message,
    encode_message,
)
from .errors import ControlProtocolError
from .proxy import Proxy
from .registry import FilterRegistry, FilterSpec
from .stats import ChainSnapshot


class ProxyControlClient:
    """A control-protocol client bound to a single proxy.

    Construct it either with an in-process :class:`Proxy` (commands are
    executed directly) or with a ``(host, port)`` address of a running
    :class:`~repro.core.control_server.ControlServer`.
    """

    def __init__(self, target: Union[Proxy, "tuple[str, int]"],
                 registry: Optional[FilterRegistry] = None,
                 timeout: float = 5.0) -> None:
        self._timeout = timeout
        self._socket: Optional[socket.socket] = None
        self._handler: Optional[CommandHandler] = None
        self._recv_buffer = bytearray()
        if isinstance(target, Proxy):
            self._handler = CommandHandler(target, registry=registry)
            self.description = f"in-process:{target.name}"
        else:
            host, port = target
            self._socket = socket.create_connection((host, int(port)),
                                                    timeout=timeout)
            self.description = f"tcp:{host}:{port}"

    # --------------------------------------------------------------- plumbing

    def request(self, command: str, **fields: Any) -> Dict[str, Any]:
        """Send one command and return the decoded response payload.

        Raises :class:`ControlProtocolError` when the proxy reports an error.
        """
        payload = {"command": command, **fields}
        if self._handler is not None:
            response = self._handler.handle(payload)
        else:
            response = self._request_over_socket(payload)
        if not response.get("ok", False):
            raise ControlProtocolError(response.get("error", "unknown proxy error"))
        return response

    def _request_over_socket(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        assert self._socket is not None
        self._socket.sendall(encode_message(payload))
        while b"\n" not in self._recv_buffer:
            data = self._socket.recv(4096)
            if not data:
                raise ControlProtocolError("control connection closed by the proxy")
            self._recv_buffer.extend(data)
        line, _, rest = bytes(self._recv_buffer).partition(b"\n")
        self._recv_buffer = bytearray(rest)
        return decode_message(line)

    def close(self) -> None:
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = None

    def __enter__(self) -> "ProxyControlClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------ conveniences

    def ping(self) -> bool:
        """True when the proxy answers the control protocol."""
        return self.request(CMD_PING).get("reply") == "pong"

    def streams(self) -> List[str]:
        return list(self.request(CMD_LIST_STREAMS).get("streams", []))

    def filter_types(self) -> List[str]:
        return list(self.request(CMD_LIST_FILTER_TYPES).get("types", []))

    def snapshot(self, stream: Optional[str] = None) -> ChainSnapshot:
        response = self.request(CMD_DESCRIBE, stream=stream)
        if "snapshot" in response:
            return ChainSnapshot.from_dict(response["snapshot"])
        snapshots = response.get("snapshots", {})
        if len(snapshots) != 1:
            raise ControlProtocolError(
                "a stream name is required when the proxy has several streams")
        return ChainSnapshot.from_dict(next(iter(snapshots.values())))

    def snapshots(self) -> Dict[str, ChainSnapshot]:
        response = self.request(CMD_DESCRIBE)
        return {name: ChainSnapshot.from_dict(payload)
                for name, payload in response.get("snapshots", {}).items()}

    def insert_filter(self, spec: FilterSpec, stream: Optional[str] = None,
                      position: Optional[int] = None) -> str:
        """Instantiate and insert a filter; returns the new filter's name."""
        response = self.request(CMD_INSERT_FILTER, stream=stream,
                                spec=spec.to_dict(), position=position)
        return str(response["filter"])

    def remove_filter(self, ref: Union[str, int],
                      stream: Optional[str] = None) -> str:
        response = self.request(CMD_REMOVE_FILTER, stream=stream, filter=ref)
        return str(response["filter"])

    def move_filter(self, ref: Union[str, int], position: int,
                    stream: Optional[str] = None) -> List[str]:
        response = self.request(CMD_MOVE_FILTER, stream=stream, filter=ref,
                                position=position)
        return list(response.get("filters", []))

    def reorder_filters(self, order: List[Union[str, int]],
                        stream: Optional[str] = None) -> List[str]:
        response = self.request(CMD_REORDER_FILTERS, stream=stream, order=order)
        return list(response.get("filters", []))

    def upload_filters(self, module: str, source: str) -> List[str]:
        """Upload filter source code to the proxy; returns new type names."""
        response = self.request(CMD_UPLOAD_FILTERS, module=module, source=source)
        return list(response.get("registered", []))

    def stats(self, stream: Optional[str] = None) -> ChainSnapshot:
        response = self.request(CMD_STATS, stream=stream)
        return ChainSnapshot.from_dict(response["snapshot"])

    def shutdown_stream(self, stream: Optional[str] = None) -> None:
        self.request(CMD_SHUTDOWN_STREAM, stream=stream)


class ControlManager:
    """Manages a set of named proxies through their control clients."""

    def __init__(self) -> None:
        self._clients: Dict[str, ProxyControlClient] = {}

    # ----------------------------------------------------------- registration

    def register_proxy(self, name: str,
                       target: Union[Proxy, "tuple[str, int]"],
                       registry: Optional[FilterRegistry] = None) -> ProxyControlClient:
        """Register a proxy (in-process object or TCP address) under a name."""
        client = ProxyControlClient(target, registry=registry)
        self._clients[name] = client
        return client

    def unregister_proxy(self, name: str) -> None:
        client = self._clients.pop(name, None)
        if client is not None:
            client.close()

    def proxy_names(self) -> List[str]:
        return sorted(self._clients)

    def client(self, name: str) -> ProxyControlClient:
        if name not in self._clients:
            raise ControlProtocolError(f"no proxy registered under {name!r}")
        return self._clients[name]

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    # -------------------------------------------------------------- operations

    def ping_all(self) -> Dict[str, bool]:
        """Ping every registered proxy."""
        results = {}
        for name, client in self._clients.items():
            try:
                results[name] = client.ping()
            except (ControlProtocolError, OSError):
                results[name] = False
        return results

    def insert_filter(self, proxy: str, spec: FilterSpec,
                      stream: Optional[str] = None,
                      position: Optional[int] = None) -> str:
        return self.client(proxy).insert_filter(spec, stream=stream,
                                                position=position)

    def remove_filter(self, proxy: str, ref: Union[str, int],
                      stream: Optional[str] = None) -> str:
        return self.client(proxy).remove_filter(ref, stream=stream)

    def upload_filters(self, proxy: str, module: str, source: str) -> List[str]:
        return self.client(proxy).upload_filters(module, source)

    def snapshots(self, proxy: str) -> Dict[str, ChainSnapshot]:
        return self.client(proxy).snapshots()

    # --------------------------------------------------------------- rendering

    def render_state(self) -> str:
        """A textual rendering of every proxy's filter chains.

        This is the console counterpart of the paper's GUI panel: one line
        per stream showing the source, the ordered filters, and the sink.
        """
        lines: List[str] = []
        for name in self.proxy_names():
            client = self._clients[name]
            lines.append(f"proxy {name} ({client.description})")
            try:
                snapshots = client.snapshots()
            except (ControlProtocolError, OSError) as exc:
                lines.append(f"  <unreachable: {exc}>")
                continue
            if not snapshots:
                lines.append("  (no streams)")
            for stream_name, snapshot in sorted(snapshots.items()):
                chain = " -> ".join(["[source]", *snapshot.filter_names, "[sink]"])
                status = "running" if snapshot.running else "stopped"
                lines.append(f"  stream {stream_name} ({status}): {chain}")
        return "\n".join(lines)
