"""Per-filter and per-chain statistics.

Every filter counts the data it moves; the ControlThread aggregates those
counters into a chain-level snapshot that the ControlManager displays and
the benchmarks assert on (e.g. "no bytes were lost across a splice").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class FilterStats:
    """Counters maintained by every filter.

    Increments are plain-int ``+=`` on instance attributes: under the GIL
    each one is effectively atomic, and every counter is monotonic and
    written by the single thread that drives the filter, so the hot data
    path pays no lock round-trip per chunk.  ``snapshot`` reads may lag an
    in-flight increment by one chunk, which the consumers (the control
    plane's status displays and post-quiescence assertions) tolerate by
    design.

    ``budget_exhausted`` counts pump steps whose batched read returned a
    full ``pump_budget`` of chunks — the element had more input waiting
    than one step could move, the per-element backlog signal the metrics
    exporter surfaces.
    """

    chunks_in: int = 0
    chunks_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    packets_in: int = 0
    packets_out: int = 0
    errors: int = 0
    budget_exhausted: int = 0

    def record_input(self, nbytes: int, packets: int = 0) -> None:
        self.chunks_in += 1
        self.bytes_in += nbytes
        self.packets_in += packets

    def record_input_batch(self, nbytes: int, chunks: int, packets: int = 0) -> None:
        """Account a whole input batch with one call (per-batch, not per-chunk)."""
        self.chunks_in += chunks
        self.bytes_in += nbytes
        self.packets_in += packets

    def record_output(self, nbytes: int, packets: int = 0) -> None:
        self.chunks_out += 1
        self.bytes_out += nbytes
        self.packets_out += packets

    def record_output_batch(self, nbytes: int, chunks: int, packets: int = 0) -> None:
        """Account a whole output batch with one call (per-batch, not per-chunk)."""
        self.chunks_out += chunks
        self.bytes_out += nbytes
        self.packets_out += packets

    def record_error(self) -> None:
        self.errors += 1

    def record_budget_exhausted(self) -> None:
        self.budget_exhausted += 1

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of the counters (safe to serialise)."""
        return {
            "chunks_in": self.chunks_in,
            "chunks_out": self.chunks_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "errors": self.errors,
            "budget_exhausted": self.budget_exhausted,
        }


#: The fields a serialised ChainSnapshot must carry (see ``from_dict``).
_SNAPSHOT_FIELDS = (
    "stream_name",
    "filter_names",
    "filter_types",
    "filter_stats",
    "source_stats",
    "sink_stats",
    "running",
)


@dataclass
class ChainSnapshot:
    """A point-in-time view of a proxy stream's configuration and counters."""

    stream_name: str
    filter_names: List[str]
    filter_types: List[str]
    filter_stats: List[Dict[str, int]]
    source_stats: Dict[str, int]
    sink_stats: Dict[str, int]
    running: bool

    def to_dict(self) -> Dict[str, object]:
        """Serialise for the control protocol."""
        return {
            "stream_name": self.stream_name,
            "filter_names": list(self.filter_names),
            "filter_types": list(self.filter_types),
            "filter_stats": [dict(s) for s in self.filter_stats],
            "source_stats": dict(self.source_stats),
            "sink_stats": dict(self.sink_stats),
            "running": self.running,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChainSnapshot":
        """Deserialise a :meth:`to_dict` payload — losslessly.

        A payload missing any snapshot field raises :class:`ValueError`
        naming the missing fields, so a truncated or mis-versioned control
        message fails loudly instead of silently reading as an empty,
        stopped stream.  ``from_dict(to_dict(s)) == s`` for every snapshot.
        """
        missing = [name for name in _SNAPSHOT_FIELDS if name not in payload]
        if missing:
            raise ValueError(
                f"chain snapshot payload is missing fields: {', '.join(missing)}"
            )
        return cls(
            stream_name=str(payload["stream_name"]),
            filter_names=[str(v) for v in payload["filter_names"]],
            filter_types=[str(v) for v in payload["filter_types"]],
            filter_stats=[
                {str(k): int(v) for k, v in stats.items()}
                for stats in payload["filter_stats"]
            ],
            source_stats={str(k): int(v) for k, v in payload["source_stats"].items()},
            sink_stats={str(k): int(v) for k, v in payload["sink_stats"].items()},
            running=bool(payload["running"]),
        )

    @classmethod
    def sum(cls, snapshots: "List[ChainSnapshot]",
            stream_name: str = "sum") -> "ChainSnapshot":
        """Add many snapshots into one fleet-wide total.

        Endpoint counters always sum.  Per-filter counters sum position-
        wise when every snapshot has the same ``filter_types`` chain (the
        steady state after a fleet-wide splice); heterogeneous chains drop
        the per-filter breakdown rather than adding unlike positions.
        ``running`` is true while any summed stream runs.
        """
        def _add(into: Dict[str, int], stats: Dict[str, int]) -> None:
            for key, value in stats.items():
                into[key] = into.get(key, 0) + int(value)

        source_stats: Dict[str, int] = {}
        sink_stats: Dict[str, int] = {}
        congruent = len({tuple(s.filter_types) for s in snapshots}) == 1
        filter_names = list(snapshots[0].filter_names) if congruent else []
        filter_types = list(snapshots[0].filter_types) if congruent else []
        filter_stats: List[Dict[str, int]] = [{} for _ in filter_types]
        running = False
        for snapshot in snapshots:
            _add(source_stats, snapshot.source_stats)
            _add(sink_stats, snapshot.sink_stats)
            if congruent:
                for into, stats in zip(filter_stats, snapshot.filter_stats):
                    _add(into, stats)
            running = running or snapshot.running
        return cls(stream_name=stream_name, filter_names=filter_names,
                   filter_types=filter_types, filter_stats=filter_stats,
                   source_stats=source_stats, sink_stats=sink_stats,
                   running=running)
