"""Per-filter and per-chain statistics.

Every filter counts the data it moves; the ControlThread aggregates those
counters into a chain-level snapshot that the ControlManager displays and
the benchmarks assert on (e.g. "no bytes were lost across a splice").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class FilterStats:
    """Counters maintained by every filter.

    Increments are plain-int ``+=`` on instance attributes: under the GIL
    each one is effectively atomic, and every counter is monotonic and
    written by the single thread that drives the filter, so the hot data
    path pays no lock round-trip per chunk.  ``snapshot`` reads may lag an
    in-flight increment by one chunk, which the consumers (the control
    plane's status displays and post-quiescence assertions) tolerate by
    design.
    """

    chunks_in: int = 0
    chunks_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    packets_in: int = 0
    packets_out: int = 0
    errors: int = 0

    def record_input(self, nbytes: int, packets: int = 0) -> None:
        self.chunks_in += 1
        self.bytes_in += nbytes
        self.packets_in += packets

    def record_input_batch(self, nbytes: int, chunks: int, packets: int = 0) -> None:
        """Account a whole input batch with one call (per-batch, not per-chunk)."""
        self.chunks_in += chunks
        self.bytes_in += nbytes
        self.packets_in += packets

    def record_output(self, nbytes: int, packets: int = 0) -> None:
        self.chunks_out += 1
        self.bytes_out += nbytes
        self.packets_out += packets

    def record_output_batch(self, nbytes: int, chunks: int, packets: int = 0) -> None:
        """Account a whole output batch with one call (per-batch, not per-chunk)."""
        self.chunks_out += chunks
        self.bytes_out += nbytes
        self.packets_out += packets

    def record_error(self) -> None:
        self.errors += 1

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of the counters (safe to serialise)."""
        return {
            "chunks_in": self.chunks_in,
            "chunks_out": self.chunks_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
            "errors": self.errors,
        }


@dataclass
class ChainSnapshot:
    """A point-in-time view of a proxy stream's configuration and counters."""

    stream_name: str
    filter_names: List[str]
    filter_types: List[str]
    filter_stats: List[Dict[str, int]]
    source_stats: Dict[str, int]
    sink_stats: Dict[str, int]
    running: bool

    def to_dict(self) -> Dict[str, object]:
        """Serialise for the control protocol."""
        return {
            "stream_name": self.stream_name,
            "filter_names": list(self.filter_names),
            "filter_types": list(self.filter_types),
            "filter_stats": [dict(s) for s in self.filter_stats],
            "source_stats": dict(self.source_stats),
            "sink_stats": dict(self.sink_stats),
            "running": self.running,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChainSnapshot":
        return cls(
            stream_name=str(payload.get("stream_name", "")),
            filter_names=[str(v) for v in payload.get("filter_names", [])],
            filter_types=[str(v) for v in payload.get("filter_types", [])],
            filter_stats=[dict(v) for v in payload.get("filter_stats", [])],
            source_stats=dict(payload.get("source_stats", {})),
            sink_stats=dict(payload.get("sink_stats", {})),
            running=bool(payload.get("running", False)),
        )
