"""EndPoints — the components that anchor a proxy's filter chain.

"EndPoints are special extensions of Filters that are instantiated by the
ControlThread for providing Input and Output services to the framework."
A :class:`SourceEndPoint` pulls data from outside the chain (a socket, a
generator, a simulated network receiver) and writes it to its DOS; a
:class:`SinkEndPoint` reads from its DIS and pushes data outside the chain.
"Combined with the ControlThread, two EndPoints comprise a 'null' proxy".

Concrete EndPoints are provided for the data sources and sinks used in this
reproduction: Python iterables/callables, in-memory collectors, real TCP
sockets, and the simulated wired/wireless networks.
"""

from __future__ import annotations

import socket
import threading
from itertools import repeat as _repeat
from time import monotonic as _monotonic
from typing import Callable, Iterable, Iterator, List, Optional

from ..streams import (
    BrokenStreamError,
    FrameDecoder,
    NotConnectedError,
    StreamClosedError,
    encode_frame,
)
from .filter import Filter

#: Infinite second argument for ``map(isinstance, items, ...)`` — the
#: C-speed all-bytes-like batch check (same idiom as the stream buffer).
_REPEAT_BYTES_LIKE = _repeat((bytes, bytearray, memoryview))

#: A pull-style source callback: returns the next chunk, or None at EOF.
SourceCallable = Callable[[], Optional[bytes]]

#: A push-style sink callback: receives each chunk (or packet).
SinkCallable = Callable[[bytes], None]


class EndPoint(Filter):
    """Common base class for chain endpoints."""

    type_name = "endpoint"


class SourceEndPoint(EndPoint):
    """Reads data from an external producer and writes it into the chain.

    Subclasses implement :meth:`produce`, returning the next chunk of bytes
    or ``None`` at end of input.  The endpoint's DIS is unused.
    """

    type_name = "source-endpoint"

    #: Most sources block on external input (sockets, queues), so by default
    #: every execution engine gives them a dedicated thread.  Sources whose
    #: ``produce`` is non-blocking (:class:`IterableSource`) opt back in to
    #: cooperative pumping; pacing then becomes a scheduler deadline rather
    #: than a sleeping thread.
    cooperative_capable = False

    #: Whether ``produce`` returns without ever blocking *in the threaded
    #: run loop as well*.  Only such sources may accumulate a multi-item
    #: batch before writing: a blocking source would stall in ``produce``
    #: while already-produced items sit undelivered in the batch.  (This is
    #: stricter than ``cooperative_capable`` — a transport source polls
    #: non-blockingly when cooperative but blocks in its dedicated thread.)
    produce_nonblocking = False

    def __init__(self, name: Optional[str] = None, frame_output: bool = False,
                 pacing_s: float = 0.0, close_on_eof: bool = True) -> None:
        super().__init__(name=name, propagate_eof=close_on_eof)
        if pacing_s < 0:
            raise ValueError("pacing_s must be non-negative")
        self.frame_output = frame_output
        self.pacing_s = pacing_s
        self.items_produced = 0
        self._next_due = 0.0
        # Latched the first time produce() returns None, so an exhausted
        # producer is never probed again (produce() need not be repeatable
        # after signalling end of input).
        self._exhausted = False

    def produce(self) -> Optional[bytes]:
        """Return the next chunk/packet, or None when the source is exhausted."""
        raise NotImplementedError

    def produce_many(self, max_items: int) -> Optional[List[bytes]]:
        """Produce up to ``max_items`` items in one call, or None.

        Returning None (the default) makes the run loop accumulate its
        batch through per-item :meth:`produce` calls.  Sources whose
        backlog is indexable (:class:`IterableSource` over a materialised
        list) override this so a whole batch is drawn as one slice.  A
        short or empty return does *not* signal exhaustion — the next
        :meth:`produce` call decides that.
        """
        return None

    def _encode(self, item: bytes) -> bytes:
        """The wire form of one produced item (framed or raw bytes)."""
        if self.frame_output:
            return encode_frame(item)
        if isinstance(item, (bytes, bytearray, memoryview)):
            return item  # queued by reference, per the buffer's contract
        return bytes(item)

    def _deliver_batch(self, batch: List[bytes], last_item: bytes) -> None:
        """Write an accumulated batch downstream with per-batch accounting."""
        self.dos.write_many(batch)
        self._last_emitted = last_item
        self.items_produced += len(batch)
        self.stats.record_output_batch(
            sum(map(len, batch)), len(batch),
            packets=len(batch) if self.frame_output else 0)
        self._notify_activity()

    def _run(self) -> None:  # replaces the read loop: sources have no input
        try:
            self.on_start()
            # Only a never-blocking, unpaced source may accumulate a batch
            # before writing; this part of the decision is static, so the
            # hold check below is only paid when batching is possible.
            batch_capable = (not self.pacing_s and self.pump_budget > 1
                             and self.produce_nonblocking)
            exhausted = False
            while not self._stop_event.is_set() and not exhausted:
                item = self.produce()
                if item is None:
                    break
                if not item:
                    continue
                if batch_capable:
                    with self._hold_lock:
                        hold_armed = self._boundary_predicate is not None
                else:
                    hold_armed = True  # forces the per-item path below
                if hold_armed:
                    data = self._encode(item)
                    # Hold on the wire unit; _boundary_unit unwraps the
                    # framing so predicates see the produced item, as in
                    # cooperative mode.
                    self._maybe_hold(data)
                    self.dos.write(data)
                    self._last_emitted = item
                    self.items_produced += 1
                    self.stats.record_output(len(data),
                                             packets=1 if self.frame_output else 0)
                    self._notify_activity()
                    if self.pacing_s:
                        self._stop_event.wait(self.pacing_s)
                    continue
                # Unpaced, unheld bulk path: accumulate up to a budget of
                # items and deliver them in one batched write, so the DOS
                # lock and the downstream wakeup are paid once per batch.
                batch = [self._encode(item)]
                last_item = item
                try:
                    more = (self.produce_many(self.pump_budget - 1)
                            if self.pump_budget > 1 else None)
                    if more is not None:
                        # Bulk draw: encode the slice in one pass (empty
                        # items are skipped, as per-item draws do).  The
                        # dominant all-bytes case extends at C speed.
                        if more:
                            last_item = more[-1]
                            if self.frame_output:
                                batch.extend(encode_frame(i)
                                             for i in more if len(i))
                            elif (all(map(isinstance, more, _REPEAT_BYTES_LIKE))
                                  and 0 not in map(len, more)):
                                batch.extend(more)
                            else:
                                batch.extend(
                                    i if isinstance(i, (bytes, bytearray,
                                                        memoryview))
                                    else bytes(i)
                                    for i in more if len(i))
                    else:
                        while (len(batch) < self.pump_budget
                               and not self._stop_event.is_set()):
                            item = self.produce()
                            if item is None:
                                exhausted = True
                                break
                            if not item:
                                break
                            batch.append(self._encode(item))
                            last_item = item
                except Exception:
                    # produce() failing mid-batch must not discard the items
                    # before it — the per-item path delivered each of those
                    # before erroring, and so do we.
                    try:
                        self._deliver_batch(batch, last_item)
                    except Exception:  # noqa: BLE001 - keep the original error
                        pass
                    raise
                self._deliver_batch(batch, last_item)
            if not self._stop_event.is_set() and self.propagate_eof:
                self._close_output()
        except (StreamClosedError, BrokenStreamError, NotConnectedError) as exc:
            self.error = exc
            self.stats.record_error()
        except Exception as exc:  # noqa: BLE001 - surfaced via self.error
            self.error = exc
            self.stats.record_error()
            self._close_output()
        finally:
            try:
                self.on_stop()
            finally:
                self._finished.set()
                self._notify_activity()

    # ------------------------------------------------------ cooperative pump

    def _pump_input(self, progress: bool) -> bool:
        """The source variant of a pump step: produce and emit items.

        Only used when a subclass declares ``cooperative_capable = True``
        (its ``produce`` must never block).  Pacing is honoured through
        :meth:`next_due_s` — the engine simply does not pump the source
        again until the deadline — so a paced source costs a timer entry
        instead of a sleeping thread.

        An unpaced source produces up to a budget of items per step and
        flushes them as one batch, so scheduler round-trips amortize; a
        paced source still moves one item per deadline.
        """
        if self.pacing_s and _monotonic() < self._next_due:
            if progress:
                # The flush above advanced the pacing deadline; re-mark
                # ourselves so the next round parks us on the timer.
                self._notify_engine()
            return progress
        budget = 1 if self.pacing_s else self.pump_budget
        queued = False
        for _ in range(budget):
            item = None if self._exhausted else self.produce()
            if item is None:
                self._exhausted = True
                break
            if not item:
                break  # nothing available right now (cooperative receivers)
            self._pending.append(self._encode(item))
            queued = True
        if queued:
            self._flush_pending()
        if self._exhausted and not self._pending:
            if self.propagate_eof:
                self._close_output()
            self._complete()
            return True
        self._notify_engine()  # stay scheduled until exhausted
        return True

    def _close_output_after_error(self) -> None:
        self._close_output()

    def wants_input_pump(self) -> bool:
        if self.pacing_s:
            return _monotonic() >= self._next_due
        return True

    def next_due_s(self) -> "Optional[float]":
        if self.pacing_s and not self._finished.is_set():
            return self._next_due
        return None

    def _record_emit(self, data: bytes) -> None:
        self._last_emitted = self._boundary_unit(data)
        self.items_produced += 1
        self.stats.record_output(len(data),
                                 packets=1 if self.frame_output else 0)
        if self.pacing_s:
            # Absolute schedule (due += interval), not relative to the emit
            # instant: deadlines don't drift with scheduler latency, and
            # sources started together stay phase-aligned so one timer tick
            # pumps the whole batch.
            base = self._next_due if self._next_due > 0.0 else _monotonic()
            self._next_due = base + self.pacing_s

    def _record_emit_batch(self, batch) -> None:
        # Per-unit, not per-batch: each emit advances the pacing deadline
        # and the produced-item count, which must stay unit-exact.
        for data in batch:
            self._record_emit(data)

    def _boundary_unit(self, unit: bytes) -> bytes:
        """Boundary predicates see the produced item, not its framing."""
        if self.frame_output:
            from ..streams.framing import HEADER_SIZE

            if len(unit) >= HEADER_SIZE:
                return unit[HEADER_SIZE:]
        return unit


class IterableSource(SourceEndPoint):
    """A source that drains a Python iterable of byte chunks/packets."""

    type_name = "iterable-source"

    #: Iterating is assumed non-blocking, so the event engine can pump this
    #: source cooperatively — N paced streams need no N sleeping threads —
    #: and the threaded run loop can batch items before writing.
    cooperative_capable = True
    produce_nonblocking = True

    def __init__(self, items: Iterable[bytes], name: Optional[str] = None,
                 frame_output: bool = False, pacing_s: float = 0.0) -> None:
        super().__init__(name=name, frame_output=frame_output, pacing_s=pacing_s)
        # A materialised backlog is drawn by index so produce_many can hand
        # out whole slices; any other iterable is drained item by item.
        self._items = items if isinstance(items, (list, tuple)) else None
        self._pos = 0
        self._iterator: Optional[Iterator[bytes]] = (
            None if self._items is not None else iter(items))

    def produce(self) -> Optional[bytes]:
        if self._items is not None:
            pos = self._pos
            if pos >= len(self._items):
                return None
            self._pos = pos + 1
            return self._items[pos]
        try:
            return next(self._iterator)
        except StopIteration:
            return None

    def produce_many(self, max_items: int) -> Optional[List[bytes]]:
        """One slice of the backlog when it is indexable (else None)."""
        if self._items is None:
            return None
        pos = self._pos
        batch = list(self._items[pos:pos + max_items])
        self._pos = pos + len(batch)
        return batch


class CallableSource(SourceEndPoint):
    """A source that repeatedly calls a function until it returns None."""

    type_name = "callable-source"

    def __init__(self, callback: SourceCallable, name: Optional[str] = None,
                 frame_output: bool = False, pacing_s: float = 0.0) -> None:
        super().__init__(name=name, frame_output=frame_output, pacing_s=pacing_s)
        self._callback = callback

    def produce(self) -> Optional[bytes]:
        return self._callback()


class SocketSource(SourceEndPoint):
    """Reads raw bytes from a connected stream (EndPointSocketReader).

    Accepts a connected TCP ``socket.socket`` or any transport-layer
    :class:`~repro.transport.base.StreamConnection` — the endpoint is built
    on the latter; a raw socket is wrapped on the way in.  ``recv_timeout``
    bounds each blocking read (it exists so the worker can observe a stop
    request, not for liveness): peer close is end-of-stream the moment it
    happens, and :meth:`stop` half-closes the reading side so a parked
    ``recv`` returns immediately instead of burning out its poll cycle.
    """

    type_name = "socket-source"

    def __init__(self, sock, name: Optional[str] = None,
                 recv_size: int = 8192,
                 recv_timeout: Optional[float] = 0.5) -> None:
        from ..transport.base import TransportTimeoutError
        from ..transport.udp import TcpStreamConnection

        super().__init__(name=name, frame_output=False)
        if recv_timeout is not None and recv_timeout <= 0:
            raise ValueError("recv_timeout must be positive (or None)")
        self._conn = (TcpStreamConnection(sock)
                      if isinstance(sock, socket.socket) else sock)
        self._timeout_error = TransportTimeoutError
        self.recv_size = recv_size
        self.recv_timeout = recv_timeout

    def produce(self) -> Optional[bytes]:
        while not self._stop_event.is_set():
            try:
                data = self._conn.recv(self.recv_size,
                                       timeout=self.recv_timeout)
            except self._timeout_error:
                continue
            return data if data else None
        return None

    def stop(self, timeout: float = 5.0) -> None:
        # Unblock a worker parked in recv() before joining it, so stopping
        # costs one wakeup rather than a full recv_timeout poll cycle.
        self._stop_event.set()
        unblock = getattr(self._conn, "unblock", None)
        if callable(unblock):
            unblock()
        super().stop(timeout=timeout)

    def on_stop(self) -> None:
        self._conn.close()


class SinkEndPoint(EndPoint):
    """Reads data from the chain and delivers it to an external consumer.

    Subclasses implement :meth:`consume`.  When ``expect_frames`` is True the
    sink deframes the byte stream and calls :meth:`consume` once per packet;
    otherwise it is called with raw chunks.
    """

    type_name = "sink-endpoint"

    def __init__(self, name: Optional[str] = None, expect_frames: bool = False) -> None:
        super().__init__(name=name, propagate_eof=False)
        self.expect_frames = expect_frames
        self._sink_decoder = FrameDecoder()
        self.items_consumed = 0
        self.eof_seen = threading.Event()

    def consume(self, data: bytes) -> None:
        """Handle one chunk (or one packet when ``expect_frames`` is True)."""
        raise NotImplementedError

    def consume_many(self, items) -> None:
        """Handle a whole batch of chunks/packets (the batched consume).

        The default delivers the batch one :meth:`consume` call at a time;
        sinks with a genuinely cheaper bulk path — a vectored transport
        send, a pure discard — override this.
        """
        for data in items:
            self.consume(data)
            self.items_consumed += 1

    def transform(self, chunk: bytes):
        if self.expect_frames:
            for packet in self._sink_decoder.feed(chunk):
                self.stats.record_input(0, packets=1)
                self.consume(packet)
                self.items_consumed += 1
        else:
            self.consume(chunk)
            self.items_consumed += 1
        return None

    def transform_chunks(self, chunks, outputs) -> None:
        """Deliver a whole input batch through :meth:`consume_many`.

        Deframing happens across the batch first, so a sink with a bulk
        consume (the transport sink's vectored send) receives the full
        budget of packets in one call.  Stats match the per-chunk path.
        """
        if self.expect_frames:
            packets = []
            for chunk in chunks:
                self._batch_in_bytes += len(chunk)
                self._batch_in_chunks += 1
                packets.extend(self._sink_decoder.feed(chunk))
            if packets:
                self.stats.record_input_batch(0, len(packets),
                                              packets=len(packets))
                self.consume_many(packets)
        else:
            # The whole batch is handed to consume_many at once, so it is
            # accounted at once (a consume failing mid-batch was still
            # *given* every chunk).
            self._batch_in_bytes += sum(map(len, chunks))
            self._batch_in_chunks += len(chunks)
            self.consume_many(chunks)

    def finalize(self):
        self.eof_seen.set()
        return None

    def wait_for_eof(self, timeout: Optional[float] = None) -> bool:
        """Block until the chain's end-of-stream reaches this sink."""
        return self.eof_seen.wait(timeout=timeout)

    def is_idle(self) -> bool:
        if self.expect_frames and self._sink_decoder.has_partial_frame():
            return False
        return super().is_idle()


class CollectorSink(SinkEndPoint):
    """Accumulates everything that reaches the end of the chain.

    With ``expect_frames=True`` the collected items are packets; otherwise
    the raw byte chunks are concatenated by :meth:`data`.
    """

    type_name = "collector-sink"

    def __init__(self, name: Optional[str] = None, expect_frames: bool = False) -> None:
        super().__init__(name=name, expect_frames=expect_frames)
        self._lock = threading.Lock()
        self._items: List[bytes] = []

    def consume(self, data: bytes) -> None:
        if not isinstance(data, bytes):
            data = bytes(data)  # materialise views: collected items outlive
        with self._lock:       # the writer's buffers
            self._items.append(data)

    def items(self) -> List[bytes]:
        """The collected chunks/packets, in arrival order."""
        with self._lock:
            return list(self._items)

    def data(self) -> bytes:
        """All collected bytes concatenated."""
        with self._lock:
            return b"".join(self._items)

    def clear(self) -> None:
        with self._lock:
            self._items.clear()


class CallableSink(SinkEndPoint):
    """Delivers each chunk/packet to a callback (e.g. ``WirelessLAN.send``)."""

    type_name = "callable-sink"

    def __init__(self, callback: SinkCallable, name: Optional[str] = None,
                 expect_frames: bool = False) -> None:
        super().__init__(name=name, expect_frames=expect_frames)
        self._callback = callback

    def consume(self, data: bytes) -> None:
        # External callbacks are written against real ``bytes``.
        self._callback(data if isinstance(data, bytes) else bytes(data))


class SocketSink(SinkEndPoint):
    """Writes raw bytes to a connected stream (EndPointSocketWriter).

    Accepts a connected TCP ``socket.socket`` or any transport-layer
    :class:`~repro.transport.base.StreamConnection`.  End-of-stream
    half-closes the sending side so the peer sees EOF while the connection
    object stays usable for its owner.
    """

    type_name = "socket-sink"

    #: The blocking send can stall on the peer, so never pump this
    #: cooperatively.
    cooperative_capable = False

    def __init__(self, sock, name: Optional[str] = None) -> None:
        from ..transport.udp import TcpStreamConnection

        super().__init__(name=name, expect_frames=False)
        self._conn = (TcpStreamConnection(sock)
                      if isinstance(sock, socket.socket) else sock)

    def consume(self, data: bytes) -> None:
        self._conn.send(data)

    def on_stop(self) -> None:
        self._conn.close_sending()


class NullSink(SinkEndPoint):
    """Discards everything (useful for throughput benchmarks)."""

    type_name = "null-sink"

    def consume(self, data: bytes) -> None:  # noqa: D401 - intentionally empty
        pass

    def consume_many(self, items) -> None:
        self.items_consumed += len(items)
