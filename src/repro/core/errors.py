"""Exceptions raised by the composable-proxy core."""

from __future__ import annotations


class ProxyError(Exception):
    """Base class for proxy/composition errors."""


class CompositionError(ProxyError):
    """Raised when a filter chain operation is invalid (bad position,
    unknown filter, filter already in use, etc.)."""


class FilterStateError(ProxyError):
    """Raised when a filter is used in the wrong lifecycle state (started
    twice, stopped before started, etc.)."""


class ControlProtocolError(ProxyError):
    """Raised when a control command is malformed or cannot be executed."""


class RegistryError(ProxyError):
    """Raised for unknown filter types and invalid filter uploads."""


class StreamSupervisionError(ProxyError):
    """Raised (and recorded on abandoned filters) by stream supervision —
    stall watchdog trips, restart budget exhaustion, unrecoverable splices."""
