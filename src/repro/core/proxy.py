"""The Proxy — a named collection of proxied streams.

A RAPIDware proxy node (Figure 3/4 of the paper) terminates one or more data
streams; each stream is anchored by two EndPoints and managed by its own
:class:`~repro.core.control_thread.ControlThread`.  Two EndPoints plus a
ControlThread form the paper's "null proxy" — data is forwarded unmodified
until filters are inserted.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

from ..obs.exporter import ensure_default_server
from ..obs.metrics import register_proxy
from ..runtime import ExecutionEngine, resolve_engine
from ..transport.base import Transport, resolve_transport
from .control_thread import ControlThread
from .endpoints import SinkEndPoint, SourceEndPoint
from .errors import CompositionError


class Proxy:
    """A proxy node hosting any number of filtered data streams.

    All of the proxy's streams share one execution engine (see
    :mod:`repro.runtime`), selected by the ``engine`` argument (instance,
    registered name, or None for ``REPRO_ENGINE`` / the registry default).
    Sharing matters for the event engine: every stream's filters are pumped
    by the proxy's single scheduler thread, which is what lets one proxy
    host hundreds of concurrent streams.

    The proxy's streams likewise share one :mod:`transport <repro.transport>`
    (``transport=`` instance, registered name — ``"inproc"``, ``"udp"``,
    ``"loopback"`` — or None for ``REPRO_TRANSPORT`` / the registry
    default): one UDP transport owns all of the proxy's sockets, one inproc
    transport keeps all of its simulated channels seeded from one root.

    A Proxy is a context manager; leaving the ``with`` block calls
    :meth:`shutdown`.
    """

    def __init__(self, name: str = "proxy",
                 engine: Union[str, ExecutionEngine, None] = None,
                 transport: Union[str, Transport, None] = None) -> None:
        self.name = name
        self._owns_engine = not isinstance(engine, ExecutionEngine)
        self._engine = resolve_engine(engine)
        self._owns_transport = not isinstance(transport, Transport)
        self._transport = resolve_transport(transport)
        self._streams: Dict[str, ControlThread] = {}
        self._lock = threading.RLock()
        self._shutdown = False
        # Fleet observability: make this proxy visible to scrape-time
        # collectors and bring up the /metrics server if the environment
        # asks for one (REPRO_METRICS_ADDR; both are no-ops otherwise).
        register_proxy(self)
        ensure_default_server()

    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine shared by this proxy's streams."""
        return self._engine

    @property
    def transport(self) -> Transport:
        """The transport shared by this proxy's streams."""
        return self._transport

    def open_channel(self, name: str = "default", **options):
        """Open a datagram channel on the proxy's transport."""
        return self._transport.open_channel(name, **options)

    # ----------------------------------------------------------------- streams

    def add_stream(self, source: SourceEndPoint, sink: SinkEndPoint,
                   name: Optional[str] = None, auto_start: bool = True,
                   error_policy=None) -> ControlThread:
        """Create (and by default start) a new proxied stream.

        ``error_policy`` selects the stream's supervision strategy (a mode
        name, :class:`~repro.core.supervision.ErrorPolicy`, or dict; see
        that module).  ``None`` keeps the stream unsupervised.
        """
        with self._lock:
            if self._shutdown:
                raise CompositionError(f"proxy {self.name!r} has been shut down")
            stream_name = name or f"stream-{len(self._streams)}"
            if stream_name in self._streams:
                raise CompositionError(
                    f"stream {stream_name!r} already exists on proxy {self.name!r}")
            control = ControlThread(source, sink, name=stream_name,
                                    auto_start=auto_start, engine=self._engine,
                                    transport=self._transport,
                                    error_policy=error_policy)
            self._streams[stream_name] = control
            return control

    def stream(self, name: str) -> ControlThread:
        """Look up a stream by name."""
        with self._lock:
            if name not in self._streams:
                raise CompositionError(
                    f"no stream named {name!r} on proxy {self.name!r}")
            return self._streams[name]

    @property
    def streams(self) -> Dict[str, ControlThread]:
        with self._lock:
            return dict(self._streams)

    def stream_names(self) -> List[str]:
        with self._lock:
            return list(self._streams)

    def remove_stream(self, name: str, timeout: float = 5.0) -> None:
        """Shut down and forget one stream."""
        with self._lock:
            control = self._streams.pop(name, None)
        if control is not None:
            control.shutdown(timeout=timeout)

    # ------------------------------------------------------------------ state

    def describe(self) -> Dict[str, List[dict]]:
        """Chain descriptions for every stream (for the ControlManager)."""
        with self._lock:
            return {name: control.describe()
                    for name, control in self._streams.items()}

    def snapshot(self) -> Dict[str, dict]:
        """Serialisable snapshots of every stream."""
        with self._lock:
            return {name: control.snapshot().to_dict()
                    for name, control in self._streams.items()}

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every stream (and an engine this proxy owns).  Idempotent."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            streams = list(self._streams.values())
        for control in streams:
            control.shutdown(timeout=timeout)
        if self._owns_engine:
            self._engine.shutdown(timeout=timeout)
        if self._owns_transport:
            self._transport.close()

    def __enter__(self) -> "Proxy":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Proxy {self.name!r} streams={self.stream_names()}>"


def null_proxy(source: SourceEndPoint, sink: SinkEndPoint,
               name: str = "null-proxy",
               engine: Union[str, ExecutionEngine, None] = None,
               transport: Union[str, Transport, None] = None) -> ControlThread:
    """Build the paper's "null proxy": two EndPoints and a ControlThread.

    Data flows from ``source`` to ``sink`` unmodified until filters are
    inserted via the returned ControlThread.
    """
    return ControlThread(source, sink, name=name, auto_start=True,
                         engine=engine, transport=transport)
