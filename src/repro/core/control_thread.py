"""The ControlThread — dynamic composition of filters on a running stream.

"A ControlThread object is responsible for managing the insertion, deletion,
and ordering of the filters associated with the stream."  It owns the Filter
Vector (the ordered list of active filters between the two EndPoints) and
performs every reconfiguration with the detachable-stream pause/reconnect
protocol, so that:

* no byte is lost, duplicated, or reordered by a reconfiguration, and
* the stream's EndPoints (and therefore the remote peers) never notice.

The insertion algorithm mirrors the paper's ``add()`` excerpt::

    LeftFilter.DOS.pause();
    LeftFilter.DOS.reconnect(F.DIS);
    RightFilter.DIS.reconnect(F.DOS);
    F.start();
    V.insertElement(F, pos);
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence, Union

from ..obs.events import (
    EVENT_SPLICE_INSERT,
    EVENT_SPLICE_REMOVE,
    EVENT_STREAM_START,
    EVENT_STREAM_STOP,
    get_event_log,
    new_correlation_id,
)
from ..runtime import ExecutionEngine, resolve_engine
from ..streams import StreamClosedError
from ..transport.base import Transport, resolve_transport
from .endpoints import SinkEndPoint, SourceEndPoint
from .errors import CompositionError
from .filter import Filter
from .stats import ChainSnapshot
from .supervision import ErrorPolicy, StreamSupervisor

#: How long composition operations wait for buffers to drain / filters to
#: quiesce before giving up.
DEFAULT_OPERATION_TIMEOUT = 10.0

FilterRef = Union[int, str, Filter]


class ControlThread:
    """Manages the filter chain of one proxied data stream.

    Parameters
    ----------
    source:
        The upstream EndPoint (data enters the chain here).
    sink:
        The downstream EndPoint (data leaves the chain here).
    name:
        Stream name used in snapshots and control-protocol replies.
    auto_start:
        When True (default) the EndPoints are connected and started
        immediately, forming the paper's "null proxy".
    engine:
        The execution engine running the chain elements: an
        :class:`~repro.runtime.ExecutionEngine` instance, a registered
        engine name (``"threaded"``, ``"event"``), or None to consult
        ``REPRO_ENGINE`` / the registry default.  Passing a shared instance
        (as :class:`~repro.core.proxy.Proxy` does) multiplexes several
        streams onto one engine; an engine resolved from a name/None is
        owned by this ControlThread and shut down with it.
    transport:
        The network substrate available to this stream (reachable as
        :attr:`transport` / :meth:`open_channel`): a
        :class:`~repro.transport.base.Transport` instance, a registered
        transport name (``"inproc"``, ``"udp"``, ``"loopback"``), or None
        to consult ``REPRO_TRANSPORT`` / the registry default.  A
        name/None is resolved *lazily* on first use, so streams that never
        touch the transport never instantiate one.  Ownership follows the
        engine rule: a shared instance (as ``Proxy`` passes) outlives the
        stream, a transport resolved from a name/None is closed with it.
    """

    def __init__(self, source: SourceEndPoint, sink: SinkEndPoint,
                 name: str = "stream", auto_start: bool = True,
                 operation_timeout: float = DEFAULT_OPERATION_TIMEOUT,
                 engine: Union[str, ExecutionEngine, None] = None,
                 transport: Union[str, Transport, None] = None,
                 error_policy=None) -> None:
        self.name = name
        self.source = source
        self.sink = sink
        self.operation_timeout = operation_timeout
        #: How filter crashes/stalls are handled (see
        #: :mod:`repro.core.supervision`).  ``None`` — the default — means
        #: unsupervised: no watcher thread, byte-identical legacy behaviour.
        self.error_policy = ErrorPolicy.resolve(error_policy)
        self._supervisor: Optional[StreamSupervisor] = None
        self._owns_engine = not isinstance(engine, ExecutionEngine)
        self.engine = resolve_engine(engine)
        self._owns_transport = not isinstance(transport, Transport)
        self._transport_arg = transport
        self._transport: Optional[Transport] = (
            transport if isinstance(transport, Transport) else None)
        self._filters: List[Filter] = []
        self._lock = threading.RLock()
        self._idle_cond = threading.Condition()
        self._idle_waiters = 0
        #: Idle-waiter wakeups delivered (plain int: only ever incremented
        #: on the gated waiters-present branch, never on the bare data path).
        self.idle_wakeups = 0
        #: Correlation id stamped on every event this stream emits.
        self.correlation_id = new_correlation_id()
        self._started = False
        self._shutdown = False
        if auto_start:
            self.start()

    def _emit_event(self, event: str, **fields) -> None:
        """Append one control-plane event to the process event log."""
        get_event_log().emit(event, stream=self.name,
                             cid=self.correlation_id, **fields)

    # ----------------------------------------------------------------- setup

    def start(self) -> None:
        """Wire up the chain and start every element.

        With no filters this forms the paper's "null proxy" (source connected
        straight to sink); filters added *before* start are wired statically
        in order, which is how a pre-composed proxy (e.g. one created with
        FEC already required) comes up without a transient unprotected
        window.
        """
        with self._lock:
            if self._started:
                return
            chain = [self.source, *self._filters, self.sink]
            for filter_obj in self._filters:
                self._apply_policy_flags(filter_obj)
            for left, right in zip(chain, chain[1:]):
                left.dos.connect(right.dis)
            for element in chain:
                element.add_activity_listener(self._on_element_activity)
                self.engine.start_element(element)
            self._started = True
            if self.error_policy is not None and self._supervisor is None:
                self._supervisor = StreamSupervisor(
                    self, self.error_policy).start()
        self._emit_event(EVENT_STREAM_START,
                         engine=getattr(self.engine, "name", ""),
                         filters=[f.name for f in self.filters],
                         policy=(self.error_policy.mode
                                 if self.error_policy else ""))

    def _apply_policy_flags(self, filter_obj: Filter) -> None:
        """Prepare a filter for this stream's error policy.

        Under a recoverable policy a crashing filter must *not* close its
        downstream — the supervisor is about to splice around it, and a
        premature EOF would end the stream it is trying to save.
        """
        if self.error_policy is not None and self.error_policy.recoverable:
            filter_obj.close_output_on_error = False

    # -------------------------------------------------------------- transport

    @property
    def transport(self) -> Transport:
        """The stream's network substrate (resolved lazily on first use)."""
        if self._transport is None:
            with self._lock:
                if self._transport is None:
                    self._transport = resolve_transport(self._transport_arg)
        return self._transport

    def open_channel(self, name: str = "default", **options):
        """Open a datagram channel on this stream's transport."""
        return self.transport.open_channel(name, **options)

    # ------------------------------------------------------------ inspection

    @property
    def filters(self) -> List[Filter]:
        """The current Filter Vector (a copy)."""
        with self._lock:
            return list(self._filters)

    def filter_count(self) -> int:
        with self._lock:
            return len(self._filters)

    def filter_names(self) -> List[str]:
        with self._lock:
            return [f.name for f in self._filters]

    def elements(self) -> List[Filter]:
        """Source, filters, sink — the full chain in stream order."""
        with self._lock:
            return [self.source, *self._filters, self.sink]

    def position_of(self, ref: FilterRef) -> int:
        """Resolve a filter reference (index, name, or object) to its index."""
        with self._lock:
            if isinstance(ref, Filter):
                for index, filter_obj in enumerate(self._filters):
                    if filter_obj is ref:
                        return index
                raise CompositionError(f"filter {ref.name!r} is not in this chain")
            if isinstance(ref, str):
                for index, filter_obj in enumerate(self._filters):
                    if filter_obj.name == ref:
                        return index
                raise CompositionError(f"no filter named {ref!r} in this chain")
            index = int(ref)
            if not 0 <= index < len(self._filters):
                raise CompositionError(
                    f"filter position {index} outside [0, {len(self._filters)})")
            return index

    def describe(self) -> List[dict]:
        """Descriptions of the chain elements, in stream order."""
        return [element.describe() for element in self.elements()]

    def snapshot(self) -> ChainSnapshot:
        """A serialisable snapshot of the chain (for the ControlManager)."""
        with self._lock:
            return ChainSnapshot(
                stream_name=self.name,
                filter_names=[f.name for f in self._filters],
                filter_types=[f.type_name for f in self._filters],
                filter_stats=[f.stats.snapshot() for f in self._filters],
                source_stats=self.source.stats.snapshot(),
                sink_stats=self.sink.stats.snapshot(),
                running=self.running,
            )

    @property
    def running(self) -> bool:
        """True while both EndPoints are alive."""
        return self.source.running or self.sink.running

    # ------------------------------------------------------------- composition

    def add(self, filter_obj: Filter, position: Optional[int] = None,
            boundary: Optional[Callable[[bytes], bool]] = None,
            timeout: Optional[float] = None) -> int:
        """Insert ``filter_obj`` into the running stream.

        ``position`` is the index in the Filter Vector (0 = immediately
        after the source); the default appends just before the sink.  When
        ``boundary`` is given, the upstream element is first asked to hold
        at the next unit satisfying the predicate so the new filter starts
        at a stream-type-specific boundary (Section 3 of the paper).

        Returns the position at which the filter was inserted.
        """
        timeout = self.operation_timeout if timeout is None else timeout
        if filter_obj.running or filter_obj.finished:
            raise CompositionError(
                f"filter {filter_obj.name!r} has already been started")
        if filter_obj.dis.connected or filter_obj.dos.connected:
            raise CompositionError(
                f"filter {filter_obj.name!r} is already connected to a stream")
        with self._lock:
            self._ensure_not_shutdown()
            if position is None:
                position = len(self._filters)
            if not 0 <= position <= len(self._filters):
                raise CompositionError(
                    f"insert position {position} outside [0, {len(self._filters)}]")
            if not self._started:
                # Static composition: the chain is wired when start() runs.
                self._filters.insert(position, filter_obj)
                return position
            chain = self.elements()
            left = chain[position]
            right = chain[position + 1]

            if boundary is not None:
                # Ask the upstream element to stop emitting at the next
                # stream boundary; even if the hold times out (idle stream)
                # the predicate is cleared again in the finally block below.
                left.hold_at_boundary(boundary, timeout=timeout)

            try:
                # The paper's protocol: pause the left DOS (the right DIS is
                # implicitly paused once the buffer drains), then re-splice.
                left.dos.pause(drain_timeout=timeout)
                left.dos.reconnect(filter_obj.dis)
                filter_obj.dos.reconnect(right.dis)
            except StreamClosedError as exc:
                raise CompositionError(
                    f"cannot insert {filter_obj.name!r}: the stream upstream of "
                    f"position {position} has already ended ({exc})") from exc
            finally:
                if boundary is not None:
                    left.release_hold()
            self._apply_policy_flags(filter_obj)
            filter_obj.add_activity_listener(self._on_element_activity)
            self.engine.start_element(filter_obj)
            self._filters.insert(position, filter_obj)
        self._emit_event(EVENT_SPLICE_INSERT, filter=filter_obj.name,
                         type=filter_obj.type_name, position=position)
        return position

    def remove(self, ref: FilterRef, timeout: Optional[float] = None,
               stop_filter: bool = True) -> Filter:
        """Remove a filter from the running stream without losing data.

        The upstream DOS is paused, the filter is allowed to finish
        processing everything already delivered to it (``quiesce``), its own
        DOS is paused to drain its output, and only then is the chain
        re-spliced around it.  Returns the removed filter.
        """
        timeout = self.operation_timeout if timeout is None else timeout
        with self._lock:
            self._ensure_not_shutdown()
            position = self.position_of(ref)
            filter_obj = self._filters[position]
            if not self._started:
                self._filters.pop(position)
                return filter_obj
            chain = self.elements()
            left = chain[position]
            right = chain[position + 2]

            if left.dos.closed:
                # The stream already ended; the filter has seen (or will see)
                # end-of-stream, so it only needs to be unlinked.
                self._filters.pop(position)
            elif filter_obj.finished:
                # The filter's worker has already exited (it crashed or was
                # stopped).  Its input can never drain, so splice around the
                # dead element without the drain step; whatever it had
                # buffered is already lost with it.
                left.dos.detach()
                filter_obj.dos.detach()
                if not right.dis.connected:
                    left.dos.reconnect(right.dis)
                self._filters.pop(position)
            else:
                left.dos.pause(drain_timeout=timeout)
                if not filter_obj.quiesce(timeout=timeout):
                    # Put the chain back together before reporting failure.
                    left.dos.reconnect(filter_obj.dis)
                    raise CompositionError(
                        f"filter {filter_obj.name!r} failed to quiesce within {timeout}s")
                if not filter_obj.dos.closed:
                    # Push out anything the filter still holds internally
                    # (e.g. a partially filled FEC group), then drain it.
                    filter_obj.flush_state()
                    filter_obj.dos.pause(drain_timeout=timeout)
                left.dos.reconnect(right.dis)
                self._filters.pop(position)
        if stop_filter:
            self.engine.stop_element(filter_obj)
        self._emit_event(EVENT_SPLICE_REMOVE, filter=filter_obj.name,
                         type=filter_obj.type_name, position=position)
        return filter_obj

    def replace(self, ref: FilterRef, new_filter: Filter,
                timeout: Optional[float] = None) -> Filter:
        """Swap one filter for another at the same position."""
        with self._lock:
            position = self.position_of(ref)
            old = self.remove(position, timeout=timeout)
            self.add(new_filter, position=position, timeout=timeout)
            return old

    def move(self, ref: FilterRef, new_position: int,
             timeout: Optional[float] = None) -> None:
        """Move a filter to a different position in the chain."""
        with self._lock:
            position = self.position_of(ref)
            if not 0 <= new_position < len(self._filters):
                raise CompositionError(
                    f"target position {new_position} outside "
                    f"[0, {len(self._filters)})")
            if new_position == position:
                return
            filter_obj = self._filters[position]
            # A moved filter keeps its internal state but is re-spliced, so
            # it must be restartable: we remove it without stopping the
            # worker thread and re-splice it at the new location.
            self.remove(position, timeout=timeout, stop_filter=False)
            self._readd_running(filter_obj, new_position, timeout=timeout)

    def reorder(self, new_order: Sequence[FilterRef],
                timeout: Optional[float] = None) -> None:
        """Rearrange the whole chain to match ``new_order``.

        ``new_order`` must reference every current filter exactly once.
        """
        with self._lock:
            positions = [self.position_of(ref) for ref in new_order]
            if sorted(positions) != list(range(len(self._filters))):
                raise CompositionError(
                    "reorder must reference every filter exactly once")
            desired = [self._filters[p] for p in positions]
            for target_index, filter_obj in enumerate(desired):
                current_index = self.position_of(filter_obj)
                if current_index != target_index:
                    self.move(filter_obj, target_index, timeout=timeout)

    def _readd_running(self, filter_obj: Filter, position: int,
                       timeout: Optional[float]) -> None:
        """Splice an already-running filter back into the chain."""
        timeout = self.operation_timeout if timeout is None else timeout
        chain = self.elements()
        left = chain[position]
        right = chain[position + 1]
        left.dos.pause(drain_timeout=timeout)
        left.dos.reconnect(filter_obj.dis)
        filter_obj.dos.reconnect(right.dis)
        self._filters.insert(position, filter_obj)

    # ------------------------------------------------------------- idle waits

    def _on_element_activity(self) -> None:
        # Fires after every chunk on the data path, so stay off the lock
        # unless someone is actually blocked in wait_idle.  The waiter count
        # is incremented under the condition lock *before* the waiter's
        # first predicate check, so (with the GIL making the write visible)
        # any activity that matters either happens-before that check or
        # observes a non-zero count and notifies.
        if not self._idle_waiters:
            return
        self.idle_wakeups += 1
        with self._idle_cond:
            self._idle_cond.notify_all()

    @staticmethod
    def _chain_idle(elements: List[Filter],
                    extra: Optional[Callable[[], bool]]) -> bool:
        if extra is not None and not extra():
            return False
        return all(element.is_idle() or element.finished
                   for element in elements)

    def wait_idle(self, timeout: Optional[float] = None,
                  extra: Optional[Callable[[], bool]] = None) -> bool:
        """Block until every chain element is idle (event-driven, no polling).

        "Idle" means no buffered input, no in-flight transform and no parked
        output on any element — data already delivered to the chain has been
        pushed all the way to the sink (internal state like a partially
        filled FEC group counts as idle; it holds data by design).  ``extra``
        is an additional predicate that must also be true (e.g. "the feed
        queue is empty"); it is re-evaluated under the same condition
        variable, which every element notifies after each unit of work.
        Returns True once idle, False on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle_cond:
            self._idle_waiters += 1
        try:
            while True:
                # Snapshot the chain WITHOUT holding _idle_cond: elements()
                # takes the composition lock, which add()/remove() hold for
                # a whole splice, and data-path threads must never be made
                # to wait behind it via _on_element_activity.  A chain
                # mutation between snapshot and check is caught on the next
                # iteration (composition itself generates activity).
                elements = self.elements()
                with self._idle_cond:
                    if self._chain_idle(elements, extra):
                        return True
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return False
                    self._idle_cond.wait(remaining)
        finally:
            with self._idle_cond:
                self._idle_waiters -= 1

    # --------------------------------------------------------------- teardown

    def wait_for_completion(self, timeout: Optional[float] = None) -> bool:
        """Wait until the stream's end-of-file has flowed through to the sink."""
        return self.sink.wait_for_eof(timeout=timeout)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every element of the chain.  Idempotent."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            elements = [self.source, *self._filters, self.sink]
        if self._supervisor is not None:
            # Stopped before the elements so a crash *during* teardown is
            # never mistaken for a recoverable failure.
            self._supervisor.stop()
            self._supervisor = None
        if self._started:
            self._emit_event(EVENT_STREAM_STOP,
                             filters=[f.name for f in elements[1:-1]])
        for element in elements:
            self.engine.stop_element(element, timeout=timeout)
        # Close sink-to-source, DIS before DOS: closing a DIS wakes any
        # writer blocked on its full buffer, so an upstream DOS close can
        # never deadlock behind a write that holds the DOS lock (e.g. a
        # stalled consumer at teardown).
        for element in reversed(elements):
            try:
                element.dis.close()
            except Exception:  # noqa: BLE001 - best effort teardown
                pass
            try:
                element.dos.close()
            except Exception:  # noqa: BLE001
                pass
        if self._owns_engine:
            self.engine.shutdown(timeout=timeout)
        if self._owns_transport and self._transport is not None:
            self._transport.close()

    def _ensure_not_shutdown(self) -> None:
        if self._shutdown:
            raise CompositionError("the stream has been shut down")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ControlThread {self.name!r} filters={self.filter_names()} "
                f"running={self.running}>")
