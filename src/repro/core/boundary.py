"""Stream-boundary predicates for boundary-aware filter insertion.

Section 3 of the paper requires that some filters be inserted only at points
"specific to the stream type" — the FEC video filter, for instance, must
start at a frame boundary.  The ControlThread implements this by asking the
upstream element to *hold* just before it emits a unit satisfying a boundary
predicate; the splice then happens at that point and the matching unit is
the first thing the newly inserted filter receives.

A predicate receives the packet that is about to be emitted (raw packet
bytes, with any stream framing already stripped) and returns True when the
stream may be cut immediately before it.
"""

from __future__ import annotations

from typing import Callable

from ..media.packetizer import MediaPacket, MediaPacketError
from ..media.video import FRAME_B, FRAME_I, FRAME_P

BoundaryPredicate = Callable[[bytes], bool]


def any_packet_boundary(_packet: bytes) -> bool:
    """Every packet boundary is acceptable (the default for audio)."""
    return True


def _frame_type_of(packet: bytes) -> int:
    try:
        return MediaPacket.unpack(packet).marker
    except MediaPacketError:
        return 0


def i_frame_boundary(packet: bytes) -> bool:
    """Cut just before an I frame.

    Used for video FEC insertion: the inserted filter's very first input is
    the I frame that opens a GOP, so it never starts mid-group-of-pictures.
    """
    return _frame_type_of(packet) == FRAME_I


#: A GOP boundary is exactly the point before an I frame.
gop_boundary = i_frame_boundary


def frame_type_boundary(*frame_types: int) -> BoundaryPredicate:
    """A predicate allowing cuts just before any of the given frame types."""
    allowed = set(frame_types) or {FRAME_I, FRAME_P, FRAME_B}

    def predicate(packet: bytes) -> bool:
        return _frame_type_of(packet) in allowed

    return predicate


def sequence_multiple_boundary(multiple: int) -> BoundaryPredicate:
    """Cut just before packets whose sequence number is a multiple of ``multiple``.

    Useful for aligning an insertion with FEC group boundaries (e.g.
    ``sequence_multiple_boundary(4)`` for a (6, 4) code keeps groups aligned
    with the original packetisation).
    """
    if multiple <= 0:
        raise ValueError("multiple must be positive")

    def predicate(packet: bytes) -> bool:
        try:
            media = MediaPacket.unpack(packet)
        except MediaPacketError:
            return False
        return media.sequence % multiple == 0

    return predicate
