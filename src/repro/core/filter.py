"""The Filter base classes — the components a proxy composes.

The paper's ``Filter`` class "is meant to be extended by all proxy filters
that are to be run in the proposed framework.  The class contains an
instance of DIS and DOS that are always present.  The ControlThread uses the
DIS and DOS to manipulate the stream connections."  This module provides the
Python equivalents:

* :class:`Filter` — a byte-oriented filter running in its own thread.  Data
  read from the filter's DIS is passed to :meth:`Filter.transform`; whatever
  the transform returns is written to the filter's DOS.
* :class:`PacketFilter` — a filter operating on framed packets (see
  :mod:`repro.streams.framing`); FEC encoders/decoders and media transcoders
  subclass this.
* :class:`FilterContainer` — the paper's container used to hold groups of
  filters uploaded into a proxy.

Filters cooperate with the ControlThread's splice protocol: a filter can be
asked to *hold* at the next stream boundary (:meth:`Filter.hold_at_boundary`)
and to *quiesce* (finish processing everything already delivered to it)
before it is removed from a chain.

Execution is pluggable (see :mod:`repro.runtime`): the pure pump step —
read available input, transform it, emit the results, honouring boundary
holds — is factored into :meth:`Filter.pump`, which an event-driven engine
invokes from a single scheduler thread whenever the filter's DIS reports
readiness; the classic thread-per-filter worker loop (:meth:`Filter._run`)
remains as the reference execution mode used by ``filter.start()``.
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic as _monotonic
from time import sleep as _sleep
from typing import Callable, Deque, Iterable, List, Optional, Union

from ..streams import (
    DEFAULT_CAPACITY,
    BrokenStreamError,
    DetachableInputStream,
    DetachableOutputStream,
    FrameDecoder,
    NotConnectedError,
    StreamClosedError,
    StreamTimeoutError,
    encode_frame,
)
from .errors import FilterStateError
from .stats import FilterStats

#: A transform may return nothing, one chunk, or several chunks.
TransformResult = Union[None, bytes, Iterable[bytes]]

#: Predicate deciding whether a just-emitted packet ends a stream boundary.
BoundaryPredicate = Callable[[bytes], bool]

#: Default number of input chunks a filter moves per lock/scheduler
#: round-trip.  One read drains up to this many queued chunks, and their
#: outputs are delivered in one batched write, so the per-hop locking and
#: wakeup costs amortize across the batch.  Resolved at construction time
#: (not def-time) so tests can pin the unbatched path.
DEFAULT_PUMP_BUDGET = 64

_name_lock = threading.Lock()
_name_counter = 0


def _auto_name(prefix: str) -> str:
    global _name_counter
    with _name_lock:
        _name_counter += 1
        return f"{prefix}-{_name_counter}"


class Filter:
    """A byte-stream filter with its own DIS, DOS, and worker thread.

    Lifecycle: construct → (ControlThread connects the DIS/DOS) →
    :meth:`start` → worker thread loops reading, transforming, writing →
    end-of-stream or :meth:`stop`.

    Subclasses usually override only :meth:`transform` (per input chunk) and
    optionally :meth:`finalize` (to emit trailing output at end-of-stream)
    and :meth:`on_start` / :meth:`on_stop`.
    """

    #: Human-readable type name used by the registry and the ControlManager.
    type_name = "filter"

    #: Whether this element can be pumped cooperatively from a shared
    #: scheduler thread.  Elements that perform blocking external I/O in
    #: their run loop (source endpoints, socket sinks) set this to False and
    #: always get a dedicated thread, whatever the execution engine.
    cooperative_capable = True

    def __init__(self, name: Optional[str] = None, read_timeout: float = 0.05,
                 chunk_size: int = 8192, propagate_eof: bool = True,
                 pump_budget: Optional[int] = None) -> None:
        if read_timeout <= 0:
            raise ValueError("read_timeout must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if pump_budget is None:
            pump_budget = DEFAULT_PUMP_BUDGET
        if pump_budget <= 0:
            raise ValueError("pump_budget must be positive")
        self.name = name or _auto_name(self.type_name)
        self.read_timeout = read_timeout
        self.chunk_size = chunk_size
        self.pump_budget = pump_budget
        self.propagate_eof = propagate_eof
        # Whether a filter *error* closes the downstream side (normal EOF
        # always honours propagate_eof alone).  Stream supervision clears
        # this under restart/bypass policies: a crashed filter about to be
        # spliced out must not hand its successor a premature EOF.
        self.close_output_on_error = True

        # Size the input buffer to hold *two* full pump budgets: one batch
        # being transformed and one the upstream hop deposits meanwhile, so
        # neighbouring hops double-buffer instead of blocking in lock-step
        # on every batch — capped so large-chunk_size filters don't get a
        # backpressure window big enough to hide real latency from the
        # flow control.
        self.dis = DetachableInputStream(
            name=f"{self.name}.dis",
            capacity=max(DEFAULT_CAPACITY,
                         min(2 * chunk_size * pump_budget,
                             16 * DEFAULT_CAPACITY)))
        self.dos = DetachableOutputStream(name=f"{self.name}.dos")
        self.stats = FilterStats()
        self.error: Optional[BaseException] = None

        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._finished = threading.Event()
        self._started = False
        self._busy = False

        # Cooperative (event-engine) execution state.
        self._engine = None
        self._cooperative = False
        self._pending: Deque[bytes] = deque()
        self._on_start_done = False
        self._finalized = False

        # Scratch counters written by transform_chunks as it consumes input,
        # read by the run loop / pump in a ``finally`` so mid-batch errors
        # account only the chunks actually handed to the transform.
        self._batch_in_bytes = 0
        self._batch_in_chunks = 0

        # Listeners notified after every unit of work (used by
        # ControlThread.wait_idle so completion waits are event-driven).
        self._activity_listeners: List[Callable[[], None]] = []

        # Boundary-hold support (used for boundary-aware insertion).
        self._hold_lock = threading.Lock()
        self._boundary_predicate: Optional[BoundaryPredicate] = None
        self._held = threading.Event()
        self._resume = threading.Event()

    # ------------------------------------------------------------- accessors

    def get_dis(self) -> DetachableInputStream:
        """Paper-style accessor for the filter's input stream."""
        return self.dis

    def get_dos(self) -> DetachableOutputStream:
        """Paper-style accessor for the filter's output stream."""
        return self.dos

    def set_dis(self, dis: DetachableInputStream) -> None:
        """Replace the filter's input stream (only before the filter starts)."""
        if self._started:
            raise FilterStateError(f"{self.name}: cannot replace DIS after start")
        self.dis = dis

    def set_dos(self, dos: DetachableOutputStream) -> None:
        """Replace the filter's output stream (only before the filter starts)."""
        if self._started:
            raise FilterStateError(f"{self.name}: cannot replace DOS after start")
        self.dos = dos

    def get_id(self) -> str:
        """Paper-style accessor for the filter's identity."""
        return self.name

    @property
    def running(self) -> bool:
        """True while the filter is executing (worker thread or engine)."""
        if self._thread is not None:
            return self._thread.is_alive()
        return self._cooperative and not self._finished.is_set()

    @property
    def finished(self) -> bool:
        """True once the run loop has exited (EOF, stop, or error)."""
        return self._finished.is_set()

    @property
    def cooperative(self) -> bool:
        """True when the filter is driven by a cooperative engine's pump."""
        return self._cooperative

    @property
    def pending_output(self) -> bool:
        """True while emitted-but-undelivered output awaits a flush."""
        return bool(self._pending)

    @property
    def stop_requested(self) -> bool:
        """True once :meth:`stop` has been called."""
        return self._stop_event.is_set()

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "Filter":
        """Start the worker thread.  A filter can be started only once.

        This is the thread-per-filter reference mode; an execution engine
        (see :mod:`repro.runtime`) may instead take ownership of the filter
        with :meth:`bind_engine` and drive it via :meth:`pump`.
        """
        if self._started:
            raise FilterStateError(f"{self.name}: already started")
        self._started = True
        self._thread = threading.Thread(target=self._run, name=self.name,
                                        daemon=True)
        self._thread.start()
        return self

    def bind_engine(self, engine) -> "Filter":
        """Hand execution of this filter to a cooperative engine.

        The engine must call :meth:`pump` whenever the filter may be ready;
        the filter's streams are subscribed to the engine's per-element
        notification for exactly that.  Mutually exclusive with
        :meth:`start`.
        """
        if self._started:
            raise FilterStateError(f"{self.name}: already started")
        self._started = True
        self._cooperative = True
        self._engine = engine
        self.dis.subscribe(self._notify_engine)
        self.dos.subscribe(self._notify_engine)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the run loop to exit and wait for it.

        Stopping does *not* close the filter's streams (the ControlThread
        re-splices them); stopping a never-started filter is a no-op.
        """
        self._stop_event.set()
        self._resume.set()  # never leave a held filter stuck
        self._notify_engine()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        elif self._cooperative:
            self._finished.wait(timeout=timeout)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the filter's run loop to finish; True if it did."""
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            return not self._thread.is_alive()
        if self._cooperative:
            return self._finished.wait(timeout=timeout)
        return True

    def wait_finished(self, timeout: Optional[float] = None) -> bool:
        """Wait until the filter's run loop has completed."""
        return self._finished.wait(timeout=timeout)

    def abandon(self, error: BaseException) -> None:
        """Declare a wedged filter dead without waiting for its thread.

        The stall watchdog uses this when a filter holds queued input but
        makes no progress: the filter is marked errored and *finished* so
        the ControlThread's dead-filter splice applies, letting supervision
        route around it.  The worker thread (if any) is asked to stop but
        not joined — a transform blocked in C or a long sleep cannot be
        interrupted; once the chain is re-spliced around it, its next write
        hits a detached stream and the thread exits on its own.
        """
        if self.error is None:
            self.error = error
            self.stats.record_error()
        self._stop_event.set()
        self._resume.set()
        self._notify_engine()
        self._finished.set()
        self._notify_activity()

    # ------------------------------------------------------------ hold/quiesce

    def hold_at_boundary(self, predicate: Optional[BoundaryPredicate] = None,
                         timeout: Optional[float] = None) -> bool:
        """Pause this filter's *output* at the next stream boundary.

        The worker thread keeps processing until it is about to emit a unit
        for which ``predicate`` returns True (with no predicate, the very
        next unit), then blocks *before* emitting it until
        :meth:`release_hold` is called.  The downstream side therefore ends
        exactly at the boundary, and the unit that satisfied the predicate is
        the first thing delivered to whatever the stream is reconnected to.
        Returns True once the hold is in place, False on timeout.

        The ControlThread uses this for boundary-aware insertion (e.g. "only
        insert the video FEC filter so that it starts at an I frame").

        Units already handed to a batched delivery when the hold is armed
        still cross (up to one ``pump_budget`` of them; previously the
        in-flight window was a single unit), so predicates should match
        *recurring* boundaries — the next I frame, the next packet start —
        rather than one specific unit.  The composition protocol already
        tolerates this: a hold that never engages times out here and the
        caller proceeds with an unaligned splice.
        """
        with self._hold_lock:
            self._held.clear()
            self._resume.clear()
            self._boundary_predicate = predicate if predicate is not None else (
                lambda _unit: True)
        return self._held.wait(timeout=timeout)

    def release_hold(self) -> None:
        """Allow a held filter to continue emitting."""
        with self._hold_lock:
            self._boundary_predicate = None
        self._resume.set()
        self._notify_engine()

    @property
    def held(self) -> bool:
        """True while the filter is holding at a boundary."""
        return self._held.is_set() and not self._resume.is_set()

    def is_idle(self) -> bool:
        """True when the filter has no buffered or in-flight input/output."""
        return (self.dis.available() == 0 and not self._busy
                and not self._pending)

    def flush_state(self) -> None:
        """Emit any data the filter is holding internally (without closing).

        The ControlThread calls this when the filter is removed from a live
        chain so that buffered state — for example the partial FEC group an
        encoder is still filling — is pushed downstream rather than lost.
        The upstream side must already be paused and the filter quiescent.
        """
        self._emit(self.finalize())

    def quiesce(self, timeout: float = 5.0, poll_interval: float = 0.005) -> bool:
        """Wait until every byte already delivered to the filter has been
        processed and emitted downstream.  Returns True on success.

        The ControlThread calls this (after pausing the upstream DOS) before
        removing the filter, so removal never drops in-flight data.
        """
        deadline = _monotonic() + timeout
        while _monotonic() < deadline:
            if self.is_idle() or self.finished:
                return True
            _sleep(poll_interval)
        return self.is_idle() or self.finished

    # ------------------------------------------------------------- transform

    def transform(self, chunk: bytes) -> TransformResult:
        """Transform one input chunk; the default filter is a passthrough."""
        return chunk

    def transform_chunks(self, chunks: List[bytes], outputs) -> None:
        """Transform one input batch, appending results onto ``outputs``.

        The batched equivalent of calling :meth:`transform` per chunk, and
        the hook a subclass overrides to *fuse* work across the batch (the
        FEC filters run one vectorised encode/decode over every packet in
        the pump budget instead of per-packet calls).  Implementations must
        bump ``self._batch_in_bytes`` / ``self._batch_in_chunks`` as each
        input chunk is consumed — the caller reads them in a ``finally`` so
        a transform failing mid-batch accounts only the chunks it actually
        saw, and the outputs appended so far are still delivered.
        """
        for chunk in chunks:
            self._batch_in_bytes += len(chunk)
            self._batch_in_chunks += 1
            result = self.transform(chunk)
            cls = result.__class__
            if cls is bytes or cls is memoryview or cls is bytearray:
                if len(result):  # dominant case: one chunk out, by reference
                    outputs.append(result)
            elif result is not None:
                outputs.extend(self._normalize_outputs(result))

    def finalize(self) -> TransformResult:
        """Produce trailing output when the input stream ends."""
        return None

    def on_start(self) -> None:
        """Hook invoked in the worker thread before the read loop."""

    def on_stop(self) -> None:
        """Hook invoked in the worker thread after the read loop."""

    # -------------------------------------------------------------- main loop

    def _run(self) -> None:
        try:
            self.on_start()
            self._read_loop()
            if not self._stop_event.is_set():
                self._emit(self.finalize())
                if self.propagate_eof:
                    self._close_output()
        except (StreamClosedError, BrokenStreamError, NotConnectedError) as exc:
            # The chain was torn down around us; record and exit quietly.
            self.error = exc
            self.stats.record_error()
        except Exception as exc:  # noqa: BLE001 - surfaced via self.error
            self.error = exc
            self.stats.record_error()
            self._close_output_after_error()
        finally:
            try:
                self.on_stop()
            finally:
                self._finished.set()
                self._notify_activity()

    def _read_loop(self) -> None:
        # The byte budget is chunk_size * pump_budget, but queued chunks are
        # taken *whole* (no max_chunk): transforms are size-agnostic, and
        # re-fragmenting a large upstream chunk to the local chunk_size cost
        # a per-piece loop at every hop for nothing — it was the E6 64 KiB
        # regression.  chunk_size sizes the budget; the writer's own chunk
        # boundaries are the transform units.
        budget_bytes = self.chunk_size * self.pump_budget
        while not self._stop_event.is_set():
            try:
                chunks = self.dis.read_chunks(budget_bytes,
                                              timeout=self.read_timeout)
            except StreamTimeoutError:
                continue
            if not chunks:
                return  # end of stream
            self._busy = True
            try:
                outputs: List[bytes] = []
                self._batch_in_bytes = self._batch_in_chunks = 0
                try:
                    self.transform_chunks(chunks, outputs)
                except Exception:
                    # A transform failing mid-batch must not discard the
                    # outputs of the chunks before it — the per-chunk loop
                    # delivered those before erroring, and so do we.
                    try:
                        self._emit_units(outputs)
                    except Exception:  # noqa: BLE001 - keep the original error
                        pass
                    raise
                finally:
                    self.stats.record_input_batch(self._batch_in_bytes,
                                                  self._batch_in_chunks)
                    if self._batch_in_chunks >= self.pump_budget:
                        self.stats.record_budget_exhausted()
                self._emit_units(outputs)
            finally:
                self._busy = False
                self._notify_activity()

    # ------------------------------------------------------- cooperative pump

    def pump(self) -> bool:
        """Run one bounded execution step (the event-engine entry point).

        One step: flush any output parked by a boundary hold or a mid-splice
        detach, then drain up to a ``pump_budget`` of available input
        chunks, transform each and emit the combined results; at
        end-of-stream, finalize and complete.  The
        step never blocks — output is delivered with the non-blocking
        ``DOS.try_write`` and input is read only when the DIS reports bytes
        available — so any number of filters can be pumped from a single
        scheduler thread.  Returns True when the step made progress.

        Errors are handled exactly as in the threaded run loop: recorded on
        :attr:`error`, counted in stats, and the filter completes.
        """
        if self._finished.is_set():
            return False
        try:
            if not self._on_start_done:
                self._on_start_done = True
                self.on_start()
            progress = self._flush_pending()
            if self._stop_event.is_set():
                # Stop wins over parked output, as in the threaded teardown
                # path: the chain around us is being dismantled.
                self._complete()
                return True
            if self._pending:
                return progress  # parked at a boundary or across a splice
            return self._pump_input(progress)
        except (StreamClosedError, BrokenStreamError, NotConnectedError) as exc:
            self.error = exc
            self.stats.record_error()
            self._complete()
            return True
        except Exception as exc:  # noqa: BLE001 - surfaced via self.error
            self.error = exc
            self.stats.record_error()
            try:
                # Outputs queued by the chunks before the failing one must
                # still go downstream before the error closes the stream.
                self._flush_pending()
            except Exception:  # noqa: BLE001 - keep the original error
                pass
            self._close_output_after_error()
            self._complete()
            return True
        finally:
            self._notify_activity()

    def _pump_input(self, progress: bool) -> bool:
        """Consume one budget of input — the part of a pump step that differs
        between filters (read from the DIS) and sources (produce items).

        One step drains up to ``pump_budget`` queued chunks in a single
        buffer lock round-trip, transforms each, and flushes the combined
        output — so the scheduler's dirty-set and wakeup overhead
        amortizes across the batch instead of recurring per chunk.
        """
        if self.dis.available() > 0:
            # Whole queued chunks, no re-fragmentation — see _read_loop.
            chunks = self.dis.read_chunks(self.chunk_size * self.pump_budget,
                                          timeout=0)
            if chunks:
                self._busy = True
                self._batch_in_bytes = self._batch_in_chunks = 0
                try:
                    # Appending straight onto the pending deque means a
                    # transform failing mid-batch leaves the earlier chunks'
                    # outputs parked there, and pump()'s error handler
                    # flushes them downstream before closing — the same
                    # partial-delivery contract as the threaded loop.
                    self.transform_chunks(chunks, self._pending)
                finally:
                    self.stats.record_input_batch(self._batch_in_bytes,
                                                  self._batch_in_chunks)
                    if self._batch_in_chunks >= self.pump_budget:
                        self.stats.record_budget_exhausted()
                    self._busy = False
                self._flush_pending()
                return True
        if self.dis.at_eof():
            if not self._finalized:
                self._finalized = True
                self._queue_outputs(self.finalize())
            self._flush_pending()
            if not self._pending:
                if self.propagate_eof:
                    self._close_output()
                self._complete()
            return True
        return progress

    def _close_output_after_error(self) -> None:
        if self.propagate_eof and self.close_output_on_error:
            self._close_output()

    def _queue_outputs(self, result: TransformResult) -> None:
        """Normalise a transform result onto the pending-output queue."""
        self._pending.extend(self._normalize_outputs(result))

    def _flush_pending(self) -> bool:
        """Deliver queued output without blocking; True if any byte moved.

        Stops (leaving the remainder queued) when the unit about to be
        emitted satisfies an armed boundary predicate — the cooperative
        equivalent of :meth:`_maybe_hold`'s blocking wait — or when the DOS
        is detached mid-splice (retried on the reattach notification).
        """
        progress = False
        while self._pending:
            with self._hold_lock:
                predicate = self._boundary_predicate
            if predicate is None and len(self._pending) > 1:
                # No hold armed: move the whole parked batch in one
                # non-blocking, all-or-nothing delivery.
                batch = list(self._pending)
                if not self.dos.try_write_many(batch):
                    return progress
                if self._held.is_set():
                    self._held.clear()
                self._pending.clear()
                self._record_emit_batch(batch)
                progress = True
                continue
            data = self._pending[0]
            if (predicate is not None and not self._resume.is_set()
                    and self._unit_matches(predicate, data)):
                self._held.set()
                return progress
            if not self.dos.try_write(data):
                return progress
            if self._held.is_set():
                self._held.clear()
            self._pending.popleft()
            self._record_emit(data)
            progress = True
        return progress

    def _record_emit(self, data: bytes) -> None:
        """Account for one unit successfully delivered downstream."""
        self._last_emitted = data
        self.stats.record_output(len(data))

    def _record_emit_batch(self, batch: List[bytes]) -> None:
        """Account for a whole delivered batch with per-batch stats.

        Sources override this to keep their per-unit bookkeeping (item
        counts, pacing deadlines) exact.
        """
        self._last_emitted = batch[-1]
        self.stats.record_output_batch(sum(map(len, batch)), len(batch))

    def wants_input_pump(self) -> bool:
        """True when a pump step would have input-side work to do.

        The engine combines this with its own output-side gating (boundary
        holds, parked output, downstream high-water marks).
        """
        return self.dis.available() > 0 or self.dis.at_eof()

    def next_due_s(self) -> Optional[float]:
        """Monotonic deadline of this element's next timed pump, if any.

        Purely event-driven elements return None; paced cooperative sources
        return the instant their next item is due so the scheduler can sleep
        exactly until then (its timer wheel).
        """
        return None

    def _complete(self) -> None:
        """Mark a cooperatively executed filter as finished (idempotent)."""
        if self._finished.is_set():
            return
        try:
            if self._on_start_done:
                self.on_stop()
        finally:
            self._finished.set()
            self._notify_activity()

    def _notify_engine(self) -> None:
        engine = self._engine
        if engine is not None:
            engine.notify_element(self)

    # ---------------------------------------------------------- activity hook

    def add_activity_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after each unit of work completes.

        Used by :meth:`repro.core.control_thread.ControlThread.wait_idle` to
        turn completion polling into a condition-variable wait.  Duplicate
        registrations are ignored (by equality, so bound methods dedupe).
        """
        if listener not in self._activity_listeners:
            self._activity_listeners.append(listener)

    def _notify_activity(self) -> None:
        if not self._activity_listeners:
            return
        for listener in list(self._activity_listeners):
            try:
                listener()
            except Exception:  # noqa: BLE001 - listeners must not kill the filter
                pass

    @staticmethod
    def _normalize_outputs(result: TransformResult) -> List[bytes]:
        """Flatten a transform result into a list of non-empty chunks.

        Bytes-like results (and items) pass through by reference — the
        zero-copy contract from :mod:`repro.streams.buffer` extends through
        the transform; anything else is materialised once here.
        """
        if result is None:
            return []
        if isinstance(result, (bytes, bytearray, memoryview)):
            outputs: List[bytes] = [result]
        else:
            outputs = [item if isinstance(item, (bytes, bytearray, memoryview))
                       else bytes(item) for item in result]
        return [data for data in outputs if len(data)]

    def _emit(self, result: TransformResult) -> None:
        self._emit_units(self._normalize_outputs(result))

    def _emit_units(self, units: List[bytes]) -> None:
        """Deliver transformed units downstream, batching when possible.

        With no boundary hold armed, the whole batch goes out through one
        ``DOS.write_many`` — a single lock/connectivity round-trip and a
        single batch of stats.  While a hold is armed, units are emitted
        one at a time so :meth:`_maybe_hold` can stop the stream exactly at
        the boundary unit.  A hold armed mid-batch takes effect from the
        next batch, whose size is bounded by the pump budget.
        """
        if not units:
            return
        with self._hold_lock:
            hold_armed = self._boundary_predicate is not None
        if not hold_armed and len(units) > 1:
            self.dos.write_many(units)
            self._record_emit_batch(units)
            return
        for data in units:
            self._maybe_hold(data)
            self.dos.write(data)
            self._record_emit(data)

    def _maybe_hold(self, unit: bytes) -> None:
        """Honour a pending boundary hold before emitting ``unit``.

        If a hold is armed and the unit about to be emitted satisfies the
        boundary predicate, the worker blocks here until released; the
        downstream side is left cleanly cut at the boundary and ``unit``
        becomes the first thing sent over the new connection.
        """
        with self._hold_lock:
            predicate = self._boundary_predicate
        if predicate is None:
            return
        if not self._unit_matches(predicate, unit):
            return
        self._held.set()
        self._resume.wait()
        self._held.clear()

    #: The most recently emitted unit (kept for diagnostics and tests).
    _last_emitted: Optional[bytes] = None

    def _boundary_unit(self, unit: bytes) -> bytes:
        """The value handed to boundary predicates for ``unit``.

        Byte filters hand over the chunk itself; packet filters strip the
        framing so predicates see the application-level packet.
        """
        return unit

    def _unit_matches(self, predicate: BoundaryPredicate, unit: bytes) -> bool:
        if not isinstance(unit, bytes):
            # Predicates are written against real ``bytes`` (``startswith``
            # and friends); materialise views on this cold path only.
            unit = bytes(unit)
        try:
            return bool(predicate(self._boundary_unit(unit)))
        except Exception:  # noqa: BLE001 - a broken predicate must not kill the filter
            return True

    def _close_output(self) -> None:
        try:
            self.dos.close()
        except Exception:  # noqa: BLE001 - best effort during teardown
            pass

    def describe(self) -> dict:
        """A serialisable description of the filter (for the ControlManager)."""
        return {
            "name": self.name,
            "type": self.type_name,
            "running": self.running,
            "stats": self.stats.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} running={self.running}>"


class PacketFilter(Filter):
    """A filter that operates on framed packets rather than raw bytes.

    Input bytes are fed through a :class:`~repro.streams.framing.FrameDecoder`;
    each complete packet is handed to :meth:`transform_packet`, and every
    packet returned is re-framed onto the output stream.  Byte- and
    packet-oriented filters can therefore be mixed freely in one chain.
    """

    type_name = "packet-filter"

    #: Result type for packet transforms: none, one, or many packets.
    PacketResult = Union[None, bytes, Iterable[bytes]]

    #: When True, :meth:`transform_chunks` hands the whole batch of decoded
    #: packets to one :meth:`transform_packets` call instead of per-packet
    #: :meth:`transform_packet` calls — the hook the FEC filters use to run
    #: a single vectorised encode/decode over the full pump budget.
    fused_packet_batch = False

    def __init__(self, name: Optional[str] = None, read_timeout: float = 0.05,
                 chunk_size: int = 65536, propagate_eof: bool = True,
                 pump_budget: Optional[int] = None) -> None:
        super().__init__(name=name, read_timeout=read_timeout,
                         chunk_size=chunk_size, propagate_eof=propagate_eof,
                         pump_budget=pump_budget)
        self._decoder = FrameDecoder()
        self._last_packet: Optional[bytes] = None

    # -- packet-level hooks ----------------------------------------------------

    def transform_packet(self, packet: bytes) -> "PacketFilter.PacketResult":
        """Transform one packet; the default is a passthrough."""
        return packet

    def transform_packets(self, packets: List[bytes]) -> "PacketFilter.PacketResult":
        """Transform a whole batch of packets at once (fused mode).

        Called instead of :meth:`transform_packet` when
        :attr:`fused_packet_batch` is True; implementations must be
        byte-equivalent to transforming the packets one at a time.
        """
        raise NotImplementedError

    def finalize_packets(self) -> "PacketFilter.PacketResult":
        """Produce trailing packets at end-of-stream (e.g. flush FEC groups)."""
        return None

    # -- plumbing ---------------------------------------------------------------

    def transform(self, chunk: bytes) -> TransformResult:
        outputs: List[bytes] = []
        for packet in self._decoder.feed(chunk):
            self.stats.record_input(0, packets=1)
            outputs.extend(self._frame_all(self.transform_packet(packet)))
        return outputs

    def transform_chunks(self, chunks: List[bytes], outputs) -> None:
        """Decode the whole batch to packets, then transform them fused.

        With :attr:`fused_packet_batch` unset this is the per-chunk base
        behaviour.  Fused, every complete packet in the batch reaches
        :meth:`transform_packets` in one call — so a pump budget of FEC
        packets hits the numpy backend as one 2D array — with stats
        identical to the per-packet path.
        """
        if not self.fused_packet_batch:
            super().transform_chunks(chunks, outputs)
            return
        packets: List[bytes] = []
        for chunk in chunks:
            self._batch_in_bytes += len(chunk)
            self._batch_in_chunks += 1
            packets.extend(self._decoder.feed(chunk))
        if not packets:
            return
        # Per-packet accounting is record_input(0, packets=1) per packet,
        # which also bumps chunks_in — mirror both in one batched call.
        self.stats.record_input_batch(0, len(packets), packets=len(packets))
        outputs.extend(self._frame_all(self.transform_packets(packets)))

    def finalize(self) -> TransformResult:
        return self._frame_all(self.finalize_packets())

    def _frame_all(self, result: "PacketFilter.PacketResult") -> List[bytes]:
        if result is None:
            return []
        if isinstance(result, (bytes, bytearray, memoryview)):
            packets: List[bytes] = [bytes(result)]
        else:
            packets = [bytes(item) for item in result]
        framed = []
        for packet in packets:
            self._last_packet = packet
            self.stats.record_output(0, packets=1)
            framed.append(encode_frame(packet))
        return framed

    def is_idle(self) -> bool:
        return (super().is_idle() and not self._decoder.has_partial_frame())

    def _boundary_unit(self, unit: bytes) -> bytes:
        """Strip the frame header so predicates see the packet payload."""
        from ..streams.framing import HEADER_SIZE

        return unit[HEADER_SIZE:] if len(unit) >= HEADER_SIZE else unit


class FilterContainer:
    """A named collection of filters, as uploaded into a proxy.

    Mirrors the paper's ``FilterContainer``: it "has methods to obtain the
    number of Filters available and an enumeration method to return a String
    enumeration of the Filter objects names".
    """

    def __init__(self, filters: Optional[Iterable[Filter]] = None,
                 name: str = "container") -> None:
        self.name = name
        self._filters: List[Filter] = list(filters or [])

    def add(self, filter_obj: Filter) -> None:
        self._filters.append(filter_obj)

    def count(self) -> int:
        """Number of filters in the container."""
        return len(self._filters)

    def names(self) -> List[str]:
        """The contained filters' names, in order."""
        return [f.name for f in self._filters]

    def get(self, index: int) -> Filter:
        return self._filters[index]

    def by_name(self, name: str) -> Filter:
        for filter_obj in self._filters:
            if filter_obj.name == name:
                return filter_obj
        raise KeyError(f"no filter named {name!r} in container {self.name!r}")

    def __iter__(self):
        return iter(self._filters)

    def __len__(self) -> int:
        return len(self._filters)
