"""The proxy control protocol.

The paper's ControlThread "receives commands from across the network, either
from the mobile client, from an application server, or from the control
manager".  This module defines that command vocabulary as JSON messages and
implements :class:`CommandHandler`, which applies commands to a
:class:`~repro.core.proxy.Proxy` and a
:class:`~repro.core.registry.FilterRegistry`.  The handler is transport
agnostic: :mod:`repro.core.control_server` exposes it over TCP, and the
tests drive it directly in-process.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .errors import CompositionError, ControlProtocolError, ProxyError, RegistryError
from .proxy import Proxy
from .registry import FilterRegistry, FilterSpec, default_registry

#: Command names understood by :class:`CommandHandler`.
CMD_PING = "ping"
CMD_LIST_STREAMS = "list_streams"
CMD_DESCRIBE = "describe"
CMD_LIST_FILTER_TYPES = "list_filter_types"
CMD_INSERT_FILTER = "insert_filter"
CMD_REMOVE_FILTER = "remove_filter"
CMD_MOVE_FILTER = "move_filter"
CMD_REORDER_FILTERS = "reorder_filters"
CMD_UPLOAD_FILTERS = "upload_filters"
CMD_STATS = "stats"
CMD_SHUTDOWN_STREAM = "shutdown_stream"

ALL_COMMANDS = (
    CMD_PING, CMD_LIST_STREAMS, CMD_DESCRIBE, CMD_LIST_FILTER_TYPES,
    CMD_INSERT_FILTER, CMD_REMOVE_FILTER, CMD_MOVE_FILTER,
    CMD_REORDER_FILTERS, CMD_UPLOAD_FILTERS, CMD_STATS, CMD_SHUTDOWN_STREAM,
)


def encode_message(payload: Dict[str, Any]) -> bytes:
    """Encode a protocol message as one JSON line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Decode one JSON line into a protocol message."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ControlProtocolError(f"malformed control message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ControlProtocolError("control messages must be JSON objects")
    return payload


def ok_response(**fields: Any) -> Dict[str, Any]:
    response = {"ok": True}
    response.update(fields)
    return response


def error_response(message: str) -> Dict[str, Any]:
    return {"ok": False, "error": message}


class CommandHandler:
    """Applies control commands to a proxy.

    Parameters
    ----------
    proxy:
        The proxy whose streams are managed.
    registry:
        Filter registry used to instantiate and upload filters; defaults to
        the process-wide registry with the built-in filter library.
    """

    def __init__(self, proxy: Proxy,
                 registry: Optional[FilterRegistry] = None) -> None:
        self.proxy = proxy
        self.registry = registry if registry is not None else default_registry()

    # ------------------------------------------------------------------ entry

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one command and return the response payload."""
        command = request.get("command")
        try:
            if command == CMD_PING:
                return ok_response(reply="pong", proxy=self.proxy.name)
            if command == CMD_LIST_STREAMS:
                return ok_response(streams=self.proxy.stream_names())
            if command == CMD_DESCRIBE:
                return self._describe(request)
            if command == CMD_LIST_FILTER_TYPES:
                return ok_response(types=self.registry.types())
            if command == CMD_INSERT_FILTER:
                return self._insert_filter(request)
            if command == CMD_REMOVE_FILTER:
                return self._remove_filter(request)
            if command == CMD_MOVE_FILTER:
                return self._move_filter(request)
            if command == CMD_REORDER_FILTERS:
                return self._reorder(request)
            if command == CMD_UPLOAD_FILTERS:
                return self._upload(request)
            if command == CMD_STATS:
                return self._stats(request)
            if command == CMD_SHUTDOWN_STREAM:
                return self._shutdown_stream(request)
            return error_response(f"unknown command {command!r}")
        except (ProxyError, CompositionError, RegistryError, ControlProtocolError) as exc:
            return error_response(str(exc))
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return error_response(f"internal error: {exc}")

    def handle_line(self, line: bytes) -> bytes:
        """Decode a request line, execute it, and encode the response."""
        try:
            request = decode_message(line)
        except ControlProtocolError as exc:
            return encode_message(error_response(str(exc)))
        return encode_message(self.handle(request))

    # --------------------------------------------------------------- commands

    def _stream(self, request: Dict[str, Any]):
        stream_name = request.get("stream")
        if not stream_name:
            names = self.proxy.stream_names()
            if len(names) == 1:
                stream_name = names[0]
            else:
                raise ControlProtocolError(
                    "the 'stream' field is required when the proxy has "
                    f"{len(names)} streams")
        return self.proxy.stream(str(stream_name))

    def _describe(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if request.get("stream"):
            control = self._stream(request)
            return ok_response(snapshot=control.snapshot().to_dict())
        return ok_response(snapshots=self.proxy.snapshot())

    def _insert_filter(self, request: Dict[str, Any]) -> Dict[str, Any]:
        control = self._stream(request)
        spec_payload = request.get("spec")
        if not isinstance(spec_payload, dict):
            raise ControlProtocolError("insert_filter requires a 'spec' object")
        spec = FilterSpec.from_dict(spec_payload)
        filter_obj = self.registry.create(spec)
        position = request.get("position")
        position = int(position) if position is not None else None
        inserted_at = control.add(filter_obj, position=position)
        return ok_response(filter=filter_obj.name, position=inserted_at,
                           filters=control.filter_names())

    def _remove_filter(self, request: Dict[str, Any]) -> Dict[str, Any]:
        control = self._stream(request)
        ref = request.get("filter")
        if ref is None:
            raise ControlProtocolError("remove_filter requires a 'filter' field")
        removed = control.remove(ref)
        return ok_response(filter=removed.name, filters=control.filter_names())

    def _move_filter(self, request: Dict[str, Any]) -> Dict[str, Any]:
        control = self._stream(request)
        ref = request.get("filter")
        position = request.get("position")
        if ref is None or position is None:
            raise ControlProtocolError(
                "move_filter requires 'filter' and 'position' fields")
        control.move(ref, int(position))
        return ok_response(filters=control.filter_names())

    def _reorder(self, request: Dict[str, Any]) -> Dict[str, Any]:
        control = self._stream(request)
        order = request.get("order")
        if not isinstance(order, list):
            raise ControlProtocolError("reorder_filters requires an 'order' list")
        control.reorder(order)
        return ok_response(filters=control.filter_names())

    def _upload(self, request: Dict[str, Any]) -> Dict[str, Any]:
        module = request.get("module")
        source = request.get("source")
        if not module or not isinstance(source, str):
            raise ControlProtocolError(
                "upload_filters requires 'module' and 'source' fields")
        registered = self.registry.upload_source(str(module), source)
        return ok_response(registered=registered, types=self.registry.types())

    def _stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        control = self._stream(request)
        return ok_response(snapshot=control.snapshot().to_dict())

    def _shutdown_stream(self, request: Dict[str, Any]) -> Dict[str, Any]:
        control = self._stream(request)
        control.shutdown()
        return ok_response(stream=control.name, running=control.running)
