"""Filter registry and dynamic filter upload.

A central requirement of the paper is that "RAPIDware-compatible filters
[can] be developed by third parties, and dynamically inserted into an
existing proxy by application processes" — i.e. a proxy must be able to
instantiate filters it did not know about at compile time.  The paper
achieves this with Java object serialisation; this reproduction provides the
Python equivalent:

* :class:`FilterSpec` — a JSON-serialisable description of a filter to
  instantiate (type name + constructor arguments), used by the control
  protocol;
* :class:`FilterRegistry` — maps type names to filter classes, instantiates
  specs, and accepts *source-code uploads*: a string of Python defining new
  filter classes is executed into a private module and its ``Filter``
  subclasses become available for instantiation, which is the moral
  equivalent of uploading serialised filter objects into a running JVM.

Uploaded code runs with full interpreter privileges, exactly as uploaded
Java classes did in the original system; deployments that require isolation
should disable uploads (``allow_uploads=False``).
"""

from __future__ import annotations

import json
import threading
import types
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Type

from .errors import RegistryError
from .filter import Filter


@dataclass(frozen=True)
class FilterSpec:
    """A serialisable request to instantiate a filter."""

    type_name: str
    args: Dict[str, Any] = field(default_factory=dict)
    name: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.type_name, "args": dict(self.args), "name": self.name}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FilterSpec":
        if "type" not in payload:
            raise RegistryError("filter spec is missing the 'type' field")
        return cls(type_name=str(payload["type"]),
                   args=dict(payload.get("args") or {}),
                   name=payload.get("name"))

    @classmethod
    def from_json(cls, text: str) -> "FilterSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RegistryError(f"invalid filter spec JSON: {exc}") from exc
        return cls.from_dict(payload)


class FilterRegistry:
    """Maps filter type names to classes and instantiates filter specs."""

    def __init__(self, allow_uploads: bool = True) -> None:
        self._classes: Dict[str, Type[Filter]] = {}
        self._uploaded_modules: Dict[str, types.ModuleType] = {}
        self._lock = threading.RLock()
        self.allow_uploads = allow_uploads

    # ---------------------------------------------------------------- classes

    def register(self, filter_class: Type[Filter],
                 type_name: Optional[str] = None) -> str:
        """Register a filter class under its ``type_name``.

        Returns the name it was registered under.  Registering the same name
        twice replaces the earlier class (uploads may ship fixed versions).
        """
        if not (isinstance(filter_class, type) and issubclass(filter_class, Filter)):
            raise RegistryError(
                f"{filter_class!r} is not a Filter subclass")
        name = type_name or getattr(filter_class, "type_name", None)
        if not name or name in ("filter", "packet-filter"):
            raise RegistryError(
                f"filter class {filter_class.__name__} needs a distinctive "
                "type_name to be registered")
        with self._lock:
            self._classes[name] = filter_class
        return name

    def unregister(self, type_name: str) -> None:
        with self._lock:
            self._classes.pop(type_name, None)

    def types(self) -> List[str]:
        """All registered type names, sorted."""
        with self._lock:
            return sorted(self._classes)

    def has(self, type_name: str) -> bool:
        with self._lock:
            return type_name in self._classes

    def get(self, type_name: str) -> Type[Filter]:
        with self._lock:
            if type_name not in self._classes:
                raise RegistryError(f"unknown filter type {type_name!r}")
            return self._classes[type_name]

    # ----------------------------------------------------------- instantiation

    def create(self, spec: FilterSpec) -> Filter:
        """Instantiate a filter from a spec."""
        filter_class = self.get(spec.type_name)
        kwargs = dict(spec.args)
        if spec.name is not None:
            kwargs.setdefault("name", spec.name)
        try:
            filter_obj = filter_class(**kwargs)
            # Remember how the instance was built so stream supervision can
            # construct an equivalent replacement under restart-filter.
            filter_obj.creation_spec = spec
            return filter_obj
        except TypeError as exc:
            raise RegistryError(
                f"cannot construct {spec.type_name!r} with args {spec.args!r}: {exc}"
            ) from exc

    def create_from_json(self, text: str) -> Filter:
        return self.create(FilterSpec.from_json(text))

    # ---------------------------------------------------------------- uploads

    def upload_source(self, module_name: str, source_code: str) -> List[str]:
        """Execute uploaded filter source code and register its filters.

        The code is executed in a fresh module whose namespace already
        contains ``Filter`` and ``PacketFilter``; every ``Filter`` subclass
        defined by the upload (with a distinctive ``type_name``) is
        registered.  Returns the list of registered type names.
        """
        if not self.allow_uploads:
            raise RegistryError("filter uploads are disabled on this registry")
        if not module_name.isidentifier():
            raise RegistryError(f"invalid upload module name {module_name!r}")

        from .filter import PacketFilter  # local import to avoid cycles at import time

        module = types.ModuleType(f"repro.uploaded.{module_name}")
        module.__dict__["Filter"] = Filter
        module.__dict__["PacketFilter"] = PacketFilter
        try:
            exec(compile(source_code, f"<upload:{module_name}>", "exec"),  # noqa: S102
                 module.__dict__)
        except Exception as exc:  # noqa: BLE001 - report upload failures cleanly
            raise RegistryError(f"uploaded filter code failed to execute: {exc}") from exc

        registered: List[str] = []
        for value in vars(module).values():
            if (isinstance(value, type) and issubclass(value, Filter)
                    and value not in (Filter, PacketFilter)
                    and getattr(value, "type_name", None)
                    and value.type_name not in ("filter", "packet-filter",
                                                "endpoint")):
                registered.append(self.register(value))
        if not registered:
            raise RegistryError(
                "uploaded code did not define any registrable Filter subclass")
        with self._lock:
            self._uploaded_modules[module_name] = module
        return registered

    def uploaded_modules(self) -> List[str]:
        with self._lock:
            return sorted(self._uploaded_modules)


_default_registry: Optional[FilterRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> FilterRegistry:
    """The process-wide registry, pre-populated with the built-in filters."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            registry = FilterRegistry()
            _register_builtin_filters(registry)
            _default_registry = registry
        return _default_registry


def _register_builtin_filters(registry: FilterRegistry) -> None:
    """Register the filter library shipped with this package."""
    from .. import filters as filter_library

    for filter_class in filter_library.BUILTIN_FILTERS:
        registry.register(filter_class)
