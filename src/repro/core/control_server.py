"""TCP transport for the proxy control protocol.

A :class:`ControlServer` listens on a TCP port, accepts ControlManager
connections, and executes one newline-delimited JSON command per line via a
:class:`~repro.core.commands.CommandHandler`.  This is the reproduction of
the paper's "ControlThread receives commands from across the network" — the
data plane (detachable streams) and the control plane (this server) are
deliberately separate.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from .commands import CommandHandler, encode_message, error_response
from .proxy import Proxy
from .registry import FilterRegistry


class ControlServer:
    """A threaded line-oriented JSON control server for one proxy."""

    def __init__(self, proxy: Proxy, registry: Optional[FilterRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.handler = CommandHandler(proxy, registry=registry)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread: Optional[threading.Thread] = None
        self._client_threads: list = []
        self._stop_event = threading.Event()
        self.connections_accepted = 0
        self.commands_handled = 0

    # ------------------------------------------------------------------ state

    @property
    def address(self) -> "tuple[str, int]":
        """The (host, port) the server is listening on."""
        return (self.host, self.port)

    @property
    def running(self) -> bool:
        return (self._accept_thread is not None
                and self._accept_thread.is_alive())

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "ControlServer":
        """Start accepting ControlManager connections."""
        if self._accept_thread is not None:
            return self
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"control-server:{self.port}",
            daemon=True)
        self._accept_thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        """Stop the server and close the listening socket."""
        self._stop_event.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        try:
            self._listener.close()
        except OSError:
            pass
        for thread in self._client_threads:
            thread.join(timeout=timeout)

    def __enter__(self) -> "ControlServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -------------------------------------------------------------- internals

    def _accept_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                client, _address = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections_accepted += 1
            thread = threading.Thread(target=self._serve_client, args=(client,),
                                      name="control-server-client", daemon=True)
            thread.start()
            self._client_threads.append(thread)

    def _serve_client(self, client: socket.socket) -> None:
        client.settimeout(0.2)
        buffer = bytearray()
        try:
            while not self._stop_event.is_set():
                try:
                    data = client.recv(4096)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not data:
                    return
                buffer.extend(data)
                while b"\n" in buffer:
                    line, _, rest = bytes(buffer).partition(b"\n")
                    buffer = bytearray(rest)
                    if not line.strip():
                        continue
                    try:
                        response = self.handler.handle_line(line)
                    except Exception as exc:  # noqa: BLE001 - keep serving
                        response = encode_message(error_response(str(exc)))
                    self.commands_handled += 1
                    try:
                        client.sendall(response)
                    except OSError:
                        return
        finally:
            try:
                client.close()
            except OSError:
                pass
