"""The FEC audio proxy — the paper's Section 5 example, end to end.

Figure 6 of the paper shows the components of the FEC audio proxy:

* downstream (toward the mobile hosts): a ``WiredReceiver`` takes multicast
  audio packets from the wired LAN, an ``FEC Encoder`` groups them and adds
  parity, and a ``WirelessSender`` multicasts data + parity on the WLAN;
* upstream (from the mobile hosts): a ``WirelessReceiver`` takes packets off
  the WLAN, an ``FEC Decoder`` reconstructs lost packets, and a
  ``WiredSender`` forwards them to the wired participants.

In the RAPIDware port those boxes become EndPoints and PacketFilters managed
by a ControlThread, so the FEC filters can be inserted and removed while the
stream is live.  This module assembles both directions from the building
blocks in :mod:`repro.core`, :mod:`repro.filters` and :mod:`repro.net`, and
provides :func:`run_fec_audio_experiment`, the driver that reproduces the
Figure 7 measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import ControlThread, IterableSource, Proxy
from ..fec import FecPacket, FecPacketError
from ..filters import FecDecoderFilter, FecEncoderFilter, PAPER_FEC_K, PAPER_FEC_N
from ..media import (
    AudioPacketizer,
    AudioSource,
    Depacketizer,
    MediaPacket,
    MediaPacketError,
    ToneSource,
)
from ..net import DeliveryReport, LossModel, WirelessLAN
from ..transport import InprocChannel, TransportSink
from ..transport.base import DatagramChannel


@dataclass
class FecAudioProxyConfig:
    """Configuration of the downstream (wired -> wireless) FEC audio proxy."""

    k: int = PAPER_FEC_K
    n: int = PAPER_FEC_N
    fec_enabled: bool = True
    packet_duration_ms: int = 20
    stream_name: str = "audio-downstream"
    #: GF(256) backend name for the FEC filters (None = process default).
    fec_backend: Optional[str] = None
    #: Execution engine name for the proxy's streams (None = ``REPRO_ENGINE``
    #: / the registry default; see :mod:`repro.runtime`).
    engine: Optional[str] = None
    #: Transport name for the wireless segment when no ``wlan`` is given
    #: (None = ``REPRO_TRANSPORT`` / the registry default; see
    #: :mod:`repro.transport`).
    transport: Optional[str] = None
    #: Pin the FEC group-id base (None = a fresh process-wide block per
    #: encoder).  Pinning makes two runs byte-identical on the wire, which
    #: the transport-equivalence tests rely on.
    fec_start_group_id: Optional[int] = None
    #: Stream supervision policy — an :class:`~repro.core.ErrorPolicy`, a
    #: mode name (``"fail"`` / ``"restart-filter"`` / ``"bypass"``), or a
    #: serialised policy dict.  None = unsupervised (the pre-supervision
    #: behaviour).
    error_policy: Optional[object] = None
    #: Pace the wired receiver (seconds between packets).  None = drain as
    #: fast as the chain allows; the chaos demo paces the stream so faults
    #: and recovery happen observably mid-flight.
    source_pacing_s: Optional[float] = None


class FecAudioProxy:
    """A RAPIDware proxy carrying one audio stream onto a wireless LAN.

    The proxy is built as a null proxy (wired receiver EndPoint -> wireless
    sender EndPoint); :meth:`enable_fec` and :meth:`disable_fec` insert and
    remove the FEC encoder filter *while the stream is running*, which is
    exactly the demand-driven behaviour of the paper's Section 3 scenario.

    The wireless segment is a transport channel: pass a simulated ``wlan``
    (the classic testbed — it is wrapped in an
    :class:`~repro.transport.inproc.InprocChannel`), an existing
    :class:`~repro.transport.base.DatagramChannel`, or neither, in which
    case the proxy opens a channel on its transport (``transport=`` /
    ``config.transport`` / ``REPRO_TRANSPORT`` / inproc default) — with the
    ``udp`` transport the mobile hosts may live in other OS processes.
    """

    def __init__(self, wired_packets: List[MediaPacket],
                 wlan: Optional[WirelessLAN] = None,
                 config: Optional[FecAudioProxyConfig] = None,
                 name: str = "fec-audio-proxy",
                 channel: Optional[DatagramChannel] = None,
                 transport=None) -> None:
        self.config = config or FecAudioProxyConfig()
        self.proxy = Proxy(name, engine=self.config.engine,
                           transport=transport or self.config.transport)
        if channel is None:
            if wlan is not None:
                channel = InprocChannel("wlan", wlan=wlan)
            else:
                channel = self.proxy.open_channel("wlan")
        self.channel = channel
        #: The simulated LAN behind the channel, when there is one (tests
        #: and the Figure 7 driver reach into its access point for stats).
        self.wlan = wlan if wlan is not None else getattr(channel, "wlan", None)
        self._encoder_filter: Optional[FecEncoderFilter] = None

        # Wired receiver: the already-packetised audio stream from the wired
        # LAN.  Each MediaPacket is framed so packet filters can be composed.
        self._source = IterableSource(
            [packet.pack() for packet in wired_packets],
            name="wired-receiver", frame_output=True,
            pacing_s=self.config.source_pacing_s or 0.0)
        # Wireless sender: every packet leaving the chain is multicast on the
        # wireless channel; end-of-stream closes the channel so receivers
        # (local or remote) see EOF.
        self._sink = TransportSink(self.channel, name="wireless-sender",
                                   expect_frames=True)
        self.control: ControlThread = self.proxy.add_stream(
            self._source, self._sink, name=self.config.stream_name,
            auto_start=False, error_policy=self.config.error_policy)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "FecAudioProxy":
        """Start the stream; the FEC encoder is composed in first if enabled.

        Enabling FEC before start uses static composition (no unprotected
        window); calling :meth:`enable_fec` later inserts the filter into the
        live stream instead.
        """
        if self.config.fec_enabled:
            self.enable_fec()
        self.control.start()
        return self

    def wait_for_completion(self, timeout: Optional[float] = None) -> bool:
        return self.control.wait_for_completion(timeout=timeout)

    def shutdown(self) -> None:
        self.proxy.shutdown()

    # -- demand-driven FEC -------------------------------------------------------

    @property
    def fec_active(self) -> bool:
        return self._encoder_filter is not None

    def enable_fec(self, k: Optional[int] = None, n: Optional[int] = None) -> None:
        """Insert the FEC encoder into the running stream (idempotent)."""
        if self._encoder_filter is not None:
            return
        encoder = FecEncoderFilter(k=k or self.config.k, n=n or self.config.n,
                                   name="fec-encoder",
                                   start_group_id=self.config.fec_start_group_id,
                                   backend=self.config.fec_backend)
        self.control.add(encoder, position=0)
        self._encoder_filter = encoder

    def disable_fec(self) -> None:
        """Remove the FEC encoder from the running stream (idempotent)."""
        if self._encoder_filter is None:
            return
        self.control.remove(self._encoder_filter)
        self._encoder_filter = None

    @property
    def encoder_stats(self):
        if self._encoder_filter is None:
            return None
        return self._encoder_filter.encoder_stats


class WirelessAudioReceiver:
    """The mobile-host side: FEC decoding and playout accounting.

    The receiver consumes the raw packets its WLAN receiver captured,
    separates FEC data/parity from plain packets, reconstructs what it can,
    and tracks which original sequence numbers were received directly versus
    available after reconstruction — the two series plotted in Figure 7.
    """

    def __init__(self, name: str = "mobile-host",
                 fec_backend: Optional[str] = None) -> None:
        self.name = name
        self.depacketizer = Depacketizer()
        self.decoder = FecDecoderFilter(name=f"{name}-fec-decoder",
                                        backend=fec_backend)
        self._raw_sequences: set = set()
        self._reconstructed_sequences: set = set()
        self.undecodable_packets = 0

    def process(self, raw_packets: List[bytes]) -> None:
        """Feed the packets captured off the WLAN (in arrival order)."""
        for raw in raw_packets:
            self._classify_raw(raw)
            for payload in self.decoder.transform_packet(raw) or []:
                self._accept_media(payload, reconstructed=True)
        # Flush groups that never completed (end of experiment).

    def finish(self) -> None:
        """Flush FEC state at the end of the stream."""
        for payload in self.decoder.finalize_packets() or []:
            self._accept_media(payload, reconstructed=True)

    def _classify_raw(self, raw: bytes) -> None:
        """Record the sequence numbers of *directly received* media packets."""
        try:
            fec_packet = FecPacket.unpack(raw)
        except FecPacketError:
            # Not FEC-wrapped: a plain media packet.
            self._accept_media(raw, reconstructed=False)
            return
        if fec_packet.is_uncoded:
            self._record_raw_media(fec_packet.payload)
        elif fec_packet.is_data:
            from ..fec import unpad_block
            try:
                self._record_raw_media(unpad_block(fec_packet.payload))
            except FecPacketError:
                self.undecodable_packets += 1

    def _record_raw_media(self, payload: bytes) -> None:
        try:
            media = MediaPacket.unpack(payload)
        except MediaPacketError:
            self.undecodable_packets += 1
            return
        self._raw_sequences.add(media.sequence)

    def _accept_media(self, payload: bytes, reconstructed: bool) -> None:
        try:
            media = MediaPacket.unpack(payload)
        except MediaPacketError:
            self.undecodable_packets += 1
            return
        self._reconstructed_sequences.add(media.sequence)
        if not reconstructed:
            self._raw_sequences.add(media.sequence)
        self.depacketizer.add(media)

    # -- results ---------------------------------------------------------------

    def delivery_report(self, total_packets: int) -> DeliveryReport:
        """Raw vs reconstructed delivery accounting (Figure 7's two series)."""
        return DeliveryReport(total_packets=total_packets,
                              received=set(self._raw_sequences),
                              reconstructed=set(self._reconstructed_sequences))

    def reconstructed_pcm(self, total_packets: int) -> bytes:
        """The playout buffer contents (lost packets filled with silence)."""
        return self.depacketizer.reassemble(total_packets)


@dataclass
class FecAudioExperimentResult:
    """Everything measured by one run of the Figure 7 experiment."""

    total_packets: int
    k: int
    n: int
    distance_m: float
    reports: Dict[str, DeliveryReport] = field(default_factory=dict)
    packets_on_air: int = 0
    bytes_on_air: int = 0
    airtime_s: float = 0.0

    def average_received_percent(self) -> float:
        if not self.reports:
            return 100.0
        return sum(r.received_percent for r in self.reports.values()) / len(self.reports)

    def average_reconstructed_percent(self) -> float:
        if not self.reports:
            return 100.0
        return sum(r.reconstructed_percent
                   for r in self.reports.values()) / len(self.reports)


def run_fec_audio_experiment(
        audio_source: Optional[AudioSource] = None,
        duration_s: float = 10.0,
        distance_m: float = 25.0,
        receiver_count: int = 3,
        k: int = PAPER_FEC_K,
        n: int = PAPER_FEC_N,
        fec_enabled: bool = True,
        packet_duration_ms: int = 20,
        loss_model_factory=None,
        seed: int = 2001,
        completion_timeout_s: float = 120.0,
        fec_backend: Optional[str] = None,
        engine: Optional[str] = None) -> FecAudioExperimentResult:
    """Run the paper's FEC audio experiment on the simulated testbed.

    The defaults mirror the paper's setup: a PCM audio stream (8 kHz, two
    8-bit channels), an FEC(6,4) configuration, three wireless laptops, and
    a receiver position 25 m from the access point.

    ``loss_model_factory`` may be a callable ``(receiver_index) -> LossModel``
    to override the distance-based default (used by the benchmark sweeps).
    """
    if receiver_count < 1:
        raise ValueError("receiver_count must be >= 1")

    source = audio_source or ToneSource(duration=duration_s)
    packets = AudioPacketizer(source,
                              packet_duration_ms=packet_duration_ms).packet_list()
    total_packets = len(packets)

    wlan = WirelessLAN(seed=seed)
    receivers: Dict[str, WirelessAudioReceiver] = {}
    for index in range(receiver_count):
        name = f"laptop-{index}"
        if loss_model_factory is not None:
            model: LossModel = loss_model_factory(index)
            wlan.add_receiver(name, loss_model=model)
        else:
            wlan.add_receiver(name, distance_m=distance_m,
                              seed=seed * 1009 + index)
        receivers[name] = WirelessAudioReceiver(name, fec_backend=fec_backend)

    config = FecAudioProxyConfig(k=k, n=n, fec_enabled=fec_enabled,
                                 packet_duration_ms=packet_duration_ms,
                                 fec_backend=fec_backend, engine=engine)
    proxy = FecAudioProxy(packets, wlan, config=config)
    proxy.start()
    completed = proxy.wait_for_completion(timeout=completion_timeout_s)
    proxy.shutdown()
    if not completed:
        raise RuntimeError("the FEC audio proxy did not finish in time")

    result = FecAudioExperimentResult(
        total_packets=total_packets, k=k, n=n, distance_m=distance_m,
        packets_on_air=wlan.access_point.packets_sent,
        bytes_on_air=wlan.access_point.bytes_sent,
        airtime_s=wlan.access_point.busy_time_s)

    for name, receiver in receivers.items():
        captured = wlan.access_point.receiver(name).take()
        audio_receiver = receivers[name]
        audio_receiver.process(captured)
        audio_receiver.finish()
        result.reports[name] = audio_receiver.delivery_report(total_packets)
    return result
