"""Composed proxies: the paper's worked examples assembled from the library.

* :mod:`~repro.proxies.fec_audio_proxy` — the Section 5 / Figure 6 FEC audio
  proxy and the Figure 7 experiment driver;
* :mod:`~repro.proxies.transcoding_proxy` — device-specific transcoding
  proxies and the boundary-aware video proxy.
"""

from .fec_audio_proxy import (
    FecAudioExperimentResult,
    FecAudioProxy,
    FecAudioProxyConfig,
    WirelessAudioReceiver,
    run_fec_audio_experiment,
)
from .transcoding_proxy import (
    DeviceDescriptor,
    TranscodingProxy,
    VideoProxy,
    transcoder_chain_for,
)

__all__ = [
    "FecAudioProxy",
    "FecAudioProxyConfig",
    "FecAudioExperimentResult",
    "WirelessAudioReceiver",
    "run_fec_audio_experiment",
    "DeviceDescriptor",
    "TranscodingProxy",
    "VideoProxy",
    "transcoder_chain_for",
]
