"""Transcoding proxies for heterogeneous receivers.

Pavilion offloads transcoding onto proxies so that "resource-limited mobile
hosts" (the wireless palmtop of Figure 2) receive a reduced-bandwidth copy
of the stream while workstation participants receive the original.  The
:class:`TranscodingProxy` below composes the transcoder filters from
:mod:`repro.filters.transcoders` according to a device descriptor, and the
:class:`VideoProxy` assembles the video pipeline (B-frame dropping plus
optional boundary-aligned FEC) used by the frame-boundary experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core import CallableSink, ControlThread, Filter, IterableSource, Proxy
from ..core.boundary import i_frame_boundary
from ..filters import (
    AudioDownsampleFilter,
    AudioMonoFilter,
    FecEncoderFilter,
    VideoBFrameDropFilter,
    VideoFrameThinningFilter,
    ZlibCompressFilter,
)
from ..media import MediaPacket, VideoSource


@dataclass(frozen=True)
class DeviceDescriptor:
    """Capabilities of a receiving device, as RAPIDware would describe it.

    The fields are deliberately coarse — they select which transcoders a
    proxy composes, mirroring the per-device "conversion drivers" discussed
    in the paper's related-work comparison.
    """

    name: str = "workstation"
    max_audio_channels: int = 2
    max_audio_sample_rate: int = 8000
    supports_video_b_frames: bool = True
    max_video_fps: int = 30
    wants_compression: bool = False

    @classmethod
    def workstation(cls) -> "DeviceDescriptor":
        """A wired workstation: receives the stream unmodified."""
        return cls()

    @classmethod
    def laptop(cls) -> "DeviceDescriptor":
        """A wireless laptop: full media, but compressed control content."""
        return cls(name="laptop", wants_compression=True)

    @classmethod
    def palmtop(cls) -> "DeviceDescriptor":
        """A handheld: mono audio at half rate, thinned video, compression."""
        return cls(name="palmtop", max_audio_channels=1,
                   max_audio_sample_rate=4000, supports_video_b_frames=False,
                   max_video_fps=10, wants_compression=True)


def transcoder_chain_for(device: DeviceDescriptor,
                         source_sample_rate: int = 8000,
                         source_channels: int = 2,
                         source_fps: int = 30) -> List[Filter]:
    """Build the ordered list of transcoder filters a device requires."""
    chain: List[Filter] = []
    if device.max_audio_channels < source_channels:
        chain.append(AudioMonoFilter(name=f"{device.name}-mono"))
    if device.max_audio_sample_rate < source_sample_rate:
        factor = max(1, round(source_sample_rate / device.max_audio_sample_rate))
        channels = min(source_channels, device.max_audio_channels)
        chain.append(AudioDownsampleFilter(factor=factor, channels=channels,
                                           name=f"{device.name}-downsample"))
    if not device.supports_video_b_frames:
        chain.append(VideoBFrameDropFilter(name=f"{device.name}-bdrop"))
    if device.max_video_fps < source_fps:
        keep_every = max(1, round(source_fps / device.max_video_fps))
        chain.append(VideoFrameThinningFilter(keep_every=keep_every,
                                              name=f"{device.name}-thin"))
    if device.wants_compression:
        chain.append(ZlibCompressFilter(name=f"{device.name}-zlib"))
    return chain


class TranscodingProxy:
    """A proxy that tailors one media stream to one device class."""

    def __init__(self, packets: List[MediaPacket], device: DeviceDescriptor,
                 deliver: Callable[[bytes], None],
                 source_sample_rate: int = 8000, source_channels: int = 2,
                 source_fps: int = 30, name: Optional[str] = None,
                 engine=None, transport=None) -> None:
        self.device = device
        self.proxy = Proxy(name or f"transcoding-proxy-{device.name}",
                           engine=engine, transport=transport)
        self._source = IterableSource([p.pack() for p in packets],
                                      name="media-in", frame_output=True)
        self._sink = CallableSink(deliver, name="media-out", expect_frames=True)
        self.control: ControlThread = self.proxy.add_stream(
            self._source, self._sink, name="media", auto_start=False)
        self.filters = transcoder_chain_for(device,
                                            source_sample_rate=source_sample_rate,
                                            source_channels=source_channels,
                                            source_fps=source_fps)
        for filter_obj in self.filters:
            self.control.add(filter_obj)

    def start(self) -> "TranscodingProxy":
        self.control.start()
        return self

    def wait_for_completion(self, timeout: Optional[float] = None) -> bool:
        return self.control.wait_for_completion(timeout=timeout)

    def shutdown(self) -> None:
        self.proxy.shutdown()


class VideoProxy:
    """A proxy for GOP video streams with boundary-aligned FEC insertion.

    The paper requires video FEC to start "at a frame boundary"; this proxy
    exposes :meth:`insert_fec_at_gop_boundary`, which uses the ControlThread
    boundary hold so the FEC encoder's first input packet is an I frame.
    """

    def __init__(self, video: VideoSource, deliver: Callable[[bytes], None],
                 pacing_s: float = 0.0, name: str = "video-proxy",
                 engine=None, transport=None) -> None:
        self.video = video
        self.proxy = Proxy(name, engine=engine, transport=transport)
        self._source = IterableSource(
            [frame.to_packet().pack() for frame in video.frames()],
            name="video-in", frame_output=True, pacing_s=pacing_s)
        self._sink = CallableSink(deliver, name="video-out", expect_frames=True)
        self.control: ControlThread = self.proxy.add_stream(
            self._source, self._sink, name="video", auto_start=False)
        self.fec_filter: Optional[FecEncoderFilter] = None

    def start(self) -> "VideoProxy":
        self.control.start()
        return self

    def insert_fec_at_gop_boundary(self, k: int = 4, n: int = 6,
                                   timeout: float = 10.0) -> FecEncoderFilter:
        """Insert an FEC encoder so that its first packet is an I frame."""
        encoder = FecEncoderFilter(k=k, n=n, name="video-fec")
        self.control.add(encoder, position=0, boundary=i_frame_boundary,
                         timeout=timeout)
        self.fec_filter = encoder
        return encoder

    def drop_b_frames(self) -> VideoBFrameDropFilter:
        """Insert a B-frame-dropping transcoder at the head of the chain."""
        dropper = VideoBFrameDropFilter(name="video-bdrop")
        self.control.add(dropper, position=0)
        return dropper

    def wait_for_completion(self, timeout: Optional[float] = None) -> bool:
        return self.control.wait_for_completion(timeout=timeout)

    def shutdown(self) -> None:
        self.proxy.shutdown()
