"""Raplet base classes — RAPIDware's adaptive components.

"The middleware layer uses two main types of raplets, observers and
responders, to accommodate heterogeneity and adapt to variations in
conditions.  The observers collectively monitor the state of the system.
When an observer detects a relevant event, the observer either instantiates
a new responder or requests an extant responder to take appropriate action."

Observers here are *sampled*: the adaptive session (or a test) calls
``observe(now_s)`` on a schedule, the observer measures whatever it watches
and publishes events onto the bus.  Responders subscribe to event types and
carry out reconfigurations.  Keeping the control loop explicitly clocked
(instead of free-running threads) makes adaptation experiments reproducible.
"""

from __future__ import annotations

from typing import List

from .events import Event, EventBus


class Raplet:
    """Common base: a named adaptive component attached to an event bus."""

    kind = "raplet"

    def __init__(self, name: str, bus: EventBus) -> None:
        self.name = name
        self.bus = bus
        self.enabled = True

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def describe(self) -> dict:
        return {"name": self.name, "kind": self.kind, "enabled": self.enabled}


class ObserverRaplet(Raplet):
    """Base class for observers.

    Subclasses implement :meth:`measure`, returning the events (possibly
    none) describing what they currently observe; :meth:`observe` publishes
    them.
    """

    kind = "observer"

    def __init__(self, name: str, bus: EventBus) -> None:
        super().__init__(name, bus)
        self.observations = 0
        self.events_emitted = 0

    def measure(self, now_s: float) -> List[Event]:
        """Take one measurement; return the events it gives rise to."""
        raise NotImplementedError

    def observe(self, now_s: float = 0.0) -> List[Event]:
        """Measure and publish; returns the events that were published."""
        if not self.enabled:
            return []
        self.observations += 1
        events = self.measure(now_s)
        for event in events:
            self.bus.publish(event)
            self.events_emitted += 1
        return events


class ResponderRaplet(Raplet):
    """Base class for responders.

    Subclasses list the event types they care about in ``subscriptions`` and
    implement :meth:`respond`.  Registration with the bus happens in the
    constructor, matching the paper's "extant responder" usage; observers may
    also construct responders on demand and register them later.
    """

    kind = "responder"

    #: Event types this responder reacts to.
    subscriptions: "tuple[str, ...]" = ()

    def __init__(self, name: str, bus: EventBus,
                 subscribe: bool = True) -> None:
        super().__init__(name, bus)
        self.actions_taken = 0
        self.events_seen = 0
        if subscribe:
            self.register()

    def register(self) -> None:
        """Subscribe this responder to its event types."""
        for event_type in self.subscriptions:
            self.bus.subscribe(event_type, self._on_event)

    def unregister(self) -> None:
        for event_type in self.subscriptions:
            self.bus.unsubscribe(event_type, self._on_event)

    def _on_event(self, event: Event) -> None:
        if not self.enabled:
            return
        self.events_seen += 1
        if self.respond(event):
            self.actions_taken += 1

    def respond(self, event: Event) -> bool:
        """Handle one event; return True when an adaptation was performed."""
        raise NotImplementedError

    def describe(self) -> dict:
        info = super().describe()
        info["actions_taken"] = self.actions_taken
        info["events_seen"] = self.events_seen
        return info
