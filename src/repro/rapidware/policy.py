"""Adaptation policies: when to act, and how strongly.

The paper leaves the decision logic to "predefined user preferences and
device/network descriptors"; this module makes those decisions explicit and
testable:

* :class:`FecPolicy` — loss-rate thresholds (with hysteresis) that decide
  when the FEC filter is inserted/removed and which (n, k) to use for a
  given loss level;
* :class:`AdaptationLimits` — rate-limiting of adaptations so the system
  does not thrash when an observation hovers around a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class FecPolicy:
    """Thresholds and code choices for demand-driven FEC.

    ``insert_threshold`` and ``remove_threshold`` form a hysteresis band:
    FEC is inserted when the observed loss rate rises above the former and
    removed only when it falls below the latter.  ``ladder`` maps loss rates
    to (k, n) configurations — higher loss warrants more redundancy.
    """

    insert_threshold: float = 0.01
    remove_threshold: float = 0.002
    ladder: Tuple[Tuple[float, int, int], ...] = (
        (0.00, 4, 5),   # < 5% loss: 25% redundancy
        (0.05, 4, 6),   # 5-15% loss: the paper's FEC(6,4)
        (0.15, 4, 8),   # >= 15% loss: 100% redundancy
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.remove_threshold <= self.insert_threshold <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 <= remove <= insert <= 1")
        if not self.ladder:
            raise ValueError("the FEC ladder must have at least one rung")
        previous = -1.0
        for loss, k, n in self.ladder:
            if loss <= previous:
                raise ValueError("ladder rungs must have increasing loss levels")
            if k < 1 or n < k:
                raise ValueError(f"invalid (k={k}, n={n}) in ladder")
            previous = loss

    def should_insert(self, loss_rate: float, fec_active: bool) -> bool:
        """True when FEC should be active for the observed loss rate."""
        if fec_active:
            return loss_rate > self.remove_threshold
        return loss_rate > self.insert_threshold

    def should_remove(self, loss_rate: float, fec_active: bool) -> bool:
        return fec_active and loss_rate <= self.remove_threshold

    def code_for(self, loss_rate: float) -> Tuple[int, int]:
        """The (k, n) configuration appropriate for ``loss_rate``."""
        chosen = self.ladder[0][1:]
        for level, k, n in self.ladder:
            if loss_rate >= level:
                chosen = (k, n)
        return chosen


@dataclass
class AdaptationLimits:
    """Rate limits applied to adaptation actions.

    ``min_interval_s`` is the minimum simulated time between two actions on
    the same stream; ``max_actions`` (optional) caps the total number of
    reconfigurations (useful to bound experiments).
    """

    min_interval_s: float = 2.0
    max_actions: Optional[int] = None
    _last_action_time: Optional[float] = field(default=None, repr=False)
    _actions_taken: int = field(default=0, repr=False)

    def permits(self, now_s: float) -> bool:
        """True when an adaptation is currently allowed."""
        if self.max_actions is not None and self._actions_taken >= self.max_actions:
            return False
        if self._last_action_time is None:
            return True
        return (now_s - self._last_action_time) >= self.min_interval_s

    def record_action(self, now_s: float) -> None:
        self._last_action_time = now_s
        self._actions_taken += 1

    @property
    def actions_taken(self) -> int:
        return self._actions_taken


@dataclass(frozen=True)
class UserPreferences:
    """Per-user adaptation preferences (the paper's 'user preferences').

    ``audio_priority`` expresses whether the user prefers protecting audio
    continuity (insert FEC aggressively) or conserving bandwidth (prefer
    transcoding down before adding redundancy).
    """

    audio_priority: str = "quality"   # "quality" | "bandwidth"
    allow_fec: bool = True
    allow_transcoding: bool = True
    max_redundancy_overhead: float = 1.0   # (n - k) / k

    def permitted_codes(self, policy: FecPolicy) -> List[Tuple[int, int]]:
        """The ladder rungs whose overhead the user accepts."""
        return [(k, n) for _loss, k, n in policy.ladder
                if (n - k) / k <= self.max_redundancy_overhead]
