"""Observer raplets: loss rate, channel utilisation, mobility, membership.

Each observer watches one aspect of the running system (a wireless
receiver's delivery statistics, the access point's airtime, a mobile user's
position, the set of session participants) and publishes events when the
observed quantity changes in a way a responder might care about.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net import AccessPoint, ReceiverStats, WirelessReceiver
from .events import (
    EVENT_BANDWIDTH,
    EVENT_DEVICE_JOINED,
    EVENT_DEVICE_LEFT,
    EVENT_HANDOFF,
    EVENT_LOSS_RATE,
    SEVERITY_CRITICAL,
    SEVERITY_DEGRADED,
    SEVERITY_INFO,
    Event,
    EventBus,
)
from .raplets import ObserverRaplet


class LossRateObserver(ObserverRaplet):
    """Watches a wireless receiver's delivery statistics.

    The loss rate is computed over the packets delivered since the previous
    observation (a sliding "recent window" rather than a lifetime average),
    because the adaptation decision must track *current* link quality — the
    user may have walked away from the access point minutes after a long
    clean period.
    """

    def __init__(self, receiver: WirelessReceiver, bus: EventBus,
                 degraded_threshold: float = 0.01,
                 critical_threshold: float = 0.10,
                 min_sample_packets: int = 20,
                 smoothing: float = 0.5,
                 name: Optional[str] = None) -> None:
        super().__init__(name or f"loss-observer:{receiver.name}", bus)
        if not 0.0 <= degraded_threshold <= critical_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= degraded <= critical <= 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.receiver = receiver
        self.degraded_threshold = degraded_threshold
        self.critical_threshold = critical_threshold
        self.min_sample_packets = min_sample_packets
        self.smoothing = smoothing
        self._last_sent = 0
        self._last_received = 0
        self.last_loss_rate = 0.0
        self.raw_loss_rate = 0.0

    def measure(self, now_s: float) -> List[Event]:
        stats: ReceiverStats = self.receiver.stats
        sent = stats.packets_sent_to
        received = stats.packets_received
        delta_sent = sent - self._last_sent
        delta_received = received - self._last_received
        if delta_sent < self.min_sample_packets:
            return []
        self._last_sent = sent
        self._last_received = received
        window_loss = 1.0 - (delta_received / delta_sent) if delta_sent else 0.0
        self.raw_loss_rate = window_loss
        # Exponentially smoothed estimate: reacts quickly to bursts of loss
        # (a fresh loss raises the estimate immediately) but decays gradually
        # so short clean windows do not bounce FEC off again.
        loss_rate = (self.smoothing * window_loss
                     + (1.0 - self.smoothing) * self.last_loss_rate)
        self.last_loss_rate = loss_rate

        if loss_rate >= self.critical_threshold:
            severity = SEVERITY_CRITICAL
        elif loss_rate >= self.degraded_threshold:
            severity = SEVERITY_DEGRADED
        else:
            severity = SEVERITY_INFO
        return [Event(event_type=EVENT_LOSS_RATE, source=self.name,
                      severity=severity, time_s=now_s,
                      data={"receiver": self.receiver.name,
                            "loss_rate": loss_rate,
                            "window_packets": delta_sent})]


class BandwidthObserver(ObserverRaplet):
    """Watches the wireless channel's airtime and reports utilisation."""

    def __init__(self, access_point: AccessPoint, bus: EventBus,
                 degraded_utilisation: float = 0.7,
                 critical_utilisation: float = 0.9,
                 name: str = "bandwidth-observer") -> None:
        super().__init__(name, bus)
        self.access_point = access_point
        self.degraded_utilisation = degraded_utilisation
        self.critical_utilisation = critical_utilisation
        self._last_busy_s = 0.0
        self._last_time_s: Optional[float] = None

    def measure(self, now_s: float) -> List[Event]:
        if self._last_time_s is None:
            self._last_time_s = now_s
            self._last_busy_s = self.access_point.busy_time_s
            return []
        elapsed = now_s - self._last_time_s
        if elapsed <= 0:
            return []
        busy = self.access_point.busy_time_s - self._last_busy_s
        self._last_time_s = now_s
        self._last_busy_s = self.access_point.busy_time_s
        utilisation = min(1.0, busy / elapsed)
        if utilisation >= self.critical_utilisation:
            severity = SEVERITY_CRITICAL
        elif utilisation >= self.degraded_utilisation:
            severity = SEVERITY_DEGRADED
        else:
            severity = SEVERITY_INFO
        return [Event(event_type=EVENT_BANDWIDTH, source=self.name,
                      severity=severity, time_s=now_s,
                      data={"utilisation": utilisation,
                            "busy_seconds": busy, "elapsed_seconds": elapsed})]


class MigrationObserver(ObserverRaplet):
    """Watches a mobile user's distance from the access point.

    Publishes a handoff event whenever the receiver crosses a distance
    boundary (e.g. walks from the office into the conference room down the
    hall — the paper's motivating scenario).
    """

    def __init__(self, receiver: WirelessReceiver, bus: EventBus,
                 boundary_distances_m: "tuple[float, ...]" = (15.0, 30.0),
                 name: Optional[str] = None) -> None:
        super().__init__(name or f"migration-observer:{receiver.name}", bus)
        self.receiver = receiver
        self.boundaries = tuple(sorted(boundary_distances_m))
        self._last_zone: Optional[int] = None

    def _zone_of(self, distance_m: float) -> int:
        zone = 0
        for boundary in self.boundaries:
            if distance_m >= boundary:
                zone += 1
        return zone

    def measure(self, now_s: float) -> List[Event]:
        distance = self.receiver.distance_m
        if distance is None:
            return []
        zone = self._zone_of(distance)
        if self._last_zone is None:
            self._last_zone = zone
            return []
        if zone == self._last_zone:
            return []
        previous, self._last_zone = self._last_zone, zone
        severity = SEVERITY_DEGRADED if zone > previous else SEVERITY_INFO
        return [Event(event_type=EVENT_HANDOFF, source=self.name,
                      severity=severity, time_s=now_s,
                      data={"receiver": self.receiver.name,
                            "distance_m": distance,
                            "zone": zone, "previous_zone": previous})]


class MembershipObserver(ObserverRaplet):
    """Watches the set of devices participating in a session.

    Publishes device-joined / device-left events carrying the device
    descriptor, so a responder can compose the right transcoders for the
    weakest participant.
    """

    def __init__(self, bus: EventBus, name: str = "membership-observer",
                 describe_device: Optional[Callable[[str], Dict]] = None) -> None:
        super().__init__(name, bus)
        self._members: Dict[str, Dict] = {}
        self._describe_device = describe_device or (lambda _name: {})
        self._pending: List[Event] = []

    def join(self, device_name: str, descriptor: Optional[Dict] = None,
             now_s: float = 0.0) -> None:
        """Record a device joining the session."""
        descriptor = descriptor if descriptor is not None else self._describe_device(device_name)
        self._members[device_name] = descriptor
        self._pending.append(Event(event_type=EVENT_DEVICE_JOINED, source=self.name,
                                   time_s=now_s,
                                   data={"device": device_name,
                                         "descriptor": descriptor,
                                         "member_count": len(self._members)}))

    def leave(self, device_name: str, now_s: float = 0.0) -> None:
        """Record a device leaving the session."""
        descriptor = self._members.pop(device_name, {})
        self._pending.append(Event(event_type=EVENT_DEVICE_LEFT, source=self.name,
                                   time_s=now_s,
                                   data={"device": device_name,
                                         "descriptor": descriptor,
                                         "member_count": len(self._members)}))

    def members(self) -> List[str]:
        return sorted(self._members)

    def measure(self, now_s: float) -> List[Event]:
        events, self._pending = self._pending, []
        return events
