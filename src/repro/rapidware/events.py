"""The RAPIDware event model.

RAPIDware's adaptive components ("raplets") come in two kinds: *observers*
"collectively monitor the state of the system" and, when they detect a
relevant event, ask a *responder* to act.  Events therefore need a common
vocabulary and a delivery mechanism; this module provides both.

Example events named by the paper: "changes in the quality of a network
connection, disparities among collaborating devices, and changes in
user/application preferences or policies".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Event types used by the built-in observers and responders.
EVENT_LOSS_RATE = "loss-rate"            # quality of a network connection
EVENT_BANDWIDTH = "bandwidth"            # channel utilisation / throughput
EVENT_HANDOFF = "handoff"                # user migrated to a different cell
EVENT_DEVICE_JOINED = "device-joined"    # a (possibly limited) device joined
EVENT_DEVICE_LEFT = "device-left"
EVENT_PREFERENCE_CHANGED = "preference-changed"
EVENT_FILTER_INSERTED = "filter-inserted"   # responders announce actions
EVENT_FILTER_REMOVED = "filter-removed"

#: Severity levels attached to observations.
SEVERITY_INFO = "info"
SEVERITY_DEGRADED = "degraded"
SEVERITY_CRITICAL = "critical"


@dataclass(frozen=True)
class Event:
    """One observation or notification flowing between raplets."""

    event_type: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)
    severity: str = SEVERITY_INFO
    time_s: float = 0.0

    def value(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into the event's data dictionary."""
        return self.data.get(key, default)


EventHandler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe bus connecting observers and responders.

    Delivery is synchronous and in subscription order, which keeps the
    adaptive control loop deterministic (important for reproducible
    experiments).  Handlers that raise are counted but do not affect other
    handlers.
    """

    def __init__(self) -> None:
        self._handlers: Dict[str, List[EventHandler]] = {}
        self._any_handlers: List[EventHandler] = []
        self._lock = threading.RLock()
        self.events_published = 0
        self.handler_errors = 0
        self.history: List[Event] = []

    def subscribe(self, event_type: Optional[str], handler: EventHandler) -> None:
        """Subscribe to one event type, or to every event when type is None."""
        with self._lock:
            if event_type is None:
                self._any_handlers.append(handler)
            else:
                self._handlers.setdefault(event_type, []).append(handler)

    def unsubscribe(self, event_type: Optional[str], handler: EventHandler) -> None:
        with self._lock:
            handlers = (self._any_handlers if event_type is None
                        else self._handlers.get(event_type, []))
            if handler in handlers:
                handlers.remove(handler)

    def publish(self, event: Event) -> int:
        """Deliver ``event``; returns the number of handlers that ran cleanly."""
        with self._lock:
            targets = list(self._handlers.get(event.event_type, []))
            targets.extend(self._any_handlers)
            self.events_published += 1
            self.history.append(event)
        delivered = 0
        for handler in targets:
            try:
                handler(event)
            except Exception:  # noqa: BLE001 - raplet faults must not spread
                self.handler_errors += 1
                continue
            delivered += 1
        return delivered

    def events_of_type(self, event_type: str) -> List[Event]:
        """Every published event of the given type (for tests/reports)."""
        with self._lock:
            return [e for e in self.history if e.event_type == event_type]
