"""RAPIDware adaptive middleware: observer and responder raplets.

Observers monitor the running system (link quality, channel utilisation,
user mobility, session membership); responders react by recomposing the
proxy's filter chain through its ControlThread — the paper's demand-driven
adaptation, with the FEC-on-loss scenario of Section 3 packaged as
:func:`~repro.rapidware.session.run_adaptive_walk_experiment`.
"""

from .events import (
    EVENT_BANDWIDTH,
    EVENT_DEVICE_JOINED,
    EVENT_DEVICE_LEFT,
    EVENT_FILTER_INSERTED,
    EVENT_FILTER_REMOVED,
    EVENT_HANDOFF,
    EVENT_LOSS_RATE,
    EVENT_PREFERENCE_CHANGED,
    SEVERITY_CRITICAL,
    SEVERITY_DEGRADED,
    SEVERITY_INFO,
    Event,
    EventBus,
)
from .observers import (
    BandwidthObserver,
    LossRateObserver,
    MembershipObserver,
    MigrationObserver,
)
from .policy import AdaptationLimits, FecPolicy, UserPreferences
from .raplets import ObserverRaplet, Raplet, ResponderRaplet
from .responders import FecResponder, TranscoderResponder
from .session import (
    AdaptiveAudioSession,
    AdaptiveWalkResult,
    WalkStepRecord,
    run_adaptive_walk_experiment,
)

__all__ = [
    "Event",
    "EventBus",
    "EVENT_LOSS_RATE",
    "EVENT_BANDWIDTH",
    "EVENT_HANDOFF",
    "EVENT_DEVICE_JOINED",
    "EVENT_DEVICE_LEFT",
    "EVENT_PREFERENCE_CHANGED",
    "EVENT_FILTER_INSERTED",
    "EVENT_FILTER_REMOVED",
    "SEVERITY_INFO",
    "SEVERITY_DEGRADED",
    "SEVERITY_CRITICAL",
    "Raplet",
    "ObserverRaplet",
    "ResponderRaplet",
    "LossRateObserver",
    "BandwidthObserver",
    "MigrationObserver",
    "MembershipObserver",
    "FecResponder",
    "TranscoderResponder",
    "FecPolicy",
    "AdaptationLimits",
    "UserPreferences",
    "AdaptiveAudioSession",
    "AdaptiveWalkResult",
    "WalkStepRecord",
    "run_adaptive_walk_experiment",
]
