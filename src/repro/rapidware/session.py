"""The adaptive session: observers + responders driving a live proxy.

This module wires the pieces of the paper's Section 3 scenario together:

    "Suppose that this proxy receives a live video [audio] stream on a
    socket, transcodes the stream ... and forwards the resulting data to one
    or more wireless handheld computers.  Now let us assume that the user
    wants to maintain the connection as she moves from her office (near the
    access point) to a conference room down the hall. ... When losses rise
    above a given level, the RAPIDware system should insert an FEC filter
    into the video stream.  However, the insertion should not disturb the
    connection to the source of the stream."

:class:`AdaptiveAudioSession` hosts a live audio stream through a RAPIDware
proxy onto the simulated wireless LAN, with a loss-rate observer and an FEC
responder attached; :func:`run_adaptive_walk_experiment` drives the walk and
records, per time step, the observed loss, whether FEC was active, and the
raw/recovered delivery — the data behind experiment E2.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import List, Optional

from ..core import CallableSource, ControlThread, Proxy
from ..media import AudioPacketizer, MediaPacket, ToneSource
from ..net import DeliveryReport, LinearWalk, WirelessLAN
from ..proxies.fec_audio_proxy import WirelessAudioReceiver
from ..transport import TransportSink, open_wireless_channel
from .events import EventBus
from .observers import LossRateObserver, MigrationObserver
from .policy import AdaptationLimits, FecPolicy
from .responders import FecResponder


class AdaptiveAudioSession:
    """A live audio stream through a proxy whose FEC adapts to link quality."""

    def __init__(self, wlan: Optional[WirelessLAN] = None,
                 receiver_name: str = "mobile-host",
                 initial_distance_m: float = 5.0,
                 policy: Optional[FecPolicy] = None,
                 limits: Optional[AdaptationLimits] = None,
                 observer_min_sample: int = 10,
                 seed: int = 7,
                 engine=None,
                 transport=None) -> None:
        # The wireless segment is a transport channel; the simulated WLAN is
        # the default (and the only transport whose receivers carry the loss
        # models and distances the adaptation plane observes — under any
        # other transport :meth:`observe` and :meth:`move_receiver` are
        # no-ops and the stream is simply carried unprotected-but-lossless).
        # An explicit ``wlan`` wins; otherwise the transport selection
        # (argument / REPRO_TRANSPORT / default) decides, as for Proxy.
        self.proxy = Proxy("adaptive-audio-proxy", engine=engine,
                           transport=transport)
        self.channel, self.wlan, self._simulated = open_wireless_channel(
            self.proxy, "adaptive-audio", wlan=wlan, seed=seed)
        # Under inproc the capture path is the simulated receiver's inbox,
        # so the channel-side queue would only duplicate every packet for
        # the session's lifetime — leave it off.
        channel_receiver = self.channel.join(receiver_name,
                                             distance_m=initial_distance_m,
                                             seed=seed,
                                             queue_payloads=not self._simulated)
        #: The receiving end used for loss observation and capture: the
        #: simulated WirelessReceiver under inproc (stats, move_to), the
        #: transport receiver otherwise.
        self.receiver = getattr(channel_receiver, "wireless", channel_receiver)
        self.channel_receiver = channel_receiver
        self.audio_receiver = WirelessAudioReceiver(receiver_name)

        # The proxied stream: a queue-fed source (the "socket" from the wired
        # side) and a wireless-multicast sink.  A ``None`` on the queue is
        # the end-of-stream sentinel, so the source blocks on the queue
        # instead of polling it.
        self._queue: "queue.Queue[Optional[bytes]]" = queue.Queue()
        self._source_done = threading.Event()
        self._enqueued_packets = 0
        self._source = CallableSource(self._pull, name="wired-receiver",
                                      frame_output=True)
        self._sink = TransportSink(self.channel, name="wireless-sender",
                                   expect_frames=True)
        self.control: ControlThread = self.proxy.add_stream(
            self._source, self._sink, name="audio", auto_start=True)

        # The adaptive plane.
        self.bus = EventBus()
        self.loss_observer = LossRateObserver(
            self.receiver, self.bus,
            degraded_threshold=(policy or FecPolicy()).insert_threshold,
            min_sample_packets=observer_min_sample)
        self.migration_observer = MigrationObserver(self.receiver, self.bus)
        self.fec_responder = FecResponder(
            self.control, self.bus, policy=policy,
            limits=limits or AdaptationLimits(min_interval_s=1.0))

        # The measured-loss plane: real transports (udp, loopback) have no
        # loss oracle, so a LossEstimator on the channel receiver's delivery
        # hook measures loss from FEC group gaps and media sequence gaps,
        # and a MeasuredLossObserver publishes the same EVENT_LOSS_RATE the
        # simulated observer does — the FecResponder drives off either.
        self.loss_estimator = None
        self.measured_observer = None
        if not self._simulated:
            # Imported lazily: repro.obs.loss imports this package.
            from ..obs.loss import LossEstimator, MeasuredLossObserver

            self.loss_estimator = LossEstimator()
            self.loss_estimator.attach(channel_receiver)
            self.measured_observer = MeasuredLossObserver(
                self.loss_estimator, self.bus, receiver_name=receiver_name,
                degraded_threshold=(policy or FecPolicy()).insert_threshold,
                min_sample_packets=observer_min_sample)

        self._highest_enqueued_sequence = -1

    # -- stream feeding ----------------------------------------------------------

    def _pull(self) -> Optional[bytes]:
        item = self._queue.get()
        return None if item is None else item

    def enqueue_packets(self, packets: List[MediaPacket]) -> None:
        """Feed a batch of audio packets into the proxied stream."""
        for packet in packets:
            self._queue.put(packet.pack())
            self._enqueued_packets += 1
            if packet.sequence > self._highest_enqueued_sequence:
                self._highest_enqueued_sequence = packet.sequence

    def end_of_stream(self) -> None:
        """Signal that no more packets will be fed."""
        self._source_done.set()
        self._queue.put(None)  # wake the source's blocking queue wait

    def wait_quiescent(self, timeout: float = 10.0,
                       poll_interval: Optional[float] = None) -> bool:
        """Wait until everything already enqueued has left the proxy.

        Quiescence means: the feed queue is empty, every enqueued packet has
        entered the chain, and every chain element is idle (no buffered
        input, nothing mid-transform).  FEC groups that are still filling
        count as quiescent — they hold data by design.  The wait is
        condition-driven (each element signals after every unit of work);
        ``poll_interval`` is kept for API compatibility and ignored.
        """
        del poll_interval
        return self.control.wait_idle(
            timeout=timeout,
            extra=lambda: (self._queue.empty()
                           and self._source.items_produced
                           >= self._enqueued_packets))

    # -- adaptation ---------------------------------------------------------------

    def observe(self, now_s: float) -> None:
        """Run every observer once (responders react synchronously).

        Under the simulated transport the oracle observers run (the inproc
        receiver carries exact loss statistics and distance); under real
        transports the measured-loss observer runs instead, driven by the
        :class:`~repro.obs.loss.LossEstimator` on the receive path.
        """
        if self._simulated:
            self.migration_observer.observe(now_s)
            self.loss_observer.observe(now_s)
        elif self.measured_observer is not None:
            self.measured_observer.observe(now_s)

    def move_receiver(self, distance_m: float) -> None:
        """Move the simulated receiver (a no-op on other transports)."""
        if not self._simulated:
            return
        self.receiver.move_to(distance_m)

    @property
    def fec_active(self) -> bool:
        return self.fec_responder.fec_active

    # -- results -------------------------------------------------------------------

    def collect_received(self) -> None:
        """Feed everything captured by the wireless receiver to the decoder."""
        self.audio_receiver.process(self.receiver.take())

    def finish(self, timeout: float = 30.0) -> None:
        """End the stream, drain the chain, and flush FEC state."""
        self.end_of_stream()
        self.control.wait_for_completion(timeout=timeout)
        self.collect_received()
        self.audio_receiver.finish()

    def delivery_report(self) -> DeliveryReport:
        total = self._highest_enqueued_sequence + 1
        return self.audio_receiver.delivery_report(total)

    def shutdown(self) -> None:
        self._source_done.set()
        self._queue.put(None)  # unblock the source's queue wait
        self.proxy.shutdown()


@dataclass
class WalkStepRecord:
    """What happened during one step of the adaptive-walk experiment."""

    time_s: float
    distance_m: float
    observed_loss_rate: float
    fec_active: bool
    fec_code: Optional["tuple[int, int]"]
    first_sequence: int
    last_sequence: int


@dataclass
class AdaptiveWalkResult:
    """The full record of one adaptive-walk run (experiment E2)."""

    steps: List[WalkStepRecord] = field(default_factory=list)
    report: Optional[DeliveryReport] = None
    insertions: int = 0
    removals: int = 0
    upgrades: int = 0
    adaptation_times_s: List[float] = field(default_factory=list)

    def fec_activation_time(self) -> Optional[float]:
        """The simulated time at which FEC was first switched on."""
        for step in self.steps:
            if step.fec_active:
                return step.time_s
        return None

    def received_percent_in(self, first_sequence: int, last_sequence: int) -> float:
        assert self.report is not None
        span = range(first_sequence, last_sequence + 1)
        count = len(list(span))
        if count == 0:
            return 100.0
        got = sum(1 for s in span if s in self.report.reconstructed)
        return 100.0 * got / count


def run_adaptive_walk_experiment(
        walk: Optional[LinearWalk] = None,
        adaptive: bool = True,
        policy: Optional[FecPolicy] = None,
        step_s: float = 0.4,
        packet_duration_ms: int = 20,
        audio_seed: int = 11,
        wlan_seed: int = 13,
        quiesce_timeout_s: float = 30.0) -> AdaptiveWalkResult:
    """Run the Section 3 walk scenario and record the adaptation behaviour.

    The user walks from ``walk.start_distance_m`` to ``walk.end_distance_m``
    over ``walk.duration_s`` seconds of audio.  When ``adaptive`` is False
    the FEC responder is disabled, giving the unprotected baseline.
    """
    walk = walk or LinearWalk(start_distance_m=5.0, end_distance_m=40.0,
                              duration_s=20.0)
    session = AdaptiveAudioSession(
        wlan=WirelessLAN(seed=wlan_seed),
        initial_distance_m=walk.start_distance_m,
        policy=policy, seed=wlan_seed)
    if not adaptive:
        session.fec_responder.disable()

    source = ToneSource(duration=walk.duration_s)
    packets = AudioPacketizer(source,
                              packet_duration_ms=packet_duration_ms).packet_list()
    packets_per_step = max(1, int(round(step_s * 1000.0 / packet_duration_ms)))

    result = AdaptiveWalkResult()
    try:
        cursor = 0
        now_s = 0.0
        while cursor < len(packets):
            batch = packets[cursor:cursor + packets_per_step]
            cursor += len(batch)
            session.move_receiver(walk.distance_at(now_s))
            session.enqueue_packets(batch)
            if not session.wait_quiescent(timeout=quiesce_timeout_s):
                raise RuntimeError("the adaptive session failed to quiesce")
            session.collect_received()
            session.observe(now_s)
            result.steps.append(WalkStepRecord(
                time_s=now_s,
                distance_m=walk.distance_at(now_s),
                observed_loss_rate=session.loss_observer.last_loss_rate,
                fec_active=session.fec_active,
                fec_code=session.fec_responder.current_code,
                first_sequence=batch[0].sequence,
                last_sequence=batch[-1].sequence))
            now_s += step_s
        session.finish(timeout=quiesce_timeout_s)
        result.report = session.delivery_report()
        result.insertions = session.fec_responder.insertions
        result.removals = session.fec_responder.removals
        result.upgrades = session.fec_responder.upgrades
        result.adaptation_times_s = [
            event.time_s for event in session.bus.events_of_type("filter-inserted")]
    finally:
        session.shutdown()
    return result
