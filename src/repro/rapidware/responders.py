"""Responder raplets: the components that actually reconfigure the proxy.

"Responder raplets are programmed to handle such events by instantiating new
components or modifying the behavior of a communication protocol or user
interface."  The responders here modify a proxy's filter chain through its
ControlThread:

* :class:`FecResponder` — the paper's headline adaptation: insert an FEC
  encoder when the observed loss rate rises, upgrade/downgrade its (n, k)
  as loss changes, remove it when the link is clean again;
* :class:`TranscoderResponder` — insert bandwidth-reducing transcoders when
  a resource-limited device joins (or the channel saturates) and remove
  them when they are no longer needed.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import CompositionError, ControlThread, Filter
from ..filters import (
    AudioDownsampleFilter,
    AudioMonoFilter,
    FecEncoderFilter,
    VideoBFrameDropFilter,
)
from ..obs.events import EVENT_FEC_POLICY_CHANGE, get_event_log
from .events import (
    EVENT_BANDWIDTH,
    EVENT_DEVICE_JOINED,
    EVENT_DEVICE_LEFT,
    EVENT_FILTER_INSERTED,
    EVENT_FILTER_REMOVED,
    EVENT_HANDOFF,
    EVENT_LOSS_RATE,
    Event,
    EventBus,
)
from .policy import AdaptationLimits, FecPolicy, UserPreferences
from .raplets import ResponderRaplet


class FecResponder(ResponderRaplet):
    """Demand-driven FEC: insert/adjust/remove the encoder as loss changes."""

    subscriptions = (EVENT_LOSS_RATE, EVENT_HANDOFF)

    def __init__(self, control: ControlThread, bus: EventBus,
                 policy: Optional[FecPolicy] = None,
                 limits: Optional[AdaptationLimits] = None,
                 preferences: Optional[UserPreferences] = None,
                 position: int = 0,
                 name: str = "fec-responder") -> None:
        super().__init__(name, bus)
        self.control = control
        self.policy = policy or FecPolicy()
        self.limits = limits or AdaptationLimits()
        self.preferences = preferences or UserPreferences()
        self.position = position
        self._encoder: Optional[FecEncoderFilter] = None
        self.insertions = 0
        self.removals = 0
        self.upgrades = 0

    # -- state -----------------------------------------------------------------

    @property
    def fec_active(self) -> bool:
        return self._encoder is not None

    @property
    def current_code(self) -> Optional["tuple[int, int]"]:
        if self._encoder is None:
            return None
        return (self._encoder.k, self._encoder.n)

    # -- event handling ----------------------------------------------------------

    def respond(self, event: Event) -> bool:
        if not self.preferences.allow_fec:
            return False
        if event.event_type == EVENT_LOSS_RATE:
            return self._respond_to_loss(event)
        if event.event_type == EVENT_HANDOFF:
            # A handoff into a distant zone is treated as an early warning:
            # re-evaluate using the loss rate implied by the new distance.
            distance = float(event.value("distance_m", 0.0))
            from ..net import loss_probability_at_distance

            synthetic = Event(event_type=EVENT_LOSS_RATE, source=event.source,
                              time_s=event.time_s,
                              data={"loss_rate":
                                    loss_probability_at_distance(distance),
                                    "receiver": event.value("receiver", "")})
            return self._respond_to_loss(synthetic)
        return False

    def _respond_to_loss(self, event: Event) -> bool:
        loss_rate = float(event.value("loss_rate", 0.0))
        now_s = event.time_s
        if self.policy.should_remove(loss_rate, self.fec_active):
            return self._remove(now_s)
        if self.policy.should_insert(loss_rate, self.fec_active):
            k, n = self.policy.code_for(loss_rate)
            if not self.fec_active:
                return self._insert(k, n, now_s)
            if (k, n) != self.current_code:
                return self._change_code(k, n, now_s)
        return False

    # -- actions -----------------------------------------------------------------

    def _insert(self, k: int, n: int, now_s: float) -> bool:
        if not self.limits.permits(now_s):
            return False
        encoder = FecEncoderFilter(k=k, n=n, name=f"{self.name}-fec({n},{k})")
        try:
            self.control.add(encoder, position=self.position)
        except CompositionError:
            return False
        self._encoder = encoder
        self.insertions += 1
        self.limits.record_action(now_s)
        self.bus.publish(Event(event_type=EVENT_FILTER_INSERTED, source=self.name,
                               time_s=now_s,
                               data={"filter": encoder.name, "k": k, "n": n}))
        self._log_policy_change("insert", k=k, n=n, filter=encoder.name)
        return True

    def _remove(self, now_s: float) -> bool:
        if self._encoder is None or not self.limits.permits(now_s):
            return False
        try:
            self.control.remove(self._encoder)
        except CompositionError:
            return False
        removed = self._encoder
        self._encoder = None
        self.removals += 1
        self.limits.record_action(now_s)
        self.bus.publish(Event(event_type=EVENT_FILTER_REMOVED, source=self.name,
                               time_s=now_s, data={"filter": removed.name}))
        self._log_policy_change("remove", filter=removed.name)
        return True

    def _change_code(self, k: int, n: int, now_s: float) -> bool:
        if self._encoder is None or not self.limits.permits(now_s):
            return False
        new_encoder = FecEncoderFilter(k=k, n=n, name=f"{self.name}-fec({n},{k})")
        try:
            self.control.replace(self._encoder, new_encoder)
        except CompositionError:
            return False
        self._encoder = new_encoder
        self.upgrades += 1
        self.limits.record_action(now_s)
        self.bus.publish(Event(event_type=EVENT_FILTER_INSERTED, source=self.name,
                               time_s=now_s,
                               data={"filter": new_encoder.name, "k": k, "n": n,
                                     "replaced": True}))
        self._log_policy_change("change-code", k=k, n=n,
                                filter=new_encoder.name)
        return True

    def _log_policy_change(self, action: str, **fields) -> None:
        """Record one FEC policy transition in the process event log."""
        get_event_log().emit(
            EVENT_FEC_POLICY_CHANGE, stream=self.control.name,
            cid=getattr(self.control, "correlation_id", ""),
            action=action, responder=self.name, **fields)


class TranscoderResponder(ResponderRaplet):
    """Insert bandwidth-reducing transcoders for limited devices or congestion.

    Keeps at most one transcoder chain active; when the last limited device
    leaves (or utilisation falls back), the chain is removed again.
    """

    subscriptions = (EVENT_DEVICE_JOINED, EVENT_DEVICE_LEFT, EVENT_BANDWIDTH)

    def __init__(self, control: ControlThread, bus: EventBus,
                 limits: Optional[AdaptationLimits] = None,
                 preferences: Optional[UserPreferences] = None,
                 utilisation_threshold: float = 0.85,
                 name: str = "transcoder-responder") -> None:
        super().__init__(name, bus)
        self.control = control
        self.limits = limits or AdaptationLimits(min_interval_s=0.0)
        self.preferences = preferences or UserPreferences()
        self.utilisation_threshold = utilisation_threshold
        self._active_filters: List[Filter] = []
        self._limited_devices: set = set()

    @property
    def transcoding_active(self) -> bool:
        return bool(self._active_filters)

    def respond(self, event: Event) -> bool:
        if not self.preferences.allow_transcoding:
            return False
        if event.event_type == EVENT_DEVICE_JOINED:
            return self._on_device_joined(event)
        if event.event_type == EVENT_DEVICE_LEFT:
            return self._on_device_left(event)
        if event.event_type == EVENT_BANDWIDTH:
            return self._on_bandwidth(event)
        return False

    def _descriptor_is_limited(self, descriptor: dict) -> bool:
        return bool(descriptor.get("limited")
                    or descriptor.get("max_audio_channels", 2) < 2
                    or not descriptor.get("supports_video_b_frames", True))

    def _on_device_joined(self, event: Event) -> bool:
        descriptor = dict(event.value("descriptor", {}) or {})
        if not self._descriptor_is_limited(descriptor):
            return False
        self._limited_devices.add(event.value("device", ""))
        return self._engage(event.time_s, descriptor)

    def _on_device_left(self, event: Event) -> bool:
        self._limited_devices.discard(event.value("device", ""))
        if self._limited_devices:
            return False
        return self._disengage(event.time_s)

    def _on_bandwidth(self, event: Event) -> bool:
        utilisation = float(event.value("utilisation", 0.0))
        if utilisation >= self.utilisation_threshold and not self.transcoding_active:
            return self._engage(event.time_s, {"max_audio_channels": 1})
        if (utilisation < self.utilisation_threshold / 2
                and self.transcoding_active and not self._limited_devices):
            return self._disengage(event.time_s)
        return False

    def _engage(self, now_s: float, descriptor: dict) -> bool:
        if self.transcoding_active or not self.limits.permits(now_s):
            return False
        chain: List[Filter] = []
        if descriptor.get("max_audio_channels", 2) < 2:
            chain.append(AudioMonoFilter(name=f"{self.name}-mono"))
        chain.append(AudioDownsampleFilter(factor=2, name=f"{self.name}-downsample"))
        if not descriptor.get("supports_video_b_frames", True):
            chain.append(VideoBFrameDropFilter(name=f"{self.name}-bdrop"))
        try:
            for offset, filter_obj in enumerate(chain):
                self.control.add(filter_obj, position=offset)
        except CompositionError:
            for filter_obj in list(self._active_filters):
                self._safe_remove(filter_obj)
            return False
        self._active_filters = chain
        self.limits.record_action(now_s)
        self.bus.publish(Event(event_type=EVENT_FILTER_INSERTED, source=self.name,
                               time_s=now_s,
                               data={"filters": [f.name for f in chain]}))
        return True

    def _disengage(self, now_s: float) -> bool:
        if not self.transcoding_active or not self.limits.permits(now_s):
            return False
        removed_names = []
        for filter_obj in list(self._active_filters):
            if self._safe_remove(filter_obj):
                removed_names.append(filter_obj.name)
        self._active_filters = []
        self.limits.record_action(now_s)
        self.bus.publish(Event(event_type=EVENT_FILTER_REMOVED, source=self.name,
                               time_s=now_s, data={"filters": removed_names}))
        return True

    def _safe_remove(self, filter_obj: Filter) -> bool:
        try:
            self.control.remove(filter_obj)
            return True
        except CompositionError:
            return False
