"""The transport interface and registry.

A :class:`Transport` owns *where* a proxy's packets and byte streams travel
— it decouples the endpoint layer (:mod:`repro.core.endpoints`,
:mod:`repro.transport.endpoints`) from the network substrate, exactly as
:mod:`repro.runtime` decouples chain execution from the concurrency model
and :mod:`repro.fec.backend` decouples the erasure code from its field
algebra.  Three transports ship with the repo:

* :class:`~repro.transport.inproc.InprocTransport` — the paper's simulated
  testbed (:mod:`repro.net`): seeded per-receiver loss models, WaveLAN
  airtime accounting, deterministic and single-process;
* :class:`~repro.transport.udp.UdpTransport` — real UDP sockets (unicast
  fan-out or IP multicast) with length-prefixed packet framing, so a proxy
  and its receivers can run as separate OS processes;
* :class:`~repro.transport.loopback.LoopbackTransport` — zero-config
  in-memory queue pairs for tests.

Every transport offers two services:

* a **datagram service** (:meth:`Transport.open_channel`): a named
  many-to-many channel with ``send`` (multicast to every member) and
  ``send_to`` (unicast), members joining with :meth:`DatagramChannel.join`;
* a **stream service** (:meth:`Transport.listen` /
  :meth:`Transport.connect`): reliable, ordered byte pipes (TCP for the UDP
  transport, in-memory pipes otherwise) behind
  :class:`StreamConnection`/:class:`StreamListener`.

Transports are held in a process-wide registry of factories.  Selection, in
priority order:

1. an explicit ``transport=`` argument (name or instance) on ``Proxy`` /
   ``ControlThread`` / the composed proxies and sessions,
2. the ``REPRO_TRANSPORT`` environment variable,
3. the registry default (inproc).
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from ..obs.metrics import register_channel as _obs_register_channel

#: Environment variable consulted by :func:`get_transport` when no explicit
#: transport is requested.
TRANSPORT_ENV_VAR = "REPRO_TRANSPORT"


class TransportError(RuntimeError):
    """Raised for unknown transport names or invalid transport operations."""


class TransportTimeoutError(TransportError):
    """Raised when a blocking transport operation exceeds its timeout."""


#: Zero-argument readiness listener (the same contract as
#: :meth:`repro.streams.detachable.DetachableInputStream.subscribe`): fired
#: after a receiver's externally observable state changed — a datagram
#: arrived or end-of-stream was reached.  Event-driven engines use it as a
#: wake-up signal instead of polling.
ReceiverListener = Callable[[], None]

#: Optional per-datagram delivery callback (payload bytes), mirroring the
#: ``on_receive`` hook of :class:`repro.net.wlan.WirelessReceiver`.
DeliveryCallback = Callable[[bytes], None]


class DatagramReceiver(ABC):
    """One member's receiving end of a datagram channel.

    The host-facing API mirrors :class:`repro.net.wlan.WirelessReceiver`
    (``take``/``pending``) and adds the blocking/non-blocking reads and the
    readiness hooks the endpoint layer needs: :meth:`poll` never blocks,
    :meth:`recv` blocks with a timeout, :meth:`subscribe` registers a
    readiness listener, and :meth:`selectable_fileno` exposes a selectable
    file descriptor when the transport has one (UDP), so an event engine can
    multiplex many receivers on one scheduler thread.
    """

    def __init__(self, name: str,
                 on_receive: Optional[DeliveryCallback] = None,
                 queue_payloads: bool = True) -> None:
        self.name = name
        self.on_receive = on_receive
        #: When False, delivered payloads are handed to ``on_receive`` (and
        #: counted) but never queued — the mode for pure-callback consumers
        #: (the session layers), whose receivers would otherwise accumulate
        #: every payload for the lifetime of the session.
        self.queue_payloads = queue_payloads
        self.packets_received = 0
        self.bytes_received = 0
        self._queue: Deque[bytes] = deque()
        self._cond = threading.Condition()
        self._eof = False
        self._closed = False
        self._listeners: List[ReceiverListener] = []

    # -- delivery (transport-facing) ------------------------------------------

    def _deliver(self, payload: bytes) -> None:
        """Queue one arrived payload and fire the readiness hooks."""
        with self._cond:
            if self._closed:
                return
            if self.queue_payloads:
                self._queue.append(payload)
            self.packets_received += 1
            self.bytes_received += len(payload)
            self._cond.notify_all()
        if self.on_receive is not None:
            try:
                self.on_receive(payload)
            except Exception:  # noqa: BLE001 - receiver faults must not spread
                pass
        self._fire_listeners()

    def _mark_eof(self) -> None:
        """Record that no further datagram will ever arrive (idempotent)."""
        with self._cond:
            if self._eof:
                return
            self._eof = True
            self._cond.notify_all()
        self._fire_listeners()

    # -- host-facing API -------------------------------------------------------

    def poll(self) -> Optional[bytes]:
        """Return the next payload without blocking, or None if none queued."""
        with self._cond:
            return self._queue.popleft() if self._queue else None

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Return the next payload, blocking up to ``timeout`` seconds.

        Returns ``None`` at end-of-stream (the sender closed the channel, or
        this receiver was closed); raises :class:`TransportTimeoutError` when
        the timeout elapses first.
        """
        deadline = None if timeout is None else _monotonic() + timeout
        with self._cond:
            while True:
                if self._queue:
                    return self._queue.popleft()
                if self._eof or self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - _monotonic()
                    if remaining <= 0:
                        raise TransportTimeoutError(
                            f"receiver {self.name!r}: recv timed out")
                if not self._cond.wait(remaining):
                    raise TransportTimeoutError(
                        f"receiver {self.name!r}: recv timed out")

    def take(self) -> List[bytes]:
        """Drain and return everything delivered since the last read."""
        with self._cond:
            items = list(self._queue)
            self._queue.clear()
            return items

    def pending(self) -> int:
        """Number of delivered-but-unread payloads."""
        with self._cond:
            return len(self._queue)

    def at_eof(self) -> bool:
        """True when no payload will ever be readable again."""
        with self._cond:
            return (self._eof or self._closed) and not self._queue

    def selectable_fileno(self) -> Optional[int]:
        """A selectable file descriptor signalling readiness, if any.

        Queue-backed receivers return ``None`` (their readiness signal is
        :meth:`subscribe`); socket-backed receivers return the socket fd so
        an event engine can park them on its selector.
        """
        return None

    def close(self) -> None:
        """Stop receiving; queued payloads are discarded."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._queue.clear()
            self._cond.notify_all()
        self._fire_listeners()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    # -- readiness hooks -------------------------------------------------------

    def subscribe(self, listener: ReceiverListener) -> None:
        """Register a readiness listener (duplicate registrations dedupe)."""
        if listener is None:
            raise ValueError("listener must be callable, not None")
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: ReceiverListener) -> None:
        """Remove a previously registered listener (missing is a no-op)."""
        self._listeners = [cb for cb in self._listeners if cb != listener]

    def _fire_listeners(self) -> None:
        if not self._listeners:
            return
        for listener in list(self._listeners):
            try:
                listener()
            except Exception:  # noqa: BLE001 - listeners must not break delivery
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name} "
                f"received={self.packets_received} eof={self.at_eof()}>")


class DatagramChannel(ABC):
    """A named many-to-many datagram domain (one multicast group).

    ``send`` multicasts to every member, ``send_to`` unicasts to one;
    :meth:`join` registers a member and returns its
    :class:`DatagramReceiver`.  :meth:`close` ends the stream: every member
    observes end-of-stream after draining what was already delivered.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.packets_sent = 0
        self.bytes_sent = 0
        #: Datagrams a best-effort transport dropped at send time (socket
        #: errors on UDP); queue-backed transports never increment it.
        self.send_errors = 0
        self._closed = False
        # Fleet observability: scrape-time collectors walk live channels
        # through a WeakSet, so registration costs nothing after __init__.
        _obs_register_channel(self)

    @abstractmethod
    def join(self, member: str, **options) -> DatagramReceiver:
        """Add a member and return its receiving end.

        Transport-specific options (``distance_m``/``loss_model``/``seed``
        for inproc, ``address`` for UDP) are keyword-only; transports ignore
        options that do not apply to them.
        """

    @abstractmethod
    def leave(self, member: str) -> None:
        """Remove a member (missing is a no-op)."""

    @abstractmethod
    def send(self, data: bytes) -> int:
        """Multicast one datagram to every member; returns members targeted."""

    @abstractmethod
    def send_to(self, member: str, data: bytes) -> bool:
        """Unicast one datagram to a single member; True when sent."""

    def send_many(self, payloads) -> int:
        """Multicast many datagrams; returns payloads delivered to >= 1
        member.

        Semantically a loop of :meth:`send` — same per-payload framing,
        accounting and error behaviour — and that is exactly the default.
        Transports with a genuinely vectored wire path (UDP's ``sendmmsg``)
        override it so the whole batch costs one syscall per member.
        """
        delivered = 0
        for payload in payloads:
            if self.send(payload) > 0:
                delivered += 1
        return delivered

    @abstractmethod
    def members(self) -> List[str]:
        """Names of the current members."""

    def local_receivers(self) -> List[DatagramReceiver]:
        """Receivers this process hosts for the channel (for metrics).

        Transports that track members in-process override this; the base
        returns an empty list so remote-only channels stay scrape-safe.
        """
        return []

    def close(self) -> None:
        """End the stream: signal end-of-stream to every member (idempotent)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def _account(self, nbytes: int) -> None:
        self.packets_sent += 1
        self.bytes_sent += nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name} "
                f"members={self.members()} sent={self.packets_sent}>")


class StreamConnection(ABC):
    """One end of a reliable, ordered byte pipe (the stream service)."""

    @abstractmethod
    def send(self, data: bytes) -> None:
        """Deliver every byte of ``data`` (blocking until accepted)."""

    @abstractmethod
    def recv(self, max_bytes: int = 65536,
             timeout: Optional[float] = None) -> bytes:
        """Read up to ``max_bytes``; ``b""`` only at end-of-stream.

        Raises :class:`TransportTimeoutError` when ``timeout`` elapses with
        no data.
        """

    @abstractmethod
    def close(self) -> None:
        """Close both directions (idempotent)."""

    def close_sending(self) -> None:
        """Half-close: signal end-of-stream to the peer, keep receiving."""
        self.close()

    def fileno(self) -> Optional[int]:
        """The underlying selectable fd, when the transport has one."""
        return None


class StreamListener(ABC):
    """The accepting side of the stream service."""

    @property
    @abstractmethod
    def address(self):
        """The address peers pass to :meth:`Transport.connect`."""

    @abstractmethod
    def accept(self, timeout: Optional[float] = None) -> StreamConnection:
        """Wait for one inbound connection."""

    @abstractmethod
    def close(self) -> None:
        """Stop accepting (idempotent)."""


class Transport(ABC):
    """Interface for network substrates (simulated or real).

    One transport instance may serve many channels and streams — sharing an
    instance across a proxy's streams (as :class:`repro.core.proxy.Proxy`
    does) is what lets one UDP transport own all of the proxy's sockets.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def open_channel(self, name: str = "default", **options) -> DatagramChannel:
        """Create (or look up) the named datagram channel."""

    @abstractmethod
    def listen(self, address=None) -> StreamListener:
        """Open a stream listener (``None`` picks a fresh address)."""

    @abstractmethod
    def connect(self, address) -> StreamConnection:
        """Open a stream connection to a listener's address."""

    def close(self) -> None:
        """Release transport-wide resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: Dict[str, Callable[[], "Transport"]] = {}
_DEFAULT_NAME: Optional[str] = None


def register_transport(name: str, factory: Callable[[], Transport],
                       make_default: bool = False) -> None:
    """Add a transport factory to the registry (replacing any same name)."""
    if not name:
        raise TransportError("transport must have a non-empty name")
    _REGISTRY[name] = factory
    global _DEFAULT_NAME
    if make_default or _DEFAULT_NAME is None:
        _DEFAULT_NAME = name


def available_transports() -> List[str]:
    """Names of every registered transport."""
    return sorted(_REGISTRY)


def set_default_transport(name: str) -> None:
    """Make ``name`` the process-wide default transport."""
    if name not in _REGISTRY:
        raise TransportError(
            f"unknown transport {name!r}; "
            f"available: {', '.join(available_transports())}")
    global _DEFAULT_NAME
    _DEFAULT_NAME = name


def _instantiate(name: Optional[str]) -> Transport:
    """Registry lookup + construction, with no chaos decoration."""
    if name is None:
        raise TransportError("no transport registered")
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise TransportError(
            f"unknown transport {name!r}; "
            f"available: {', '.join(available_transports())}") from None
    return factory()


def get_transport(name: Optional[str] = None) -> Transport:
    """Instantiate a transport by name, environment variable, or default.

    ``None`` consults ``REPRO_TRANSPORT`` and falls back to the registry
    default (inproc).  Unknown names raise :class:`TransportError` so typos
    never silently select the wrong network.  Each call returns a *fresh*
    transport instance; share the instance explicitly (e.g. one per Proxy)
    to share its sockets and channels.

    Fault injection composes here rather than in the registry: a
    ``chaos:<inner>`` name wraps the named transport in a
    :class:`~repro.chaos.transport.ChaosTransport`, and when ``REPRO_CHAOS``
    is set *every* resolution is wrapped — so an unchanged caller (or an
    entire unchanged test suite) runs under the configured fault plan.
    """
    if name is None:
        name = os.environ.get(TRANSPORT_ENV_VAR) or _DEFAULT_NAME
    if name is not None and name.startswith("chaos:"):
        # Imported lazily: repro.chaos imports this module for the base
        # classes, so a top-level import would be circular.
        from ..chaos import ChaosTransport

        inner = name[len("chaos:"):] or _DEFAULT_NAME
        return ChaosTransport(_instantiate(inner))
    transport = _instantiate(name)
    if os.environ.get("REPRO_CHAOS", "").strip():
        from ..chaos import ChaosTransport, FaultPlan

        return ChaosTransport(transport, FaultPlan.from_env())
    return transport


def resolve_transport(transport: Union[str, Transport, None]) -> Transport:
    """Normalise a ``transport=`` argument (instance, name, or None)."""
    if transport is None:
        return get_transport()
    if isinstance(transport, Transport):
        return transport
    if isinstance(transport, str):
        return get_transport(transport)
    raise TransportError(
        f"transport must be a name, Transport, or None: {transport!r}")


def _monotonic() -> float:
    import time

    return time.monotonic()


#: Convenience alias used by annotations in the endpoint layer.
Address = Union[str, Tuple[str, int]]
