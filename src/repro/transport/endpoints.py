"""EndPoints anchoring a filter chain on a transport.

:class:`TransportSource` feeds a chain with the packets arriving at a
:class:`~repro.transport.base.DatagramReceiver`; :class:`TransportSink`
multicasts every packet leaving a chain onto a
:class:`~repro.transport.base.DatagramChannel`.  Together they replace the
ad-hoc pairs the proxies grew before the transport layer existed
(``CallableSink(wlan.send)``, queue-fed ``CallableSource``) with endpoints
that work identically over the simulated LAN, in-memory queues, and real
UDP sockets.

Execution-engine integration:

* under the threaded engine the source blocks in ``receiver.recv`` with a
  short timeout (its dedicated thread can afford to);
* under the event engine the source is *cooperative*: queue-backed
  receivers wake the scheduler through their ``subscribe`` hook, and
  socket-backed receivers expose ``selectable_fileno`` so the engine parks
  them on its selector — N UDP streams run on one scheduler thread with no
  per-socket threads (see :mod:`repro.runtime.event`).
"""

from __future__ import annotations

from typing import Optional

from ..core.endpoints import SinkEndPoint, SourceEndPoint
from .base import DatagramChannel, DatagramReceiver, TransportTimeoutError


class TransportSource(SourceEndPoint):
    """Produces the packets arriving at a transport datagram receiver.

    Each received payload enters the chain as one framed packet
    (``frame_output=True`` by default) so packet filters compose directly.
    End-of-stream is the channel's close (the receiver's EOF).
    """

    type_name = "transport-source"

    #: Cooperative: the pump only reads what is already queued (or already
    #: buffered in the kernel, for socket-backed receivers) and never blocks.
    cooperative_capable = True

    def __init__(self, receiver: DatagramReceiver, name: Optional[str] = None,
                 frame_output: bool = True,
                 poll_interval_s: float = 0.1) -> None:
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        super().__init__(name=name or f"transport-source-{receiver.name}",
                         frame_output=frame_output)
        self.receiver = receiver
        self.poll_interval_s = poll_interval_s

    # -- engine integration ----------------------------------------------------

    def bind_engine(self, engine) -> "TransportSource":
        """Bind to a cooperative engine and hook up receiver readiness."""
        super().bind_engine(engine)
        # Queue-backed receivers signal arrivals through this hook; for
        # socket-backed receivers it only fires on explicit state changes
        # (EOF, close) and the engine's selector provides data readiness.
        self.receiver.subscribe(self._notify_engine)
        return self

    def selectable_fileno(self) -> Optional[int]:
        """The receiver's fd, for the event engine's selector (or None)."""
        return self.receiver.selectable_fileno()

    def wants_input_pump(self) -> bool:
        """True when queued payloads (or EOF) make a pump worthwhile."""
        return self.receiver.pending() > 0 or self.receiver.at_eof()

    # -- production ------------------------------------------------------------

    def produce(self) -> Optional[bytes]:
        """Emit the next received payload (None at end-of-stream)."""
        if self.cooperative:
            # Never block: emit a queued payload, EOF, or nothing (b"" is
            # skipped by the pump and the engine re-parks us until the
            # receiver's hooks report new readiness).
            payload = self.receiver.poll()
            if payload is not None:
                return payload
            if self.receiver.at_eof():
                return None
            return b""
        while not self._stop_event.is_set():
            try:
                return self.receiver.recv(timeout=self.poll_interval_s)
            except TransportTimeoutError:
                continue
        return None

    def stop(self, timeout: float = 5.0) -> None:
        """Stop producing and detach from the receiver's readiness hook."""
        super().stop(timeout=timeout)
        self.receiver.unsubscribe(self._notify_engine)


class TransportSink(SinkEndPoint):
    """Multicasts every packet leaving the chain onto a datagram channel.

    With ``close_channel_on_eof`` (the default) the chain's end-of-stream
    closes the channel, which propagates EOF to every member — including
    receivers in other processes, via the UDP transport's end-of-stream
    datagram.  Disable it when several streams share one channel.
    """

    type_name = "transport-sink"

    #: Sends are non-blocking for every shipped transport (queue append,
    #: simulated multicast, UDP ``sendto``), so the event engine may pump
    #: this sink cooperatively.
    cooperative_capable = True

    def __init__(self, channel: DatagramChannel, name: Optional[str] = None,
                 expect_frames: bool = True,
                 close_channel_on_eof: bool = True) -> None:
        super().__init__(name=name or f"transport-sink-{channel.name}",
                         expect_frames=expect_frames)
        self.channel = channel
        self.close_channel_on_eof = close_channel_on_eof

    def consume(self, data: bytes) -> None:
        """Multicast one packet onto the channel."""
        self.channel.send(data)

    def consume_many(self, items) -> None:
        """Multicast a whole batch through the channel's vectored send.

        One :meth:`DatagramChannel.send_many` call per pump budget — on the
        UDP transport that is one ``sendmmsg`` syscall per member instead
        of one ``sendto`` per packet.
        """
        self.channel.send_many(items)
        self.items_consumed += len(items)

    def finalize(self):
        """Propagate chain end-of-stream by closing the channel."""
        result = super().finalize()
        if self.close_channel_on_eof and not self.channel.closed:
            self.channel.close()
        return result
