"""Pluggable transports: simulated networks and real sockets, one interface.

This package owns *where* a proxy's packets travel, behind the same
registry pattern as the GF(256) backends (:mod:`repro.fec.backend`) and the
execution engines (:mod:`repro.runtime`):

* :class:`InprocTransport` — the paper's simulated testbed (seeded loss
  models, WaveLAN accounting; deterministic, single-process; the default);
* :class:`UdpTransport` — real UDP sockets with packet framing, so the
  proxy and its receivers can run as separate OS processes;
* :class:`LoopbackTransport` — zero-config in-memory queues for tests.

Select with ``Proxy(..., transport=...)`` / ``ControlThread(...,
transport=...)`` (name or instance), the ``REPRO_TRANSPORT`` environment
variable, or :func:`set_default_transport`.
"""

from .base import (
    TRANSPORT_ENV_VAR,
    DatagramChannel,
    DatagramReceiver,
    StreamConnection,
    StreamListener,
    Transport,
    TransportError,
    TransportTimeoutError,
    available_transports,
    get_transport,
    register_transport,
    resolve_transport,
    set_default_transport,
)
from .endpoints import TransportSink, TransportSource
from .inproc import (
    InprocChannel,
    InprocReceiver,
    InprocTransport,
    open_wireless_channel,
)
from .loopback import (
    LoopbackChannel,
    LoopbackReceiver,
    LoopbackTransport,
    MemoryStreamConnection,
    MemoryStreamListener,
    memory_stream_pair,
)
from .udp import (
    EOS_DATAGRAM,
    MAX_DATAGRAM_PAYLOAD,
    TcpStreamConnection,
    TcpStreamListener,
    UdpChannel,
    UdpReceiver,
    UdpTransport,
    decode_datagram,
    encode_datagram,
)

register_transport(InprocTransport.name, InprocTransport, make_default=True)
register_transport(LoopbackTransport.name, LoopbackTransport)
register_transport(UdpTransport.name, UdpTransport)

__all__ = [
    "TRANSPORT_ENV_VAR",
    "Transport",
    "TransportError",
    "TransportTimeoutError",
    "DatagramChannel",
    "DatagramReceiver",
    "StreamConnection",
    "StreamListener",
    "register_transport",
    "available_transports",
    "get_transport",
    "resolve_transport",
    "set_default_transport",
    "InprocTransport",
    "InprocChannel",
    "InprocReceiver",
    "open_wireless_channel",
    "LoopbackTransport",
    "LoopbackChannel",
    "LoopbackReceiver",
    "MemoryStreamConnection",
    "MemoryStreamListener",
    "memory_stream_pair",
    "UdpTransport",
    "UdpChannel",
    "UdpReceiver",
    "TcpStreamConnection",
    "TcpStreamListener",
    "encode_datagram",
    "decode_datagram",
    "EOS_DATAGRAM",
    "MAX_DATAGRAM_PAYLOAD",
    "TransportSource",
    "TransportSink",
]
