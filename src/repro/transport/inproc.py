"""The inproc transport — the paper's simulated testbed behind the ABC.

The datagram service wraps :mod:`repro.net.wlan`: a channel is an
:class:`~repro.net.wlan.AccessPoint` (one sender, many receivers, each with
an independently *seeded* loss model), so everything the simulation already
provides — distance-based loss calibration, WaveLAN airtime accounting,
per-receiver statistics, deterministic replays — is available through the
same :class:`~repro.transport.base.DatagramChannel` interface the real UDP
transport implements.  Determinism is preserved: a channel's receivers draw
their losses from seeds derived exactly as ``AccessPoint.add_receiver``
always has.

The stream service is the reliable in-memory pipe shared with the loopback
transport (the wired LAN of the testbed is lossless; a simulated lossy byte
stream would belong to a loss-model-aware connection, which datagrams cover
already).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..net.channel import LossModel
from ..net.wlan import WAVELAN_BANDWIDTH_BPS, AccessPoint, WirelessLAN
from .base import DatagramChannel, DatagramReceiver, Transport, TransportError
from .loopback import MemoryStreamServiceMixin


class InprocReceiver(DatagramReceiver):
    """Adapter: a channel receiver fed by a simulated wireless receiver.

    The wrapped :class:`~repro.net.wlan.WirelessReceiver` keeps applying its
    own loss model and statistics; every packet it *delivers* lands in this
    receiver's queue (the wireless receiver's own inbox also fills — drain
    whichever side of the API you consume).
    """

    def __init__(self, name: str, wireless, on_receive=None,
                 queue_payloads: bool = True) -> None:
        super().__init__(name, on_receive=on_receive,
                         queue_payloads=queue_payloads)
        #: The underlying simulated receiver (loss model, stats, move_to).
        self.wireless = wireless

    @property
    def stats(self):
        """The simulated receiver's delivery/loss statistics."""
        return self.wireless.stats

    def move_to(self, distance_m: float) -> None:
        """Move the simulated receiver (distance-based loss models only)."""
        self.wireless.move_to(distance_m)


class InprocChannel(DatagramChannel):
    """A datagram channel backed by the simulated wireless LAN.

    ``join`` accepts the simulation's receiver options (``distance_m``,
    ``loss_model``, ``seed``); with none given the member experiences no
    loss, exactly like ``AccessPoint.add_receiver``.  The channel can wrap
    an existing :class:`~repro.net.wlan.WirelessLAN` (so code that already
    holds one — the FEC audio proxy, the sessions — keeps its handle on the
    access point), or build its own from a seed.
    """

    def __init__(self, name: str = "wlan",
                 wlan: Optional[WirelessLAN] = None,
                 seed: int = 0,
                 bandwidth_bps: float = WAVELAN_BANDWIDTH_BPS) -> None:
        super().__init__(name)
        self.wlan = wlan or WirelessLAN(bandwidth_bps=bandwidth_bps, seed=seed)
        self._lock = threading.Lock()
        self._receivers: Dict[str, InprocReceiver] = {}

    @property
    def access_point(self) -> AccessPoint:
        """The simulated LAN's access point (sender side)."""
        return self.wlan.access_point

    def join(self, member: str, distance_m: Optional[float] = None,
             loss_model: Optional[LossModel] = None,
             seed: Optional[int] = None, on_receive=None,
             queue_payloads: bool = True, **_options) -> InprocReceiver:
        """Add a member with the simulation's receiver options."""
        with self._lock:
            if member in self._receivers:
                raise TransportError(
                    f"channel {self.name!r}: member {member!r} already joined")
            receiver = InprocReceiver(member, wireless=None,
                                      on_receive=on_receive,
                                      queue_payloads=queue_payloads)
            wireless = self.wlan.add_receiver(
                member, distance_m=distance_m, loss_model=loss_model,
                seed=seed, on_receive=receiver._deliver)
            receiver.wireless = wireless
            self._receivers[member] = receiver
            if self._closed:
                receiver._mark_eof()
            return receiver

    def leave(self, member: str) -> None:
        """Remove a member from channel and simulation (missing is a no-op)."""
        with self._lock:
            receiver = self._receivers.pop(member, None)
        self.access_point.remove_receiver(member)
        if receiver is not None:
            receiver._mark_eof()

    def members(self) -> List[str]:
        """Names of the current members."""
        with self._lock:
            return sorted(self._receivers)

    def receiver(self, member: str) -> InprocReceiver:
        """Look up a member's receiving end (KeyError when absent)."""
        with self._lock:
            return self._receivers[member]

    def local_receivers(self) -> List[InprocReceiver]:
        """Receivers this process hosts (all of them, for inproc)."""
        with self._lock:
            return list(self._receivers.values())

    def send(self, data: bytes) -> int:
        """Multicast through the simulated LAN; returns members targeted."""
        if self._closed:
            raise TransportError(f"channel {self.name!r}: send after close")
        record = self.access_point.multicast(bytes(data))
        self._account(len(data))
        return len(record.delivered_to) + len(record.lost_by)

    def send_to(self, member: str, data: bytes) -> bool:
        """Unicast through the simulated LAN; True when the member exists."""
        if self._closed:
            raise TransportError(f"channel {self.name!r}: send after close")
        try:
            self.access_point.unicast(member, bytes(data))
        except KeyError:
            return False
        self._account(len(data))
        return True

    def close(self) -> None:
        """End the stream: every member observes EOF after draining."""
        with self._lock:
            if self._closed:
                return
            super().close()
            receivers = list(self._receivers.values())
        for receiver in receivers:
            receiver._mark_eof()


def open_wireless_channel(proxy, name: str,
                          wlan: Optional[WirelessLAN] = None,
                          seed: int = 0):
    """Resolve a session's wireless segment against a proxy's transport.

    The selection rule shared by the session layers (pavilion, rapidware):
    an explicit ``wlan`` always wins; otherwise an inproc transport gets a
    fresh simulated LAN with the session's historical seeding; any other
    transport provides the channel itself.  Returns ``(channel, wlan_or_None,
    simulated)`` — ``simulated`` tells the caller whether the loss-model /
    distance machinery is available.
    """
    if wlan is not None or isinstance(proxy.transport, InprocTransport):
        wlan = wlan or WirelessLAN(seed=seed)
        return InprocChannel(name, wlan=wlan), wlan, True
    channel = proxy.open_channel(name)
    return channel, getattr(channel, "wlan", None), False


class InprocTransport(MemoryStreamServiceMixin, Transport):
    """The simulated testbed as a transport (deterministic, single-process).

    Each named channel gets its own wireless LAN with a seed derived from
    the transport seed and the channel's creation order, so a fixed
    construction sequence replays byte-identically.  Passing ``wlan=`` to
    the constructor (or to :meth:`open_channel`) binds a channel to an
    existing simulated LAN instead.
    """

    name = "inproc"

    def __init__(self, seed: int = 0,
                 wlan: Optional[WirelessLAN] = None) -> None:
        MemoryStreamServiceMixin.__init__(self)
        self._seed = seed
        self._wlan = wlan
        self._channels: Dict[str, InprocChannel] = {}
        self._channel_lock = threading.Lock()

    def open_channel(self, name: str = "default",
                     wlan: Optional[WirelessLAN] = None,
                     seed: Optional[int] = None,
                     **_options) -> InprocChannel:
        """Create (or look up) a channel with stable per-channel seeding."""
        with self._channel_lock:
            channel = self._channels.get(name)
            if channel is None:
                if seed is None:
                    # Stable per-channel seeds: the same construction order
                    # replays the same losses (7919 is the AccessPoint's own
                    # seed-spreading prime).
                    seed = self._seed * 7919 + len(self._channels)
                channel = InprocChannel(name, wlan=wlan or self._wlan,
                                        seed=seed)
                self._channels[name] = channel
            return channel

    def close(self) -> None:
        """Close every channel and listener (idempotent)."""
        with self._channel_lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for channel in channels:
            channel.close()
        self._close_listeners()
