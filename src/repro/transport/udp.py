"""The UDP transport — real datagram sockets for multi-process deployment.

This is the transport that turns the proxy from a simulation harness into a
deployable process: a channel member is a bound UDP socket, so the sender
(the proxy) and its receivers (the mobile hosts) can live in different OS
processes or on different machines.  Two delivery modes:

* **unicast fan-out** (default): ``send`` transmits one copy per member to
  each member's address — application-level multicast, works everywhere
  (loopback, containers, NATs);
* **IP multicast**: pass ``multicast_group=(group_ip, port)`` to
  ``open_channel`` and ``send`` transmits a single datagram to the group;
  members bind the group port and join the group.  Availability depends on
  the host's multicast routing, so tests treat it as optional.

Framing: every datagram carries exactly one length-prefixed frame from
:mod:`repro.streams.framing` (magic byte + length + payload), so a
corrupted or foreign datagram is *detected and dropped* (counted in
``framing_errors``) instead of silently mis-parsed.  End-of-stream is a
frame header whose length field is ``0xFFFFFFFF`` — above
``MAX_FRAME_SIZE`` and therefore unambiguous — sent to every member when
the channel closes, the datagram analogue of a TCP FIN.

Receivers are non-blocking sockets drained opportunistically: ``poll`` /
``pending`` / ``at_eof`` pull whatever the kernel has buffered into the
receiver's queue, ``recv`` blocks in :func:`select.select`, and
``selectable_fileno`` exposes the fd so the event engine parks the receiver
on its selector — many UDP streams, one scheduler thread, no per-socket
threads.

The stream service is TCP: ``listen``/``connect`` return
:class:`TcpStreamListener`/:class:`TcpStreamConnection`, the objects the
socket EndPoints (:class:`repro.core.endpoints.SocketSource` /
``SocketSink``) are built on.
"""

from __future__ import annotations

import select
import socket
import struct
import threading
from typing import Dict, List, Optional, Tuple

from ..obs.events import EVENT_TRANSPORT_ERROR, get_event_log
from ..streams.framing import FRAME_MAGIC, HEADER_SIZE, MAX_FRAME_SIZE
from . import vectored as _vectored
from .base import (
    DatagramChannel,
    DatagramReceiver,
    StreamConnection,
    StreamListener,
    Transport,
    TransportError,
    TransportTimeoutError,
    _monotonic,
)

_HEADER = struct.Struct(">BI")

#: Length field of the end-of-stream marker: above MAX_FRAME_SIZE, so no
#: legal data frame can ever collide with it.
_EOS_LENGTH = 0xFFFFFFFF

#: The end-of-stream datagram (a frame header with the sentinel length).
EOS_DATAGRAM = _HEADER.pack(FRAME_MAGIC, _EOS_LENGTH)

#: Largest payload accepted per datagram (header + payload must fit a UDP
#: datagram; 60 KiB leaves headroom under the 64 KiB IPv4 limit).
MAX_DATAGRAM_PAYLOAD = 60 * 1024

UdpAddress = Tuple[str, int]

#: Receive-ring geometry: datagrams land via ``recvfrom_into`` in
#: preallocated slots (no 64 KiB allocation per datagram) and the payload
#: is copied out exactly once, at its real size, before the slot is reused.
_RING_SLOTS = 8
_RING_SLOT_SIZE = 65535


def encode_datagram(payload: bytes) -> bytes:
    """Frame one payload for the wire (one frame per datagram)."""
    payload = bytes(payload)
    if len(payload) > min(MAX_DATAGRAM_PAYLOAD, MAX_FRAME_SIZE):
        raise TransportError(
            f"datagram payload of {len(payload)} bytes exceeds the "
            f"{MAX_DATAGRAM_PAYLOAD}-byte UDP limit")
    return _HEADER.pack(FRAME_MAGIC, len(payload)) + payload


def decode_datagram(datagram: bytes) -> Optional[bytes]:
    """Unframe one datagram: the payload, or None for the EOS marker.

    Raises :class:`TransportError` for anything malformed (bad magic, bad
    length, trailing garbage) so callers can count-and-drop it.
    """
    if len(datagram) < HEADER_SIZE:
        raise TransportError("datagram shorter than a frame header")
    magic, length = _HEADER.unpack_from(datagram, 0)
    if magic != FRAME_MAGIC:
        raise TransportError(f"bad frame magic 0x{magic:02x}")
    if length == _EOS_LENGTH:
        return None
    if length != len(datagram) - HEADER_SIZE:
        raise TransportError(
            f"frame length {length} does not match datagram size "
            f"{len(datagram)}")
    return datagram[HEADER_SIZE:]


class UdpReceiver(DatagramReceiver):
    """A channel member backed by a bound, non-blocking UDP socket."""

    def __init__(self, name: str, sock: socket.socket,
                 on_receive=None, queue_payloads: bool = True) -> None:
        super().__init__(name, on_receive=on_receive,
                         queue_payloads=queue_payloads)
        sock.setblocking(False)
        self._socket = sock
        self.address: UdpAddress = sock.getsockname()
        self.framing_errors = 0
        # Allocated lazily on the first drain: channel members that only
        # ever send (remote registrations) never pay for the ring.
        self._ring: Optional[List[bytearray]] = None
        self._ring_index = 0
        # Vectored (recvmmsg) batch receives, mirroring the channel's
        # sendmmsg path: cleared permanently on a DISABLE_ERRNOS errno.
        self._vectored_recv = _vectored.recv_available()

    # -- socket draining -------------------------------------------------------

    def _parse_slot(self, buf: bytearray, nbytes: int) -> None:
        """Frame-check one received datagram and queue its payload."""
        if nbytes < HEADER_SIZE:
            self.framing_errors += 1
            return
        magic, length = _HEADER.unpack_from(buf, 0)
        if magic != FRAME_MAGIC:
            self.framing_errors += 1
            return
        if length == _EOS_LENGTH:
            self._mark_eof()
            return
        if length != nbytes - HEADER_SIZE:
            self.framing_errors += 1
            return
        # Exact-size copy: the queued payload must outlive the ring slot,
        # which is reused on the next lap.
        self._deliver(bytes(memoryview(buf)[HEADER_SIZE:nbytes]))

    def _drain_socket(self) -> None:
        """Pull every kernel-buffered datagram into the receiver queue.

        Datagrams land in a preallocated ring of buffers — a whole ring
        per ``recvmmsg`` syscall where the platform has it, one slot per
        ``recvfrom_into`` otherwise — and are parsed in place, so the
        per-datagram cost is (a fraction of) one syscall plus one
        exact-size copy of the payload, instead of a 64 KiB allocation, a
        resize, and a slice per datagram.
        """
        ring = self._ring
        if ring is None:
            ring = self._ring = [bytearray(_RING_SLOT_SIZE)
                                 for _ in range(_RING_SLOTS)]
        while self._vectored_recv:
            # Batch path: every payload is copied out by _parse_slot before
            # the next call reuses the ring.
            try:
                lengths, error = _vectored.recv_batch(self._socket, ring)
            except OSError:
                return  # socket closed under us: EOF state already recorded
            for slot, nbytes in enumerate(lengths):
                self._parse_slot(ring[slot], nbytes)
            if error is not None:
                if error.errno in _vectored.DISABLE_ERRNOS:
                    # recvmmsg can never work here; stop paying for the
                    # doomed syscall and drain per-datagram from now on.
                    self._vectored_recv = False
                    break
                return  # transient: whatever remains waits for the next drain
            if len(lengths) < len(ring):
                return  # kernel queue drained
        while True:
            buf = ring[self._ring_index]
            try:
                nbytes, _sender = self._socket.recvfrom_into(
                    buf, _RING_SLOT_SIZE)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # socket closed under us: EOF state already recorded
            self._ring_index = (self._ring_index + 1) % _RING_SLOTS
            self._parse_slot(buf, nbytes)

    # -- host-facing API (drain-first variants) --------------------------------

    def poll(self) -> Optional[bytes]:
        """Drain the socket, then return the next payload (non-blocking)."""
        self._drain_socket()
        return super().poll()

    def pending(self) -> int:
        """Drain the socket, then count the unread payloads."""
        self._drain_socket()
        return super().pending()

    def at_eof(self) -> bool:
        """Drain the socket, then report end-of-stream."""
        self._drain_socket()
        return super().at_eof()

    def take(self) -> List[bytes]:
        """Drain the socket, then return everything delivered so far."""
        self._drain_socket()
        return super().take()

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Return the next payload, blocking in ``select`` up to ``timeout``."""
        deadline = None if timeout is None else _monotonic() + timeout
        while True:
            self._drain_socket()
            payload = super().poll()
            if payload is not None:
                return payload
            if super().at_eof():
                return None
            remaining = None
            if deadline is not None:
                remaining = deadline - _monotonic()
                if remaining <= 0:
                    raise TransportTimeoutError(
                        f"receiver {self.name!r}: recv timed out")
            try:
                readable, _, _ = select.select([self._socket], [], [],
                                               remaining)
            except OSError:
                return None  # closed while blocked
            if not readable and remaining is not None:
                raise TransportTimeoutError(
                    f"receiver {self.name!r}: recv timed out")

    def selectable_fileno(self) -> Optional[int]:
        """The receiver socket's fd, for the event engine's selector."""
        try:
            return self._socket.fileno()
        except OSError:  # pragma: no cover - closed socket
            return None

    def close(self) -> None:
        """Stop receiving and close the bound socket."""
        super().close()
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - best effort
            pass


class UdpChannel(DatagramChannel):
    """A datagram channel over real UDP sockets.

    Members joined locally get a bound receiver socket; remote members (in
    another process) are registered by address with :meth:`add_member` —
    their side calls ``join`` on its own channel object with an explicit
    ``address`` to bind.
    """

    def __init__(self, name: str = "udp", host: str = "127.0.0.1",
                 multicast_group: Optional[UdpAddress] = None,
                 multicast_ttl: int = 1) -> None:
        super().__init__(name)
        self.host = host
        self.multicast_group = multicast_group
        self._lock = threading.Lock()
        self._members: Dict[str, UdpAddress] = {}
        self._receivers: Dict[str, UdpReceiver] = {}
        self._send_socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        # Vectored (sendmmsg) batch sends, where the platform has them.
        # Cleared permanently the first time the syscall reports an errno
        # that means "never going to work here" (see vectored.DISABLE_ERRNOS).
        self._vectored = _vectored.available()
        if multicast_group is not None:
            self._send_socket.setsockopt(socket.IPPROTO_IP,
                                         socket.IP_MULTICAST_TTL,
                                         multicast_ttl)
            self._send_socket.setsockopt(socket.IPPROTO_IP,
                                         socket.IP_MULTICAST_LOOP, 1)

    # -- membership ------------------------------------------------------------

    def join(self, member: str, address: Optional[UdpAddress] = None,
             on_receive=None, recv_buffer_bytes: Optional[int] = None,
             queue_payloads: bool = True, reuse_port: bool = False,
             reuse_addr: bool = False, **_options) -> UdpReceiver:
        """Bind a local receiver socket and register it as a member.

        ``reuse_port`` sets ``SO_REUSEPORT`` before binding, so several
        processes can bind the *same* address and the kernel shards
        incoming datagrams across them — the cluster's UDP ingress path.
        Platforms without ``SO_REUSEPORT`` raise a
        :class:`~repro.transport.base.TransportError` naming the option
        (never a silent bind failure).  ``reuse_addr`` sets
        ``SO_REUSEADDR`` (implied on the multicast path, where it always
        was).
        """
        with self._lock:
            if member in self._receivers:
                raise TransportError(
                    f"channel {self.name!r}: member {member!r} already joined")
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            if recv_buffer_bytes:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF,
                                recv_buffer_bytes)
            if reuse_addr:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuse_port:
                if not hasattr(socket, "SO_REUSEPORT"):
                    raise TransportError(
                        f"channel {self.name!r}: reuse_port requested but "
                        "this platform does not define SO_REUSEPORT")
                try:
                    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                except OSError as exc:
                    raise TransportError(
                        f"channel {self.name!r}: kernel rejected "
                        f"SO_REUSEPORT ({exc})") from exc
            if self.multicast_group is not None:
                group_ip, group_port = self.multicast_group
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind(("", group_port))
                membership = (socket.inet_aton(group_ip)
                              + socket.inet_aton("0.0.0.0"))
                sock.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP,
                                membership)
            else:
                sock.bind(address or (self.host, 0))
        except (OSError, TransportError):
            sock.close()
            raise
        receiver = UdpReceiver(member, sock, on_receive=on_receive,
                               queue_payloads=queue_payloads)
        with self._lock:
            # Re-check under the lock: a concurrent join of the same name
            # must not silently replace (and leak) the first socket.
            if member in self._receivers:
                raced = True
            else:
                raced = False
                self._receivers[member] = receiver
                if self.multicast_group is None:
                    self._members[member] = receiver.address
                if self._closed:
                    receiver._mark_eof()
        if raced:
            receiver.close()
            raise TransportError(
                f"channel {self.name!r}: member {member!r} already joined")
        return receiver

    def add_member(self, member: str, address: UdpAddress) -> None:
        """Register a remote member by address (no local socket)."""
        with self._lock:
            self._members[member] = (address[0], int(address[1]))

    def leave(self, member: str) -> None:
        """Remove a member, closing its local receiver if there is one."""
        with self._lock:
            self._members.pop(member, None)
            receiver = self._receivers.pop(member, None)
        if receiver is not None:
            receiver.close()

    def members(self) -> List[str]:
        """Names of the current members, local and remote."""
        with self._lock:
            return sorted(set(self._members) | set(self._receivers))

    def receiver(self, member: str) -> UdpReceiver:
        """Look up a locally joined member's receiver (KeyError when absent)."""
        with self._lock:
            return self._receivers[member]

    def local_receivers(self) -> List[UdpReceiver]:
        """Receivers this process hosts (remote members have none here)."""
        with self._lock:
            return list(self._receivers.values())

    # -- transmission ----------------------------------------------------------

    def _destinations(self) -> List[UdpAddress]:
        if self.multicast_group is not None:
            return [self.multicast_group]
        with self._lock:
            return list(self._members.values())

    def _transmit(self, wire: bytes, destinations: List[UdpAddress]) -> int:
        sent = 0
        for address in destinations:
            try:
                self._send_socket.sendto(wire, address)
                sent += 1
            except OSError as exc:
                # An unreachable member must not break the others, but the
                # drop is observable: counted for /metrics and logged as a
                # structured event for post-hoc diagnosis.
                self.send_errors += 1
                get_event_log().emit(
                    EVENT_TRANSPORT_ERROR, stream=self.name,
                    transport="udp", address=f"{address[0]}:{address[1]}",
                    error=str(exc))
                continue
        return sent

    def _transmit_many(self, wires: List[bytes],
                       destinations: List[UdpAddress]) -> List[int]:
        """Transmit every wire frame to every destination, batched.

        Returns, per frame, the number of destinations reached.  The
        vectored path reports how many leading frames the kernel accepted
        before an error, so the ``sendto`` fallback resumes exactly there —
        a frame is never put on the wire twice (UDP has no dedupe, and a
        duplicated datagram would corrupt a raw byte stream downstream).
        """
        reached = [0] * len(wires)
        for address in destinations:
            start = 0
            if self._vectored:
                done, error = _vectored.send_batch(self._send_socket,
                                                   address, wires)
                for i in range(done):
                    reached[i] += 1
                start = done
                if error is None:
                    continue
                if error.errno in _vectored.DISABLE_ERRNOS:
                    self._vectored = False
                # Transient errors (ENOBUFS, ECONNREFUSED, ...) fall through
                # to the per-datagram loop for the unsent tail, which judges
                # — and counts — each datagram exactly as send() would.
            for i in range(start, len(wires)):
                if self._transmit(wires[i], [address]):
                    reached[i] += 1
        return reached

    def send(self, data: bytes) -> int:
        """Transmit one framed datagram per member (or one, multicast)."""
        if self._closed:
            raise TransportError(f"channel {self.name!r}: send after close")
        wire = encode_datagram(data)
        destinations = self._destinations()
        sent = self._transmit(wire, destinations)
        if sent:
            # Account payload bytes, matching the inproc/loopback channels,
            # so cross-transport statistics (e.g. compression ratios)
            # compare like with like; framing overhead is a wire detail.
            self._account(len(data))
        return sent

    def send_many(self, payloads) -> int:
        """Transmit many payloads, one framed datagram each, per member.

        Equivalent to a loop of :meth:`send` — same framing, accounting and
        error observability — but each member's datagrams leave in batched
        ``sendmmsg`` syscalls where the platform has them.  Returns the
        number of payloads delivered to at least one member.
        """
        if self._closed:
            raise TransportError(f"channel {self.name!r}: send after close")
        wires = [encode_datagram(payload) for payload in payloads]
        if not wires:
            return 0
        reached = self._transmit_many(wires, self._destinations())
        delivered = 0
        for payload, count in zip(payloads, reached):
            if count:
                self._account(len(payload))
                delivered += 1
        return delivered

    def send_to(self, member: str, data: bytes) -> bool:
        """Unicast one framed datagram to a member; True when sent."""
        if self._closed:
            raise TransportError(f"channel {self.name!r}: send after close")
        if self.multicast_group is not None:
            # Group members share one bound port (SO_REUSEADDR), so a
            # unicast datagram would reach an arbitrary member — refuse
            # loudly instead of delivering to the wrong host.
            raise TransportError(
                f"channel {self.name!r}: send_to is unavailable in "
                "IP-multicast mode (members share the group port)")
        with self._lock:
            address = self._members.get(member)
        if address is None:
            return False
        wire = encode_datagram(data)
        if not self._transmit(wire, [address]):
            return False
        self._account(len(data))
        return True

    def close(self) -> None:
        """Send the EOS marker to every member and release the send socket.

        Local receivers are additionally marked EOF directly, so a dropped
        EOS datagram can never wedge an in-process consumer; datagrams
        already in their kernel buffers are still drained first (EOF is
        checked *after* the opportunistic drain).
        """
        with self._lock:
            if self._closed:
                return
            super().close()
            receivers = list(self._receivers.values())
        self._transmit(EOS_DATAGRAM, self._destinations())
        for receiver in receivers:
            receiver._mark_eof()
        try:
            self._send_socket.close()
        except OSError:  # pragma: no cover - best effort
            pass


# --------------------------------------------------------------------------
# TCP stream service
# --------------------------------------------------------------------------


class TcpStreamConnection(StreamConnection):
    """A reliable byte stream over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._socket = sock
        self._closed = False

    @property
    def socket(self) -> socket.socket:
        """The underlying connected TCP socket."""
        return self._socket

    def send(self, data: bytes) -> None:
        """Deliver every byte of ``data`` (TransportError on socket error)."""
        try:
            self._socket.sendall(bytes(data))
        except OSError as exc:
            raise TransportError(f"stream send failed: {exc}") from exc

    def recv(self, max_bytes: int = 65536,
             timeout: Optional[float] = None) -> bytes:
        """Read up to ``max_bytes``; empty bytes only at end-of-stream."""
        try:
            self._socket.settimeout(timeout)
            return self._socket.recv(max_bytes)
        except socket.timeout:
            raise TransportTimeoutError("stream recv timed out") from None
        except OSError:
            return b""  # connection reset / closed under us: end of stream

    def close_sending(self) -> None:
        """Half-close: TCP FIN to the peer, keep receiving."""
        try:
            self._socket.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def unblock(self) -> None:
        """Make a blocked :meth:`recv` return promptly (end-of-stream)."""
        try:
            self._socket.shutdown(socket.SHUT_RD)
        except OSError:
            pass

    def close(self) -> None:
        """Close both directions (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def fileno(self) -> Optional[int]:
        """The connected socket's fd (None once closed)."""
        try:
            return self._socket.fileno()
        except OSError:  # pragma: no cover - closed socket
            return None


class TcpStreamListener(StreamListener):
    """Accepts TCP stream connections."""

    def __init__(self, address: Optional[UdpAddress] = None,
                 backlog: int = 16) -> None:
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind(address or ("127.0.0.1", 0))
        self._socket.listen(backlog)
        self._closed = False

    @property
    def address(self) -> UdpAddress:
        """The bound ``(host, port)`` peers pass to ``connect``."""
        return self._socket.getsockname()

    def accept(self, timeout: Optional[float] = None) -> TcpStreamConnection:
        """Wait for one inbound TCP connection."""
        try:
            self._socket.settimeout(timeout)
            conn, _peer = self._socket.accept()
        except socket.timeout:
            raise TransportTimeoutError("accept timed out") from None
        except OSError as exc:
            raise TransportError(f"accept failed: {exc}") from exc
        return TcpStreamConnection(conn)

    def close(self) -> None:
        """Stop accepting (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - best effort
            pass


class UdpTransport(Transport):
    """Real sockets: UDP datagram channels plus a TCP stream service."""

    name = "udp"

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.host = host
        self._channels: Dict[str, UdpChannel] = {}
        self._channel_lock = threading.Lock()
        self._listeners: List[TcpStreamListener] = []

    def open_channel(self, name: str = "default",
                     multicast_group: Optional[UdpAddress] = None,
                     multicast_ttl: int = 1, **_options) -> UdpChannel:
        """Create (or look up) the named channel (optionally IP multicast)."""
        with self._channel_lock:
            channel = self._channels.get(name)
            if channel is None:
                channel = UdpChannel(name, host=self.host,
                                     multicast_group=multicast_group,
                                     multicast_ttl=multicast_ttl)
                self._channels[name] = channel
            return channel

    def listen(self, address=None) -> TcpStreamListener:
        """Open a TCP listener (``None`` binds an ephemeral local port)."""
        listener = TcpStreamListener(address)
        with self._channel_lock:
            self._listeners.append(listener)
        return listener

    def connect(self, address) -> TcpStreamConnection:
        """Open a TCP connection to a listener's address."""
        try:
            sock = socket.create_connection(address)
        except OSError as exc:
            raise TransportError(
                f"connect to {address!r} failed: {exc}") from exc
        return TcpStreamConnection(sock)

    def close(self) -> None:
        """Close every channel, receiver and listener (idempotent)."""
        with self._channel_lock:
            channels = list(self._channels.values())
            self._channels.clear()
            listeners = list(self._listeners)
            self._listeners.clear()
        for channel in channels:
            channel.close()
            for member in channel.members():
                channel.leave(member)
        for listener in listeners:
            listener.close()
