"""Vectored UDP I/O — ``sendmmsg(2)``/``recvmmsg(2)`` via ctypes.

Linux's ``sendmmsg`` hands the kernel a whole batch of datagrams in one
syscall, so a pump budget of FEC packets costs one kernel crossing per
member instead of one per packet; ``recvmmsg`` is the mirror image on the
receive side, draining a batch of kernel-buffered datagrams per syscall.
Python's stdlib exposes neither, so this module binds both with ctypes:

* :func:`available` — True when the ``sendmmsg`` symbol was found *and*
  the ``REPRO_UDP_VECTORED`` kill-switch is not set to ``0``;
* :func:`send_batch` — transmit many pre-framed datagrams to one IPv4
  address, returning ``(frames_sent, error)`` so a caller can continue a
  partially transmitted batch over the plain ``sendto`` loop without ever
  re-sending a frame (UDP duplicates would corrupt a byte stream);
* :func:`recv_available` / :func:`recv_batch` — the receive-side pair:
  fill a caller-owned ring of buffers with up to one datagram each,
  returning ``(lengths, error)``.

Callers classify the returned errno: values in :data:`DISABLE_ERRNOS` mean
the host cannot do vectored I/O at all (disable permanently, stop paying
for the failed syscall); anything else is transient and only the current
batch falls back.  Everywhere without the symbols (non-Linux, exotic libc)
the availability probes are simply False and the transport uses its
per-datagram loops, byte-for-byte identical on the wire.  The same
``REPRO_UDP_VECTORED=0`` kill switch governs both directions.
"""

from __future__ import annotations

import ctypes
import errno as _errno
import os
import socket
import sys
from typing import List, Optional, Sequence, Tuple

#: Environment kill-switch: ``REPRO_UDP_VECTORED=0`` forces the plain
#: per-datagram ``sendto`` loop even where ``sendmmsg`` exists (useful for
#: A/B benchmarks and for debugging suspected batching bugs).
VECTORED_ENV_VAR = "REPRO_UDP_VECTORED"

#: errno values meaning "vectored sends cannot work on this host" — the
#: syscall is missing, filtered, or our call shape is rejected outright.
#: A channel seeing one of these disables its vectored path permanently
#: instead of paying a doomed syscall per batch.
DISABLE_ERRNOS = frozenset({
    _errno.ENOSYS,
    _errno.EOPNOTSUPP,
    _errno.EPERM,
    _errno.EFAULT,
    _errno.EINVAL,
})

#: Datagrams per ``sendmmsg`` call.  The kernel caps a call at UIO_MAXIOV
#: (1024) messages; 64 matches the largest pump budgets upstream while
#: keeping the header arrays small enough to build cheaply.
MAX_BATCH = 64


class _iovec(ctypes.Structure):
    _fields_ = [
        ("iov_base", ctypes.c_void_p),
        ("iov_len", ctypes.c_size_t),
    ]


class _sockaddr_in(ctypes.Structure):
    _fields_ = [
        ("sin_family", ctypes.c_uint16),
        ("sin_port", ctypes.c_uint16),  # network byte order
        ("sin_addr", ctypes.c_uint8 * 4),
        ("sin_zero", ctypes.c_uint8 * 8),
    ]


class _msghdr(ctypes.Structure):
    _fields_ = [
        ("msg_name", ctypes.c_void_p),
        ("msg_namelen", ctypes.c_uint32),
        ("msg_iov", ctypes.POINTER(_iovec)),
        ("msg_iovlen", ctypes.c_size_t),
        ("msg_control", ctypes.c_void_p),
        ("msg_controllen", ctypes.c_size_t),
        ("msg_flags", ctypes.c_int),
    ]


class _mmsghdr(ctypes.Structure):
    _fields_ = [
        ("msg_hdr", _msghdr),
        ("msg_len", ctypes.c_uint32),
    ]


def _load_sendmmsg():
    """Resolve ``sendmmsg`` from the running process (Linux only)."""
    if not sys.platform.startswith("linux"):
        return None
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        fn = libc.sendmmsg
    except (OSError, AttributeError):
        return None
    fn.restype = ctypes.c_int
    fn.argtypes = [ctypes.c_int, ctypes.POINTER(_mmsghdr),
                   ctypes.c_uint, ctypes.c_int]
    return fn


def _load_recvmmsg():
    """Resolve ``recvmmsg`` from the running process (Linux only)."""
    if not sys.platform.startswith("linux"):
        return None
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        fn = libc.recvmmsg
    except (OSError, AttributeError):
        return None
    fn.restype = ctypes.c_int
    # The final argument is ``struct timespec *timeout``; always NULL here
    # (the sockets are non-blocking), so a void pointer suffices.
    fn.argtypes = [ctypes.c_int, ctypes.POINTER(_mmsghdr),
                   ctypes.c_uint, ctypes.c_int, ctypes.c_void_p]
    return fn


_sendmmsg = _load_sendmmsg()
_recvmmsg = _load_recvmmsg()


def available() -> bool:
    """True when a vectored send can be attempted on this host right now."""
    return (_sendmmsg is not None
            and os.environ.get(VECTORED_ENV_VAR, "1") != "0")


def recv_available() -> bool:
    """True when a vectored receive can be attempted on this host right now."""
    return (_recvmmsg is not None
            and os.environ.get(VECTORED_ENV_VAR, "1") != "0")


def send_batch(
    sock: socket.socket,
    address: Tuple[str, int],
    frames: Sequence[bytes],
) -> Tuple[int, Optional[OSError]]:
    """Transmit pre-framed datagrams to one IPv4 address, batched.

    Returns ``(sent, error)``: the number of leading frames fully handed to
    the kernel, and the ``OSError`` that stopped the batch (``None`` when
    every frame went out).  The caller resumes from ``frames[sent:]`` on its
    fallback path — no frame is ever transmitted twice from here.
    """
    addr = _sockaddr_in()
    addr.sin_family = socket.AF_INET
    addr.sin_port = socket.htons(address[1])
    ctypes.memmove(addr.sin_addr, socket.inet_aton(address[0]), 4)
    addr_ptr = ctypes.cast(ctypes.pointer(addr), ctypes.c_void_p)
    addr_len = ctypes.sizeof(addr)

    fd = sock.fileno()
    total = len(frames)
    done = 0
    while done < total:
        count = min(MAX_BATCH, total - done)
        iovecs = (_iovec * count)()
        headers = (_mmsghdr * count)()
        # The bytes objects (and their c_char_p wrappers) must stay alive
        # until the syscall returns; the list pins them.
        keepalive: List[Tuple[bytes, ctypes.c_char_p]] = []
        for i in range(count):
            frame = frames[done + i]
            if not isinstance(frame, bytes):
                frame = bytes(frame)
            buf = ctypes.c_char_p(frame)
            keepalive.append((frame, buf))
            iovecs[i].iov_base = ctypes.cast(buf, ctypes.c_void_p)
            iovecs[i].iov_len = len(frame)
            hdr = headers[i].msg_hdr
            hdr.msg_name = addr_ptr
            hdr.msg_namelen = addr_len
            hdr.msg_iov = ctypes.pointer(iovecs[i])
            hdr.msg_iovlen = 1
        sent = _sendmmsg(fd, headers, count, 0)
        if sent < 0:
            err = ctypes.get_errno()
            if err == _errno.EINTR:
                continue
            return done, OSError(err, os.strerror(err))
        if sent == 0:
            # Defensive: zero progress from a blocking socket would spin.
            err = _errno.EAGAIN
            return done, OSError(err, os.strerror(err))
        done += sent
    return done, None


def recv_batch(
    sock: socket.socket,
    buffers: Sequence[bytearray],
) -> Tuple[List[int], Optional[OSError]]:
    """Receive up to ``len(buffers)`` datagrams in one syscall.

    Each received datagram lands in the corresponding caller-owned buffer
    (truncated to the buffer size, like ``recvfrom_into``).  Returns
    ``(lengths, error)``: the byte count of each datagram received, and
    the ``OSError`` that stopped the call — ``None`` both for a full batch
    and for a cleanly drained kernel queue (``EAGAIN`` on a non-blocking
    socket is "no more data", not an error).  Sender addresses are not
    captured (``msg_name`` NULL): the UDP transport identifies streams by
    frame content, not peer address, and skipping the copy is free speed.

    The caller must copy each payload out before reusing the buffers, the
    same contract as the scalar ``recvfrom_into`` ring.
    """
    count = len(buffers)
    if count == 0:
        return [], None
    iovecs = (_iovec * count)()
    headers = (_mmsghdr * count)()
    # from_buffer shares each bytearray's memory with the iovec — received
    # bytes appear in the caller's ring slots with no extra copy.  The
    # c_char array views must stay alive until the syscall returns.
    keepalive = []
    for i in range(count):
        view = (ctypes.c_char * len(buffers[i])).from_buffer(buffers[i])
        keepalive.append(view)
        iovecs[i].iov_base = ctypes.cast(view, ctypes.c_void_p)
        iovecs[i].iov_len = len(buffers[i])
        hdr = headers[i].msg_hdr
        hdr.msg_name = None
        hdr.msg_namelen = 0
        hdr.msg_iov = ctypes.pointer(iovecs[i])
        hdr.msg_iovlen = 1
    fd = sock.fileno()
    while True:
        received = _recvmmsg(fd, headers, count, 0, None)
        if received < 0:
            err = ctypes.get_errno()
            if err == _errno.EINTR:
                continue
            if err in (_errno.EAGAIN, _errno.EWOULDBLOCK):
                return [], None
            return [], OSError(err, os.strerror(err))
        return [headers[i].msg_len for i in range(received)], None
