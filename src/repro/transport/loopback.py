"""The loopback transport — zero-config in-memory queue pairs.

Everything stays in-process and lossless: a datagram channel is a fan-out
onto per-member deques, and the stream service is a pair of byte queues.
This is the transport the unit tests reach for when they need transport
semantics (membership, end-of-stream, readiness callbacks) without either
the seeded loss simulation of ``inproc`` or the real sockets of ``udp``.

The in-memory stream machinery (:class:`MemoryStreamConnection`,
:class:`MemoryStreamListener`) is shared with the inproc transport, whose
datagram side is the :mod:`repro.net` simulation but whose byte streams are
the same reliable in-process pipes.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from .base import (
    DatagramChannel,
    DatagramReceiver,
    StreamConnection,
    StreamListener,
    Transport,
    TransportError,
    TransportTimeoutError,
    _monotonic,
)


class LoopbackReceiver(DatagramReceiver):
    """A queue-backed receiver; delivery is a direct in-process enqueue."""


class LoopbackChannel(DatagramChannel):
    """An in-process, lossless datagram channel."""

    def __init__(self, name: str = "loopback") -> None:
        super().__init__(name)
        self._lock = threading.Lock()
        self._receivers: Dict[str, LoopbackReceiver] = {}

    def join(self, member: str, on_receive=None, queue_payloads: bool = True,
             **_options) -> LoopbackReceiver:
        """Register a member (transport-specific options are ignored)."""
        with self._lock:
            if member in self._receivers:
                raise TransportError(
                    f"channel {self.name!r}: member {member!r} already joined")
            receiver = LoopbackReceiver(member, on_receive=on_receive,
                                        queue_payloads=queue_payloads)
            self._receivers[member] = receiver
            if self._closed:
                receiver._mark_eof()
            return receiver

    def leave(self, member: str) -> None:
        """Remove a member (missing is a no-op); it observes EOF."""
        with self._lock:
            receiver = self._receivers.pop(member, None)
        if receiver is not None:
            receiver._mark_eof()

    def members(self) -> List[str]:
        """Names of the current members."""
        with self._lock:
            return sorted(self._receivers)

    def receiver(self, member: str) -> LoopbackReceiver:
        """Look up a member's receiving end (KeyError when absent)."""
        with self._lock:
            return self._receivers[member]

    def local_receivers(self) -> List[LoopbackReceiver]:
        """Receivers this process hosts (all of them, for loopback)."""
        with self._lock:
            return list(self._receivers.values())

    def send(self, data: bytes) -> int:
        """Enqueue one datagram at every member; returns members targeted."""
        data = bytes(data)
        with self._lock:
            if self._closed:
                raise TransportError(f"channel {self.name!r}: send after close")
            receivers = list(self._receivers.values())
        self._account(len(data))
        for receiver in receivers:
            receiver._deliver(data)
        return len(receivers)

    def send_to(self, member: str, data: bytes) -> bool:
        """Enqueue one datagram at a single member; True when it exists."""
        with self._lock:
            if self._closed:
                raise TransportError(f"channel {self.name!r}: send after close")
            receiver = self._receivers.get(member)
        if receiver is None:
            return False
        self._account(len(data))
        receiver._deliver(bytes(data))
        return True

    def close(self) -> None:
        """End the stream: every member observes EOF after draining."""
        with self._lock:
            if self._closed:
                return
            super().close()
            receivers = list(self._receivers.values())
        for receiver in receivers:
            receiver._mark_eof()


# --------------------------------------------------------------------------
# In-memory stream service (shared with the inproc transport)
# --------------------------------------------------------------------------


class _ByteQueue:
    """One direction of an in-memory pipe: chunks in, bytes out."""

    def __init__(self) -> None:
        self._chunks: Deque[bytes] = deque()
        self._cond = threading.Condition()
        self._closed = False

    def put(self, data: bytes) -> None:
        with self._cond:
            if self._closed:
                raise TransportError("stream connection is closed")
            if data:
                self._chunks.append(bytes(data))
                self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def get(self, max_bytes: int, timeout: Optional[float]) -> bytes:
        deadline = None if timeout is None else _monotonic() + timeout
        with self._cond:
            while not self._chunks:
                if self._closed:
                    return b""
                remaining = None
                if deadline is not None:
                    remaining = deadline - _monotonic()
                    if remaining <= 0:
                        raise TransportTimeoutError("stream recv timed out")
                if not self._cond.wait(remaining):
                    raise TransportTimeoutError("stream recv timed out")
            chunk = self._chunks.popleft()
            if len(chunk) > max_bytes:
                chunk, rest = chunk[:max_bytes], chunk[max_bytes:]
                self._chunks.appendleft(rest)
            return chunk


class MemoryStreamConnection(StreamConnection):
    """One end of an in-memory duplex byte pipe."""

    def __init__(self, outbound: _ByteQueue, inbound: _ByteQueue) -> None:
        self._outbound = outbound
        self._inbound = inbound
        self._closed = False

    def send(self, data: bytes) -> None:
        """Deliver every byte of ``data`` to the peer."""
        self._outbound.put(data)

    def recv(self, max_bytes: int = 65536,
             timeout: Optional[float] = None) -> bytes:
        """Read up to ``max_bytes``; empty bytes only at end-of-stream."""
        return self._inbound.get(max_bytes, timeout)

    def close_sending(self) -> None:
        """Half-close: signal end-of-stream to the peer, keep receiving."""
        self._outbound.close()

    def close(self) -> None:
        """Close both directions (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._outbound.close()
        self._inbound.close()


def memory_stream_pair() -> "tuple[MemoryStreamConnection, MemoryStreamConnection]":
    """A connected pair of in-memory stream ends (client, server)."""
    a_to_b = _ByteQueue()
    b_to_a = _ByteQueue()
    return (MemoryStreamConnection(a_to_b, b_to_a),
            MemoryStreamConnection(b_to_a, a_to_b))


class MemoryStreamListener(StreamListener):
    """Accepts in-memory stream connections under a string address."""

    def __init__(self, address: str) -> None:
        self._address = address
        self._pending: Deque[MemoryStreamConnection] = deque()
        self._cond = threading.Condition()
        self._closed = False

    @property
    def address(self) -> str:
        """The string address peers pass to ``connect``."""
        return self._address

    def _offer(self, server_end: MemoryStreamConnection) -> None:
        with self._cond:
            if self._closed:
                raise TransportError(
                    f"listener {self._address!r} is closed")
            self._pending.append(server_end)
            self._cond.notify_all()

    def accept(self, timeout: Optional[float] = None) -> MemoryStreamConnection:
        """Wait for one inbound connection (TransportTimeoutError on timeout)."""
        deadline = None if timeout is None else _monotonic() + timeout
        with self._cond:
            while not self._pending:
                if self._closed:
                    raise TransportError(
                        f"listener {self._address!r} is closed")
                remaining = None
                if deadline is not None:
                    remaining = deadline - _monotonic()
                    if remaining <= 0:
                        raise TransportTimeoutError(
                            f"listener {self._address!r}: accept timed out")
                if not self._cond.wait(remaining):
                    raise TransportTimeoutError(
                        f"listener {self._address!r}: accept timed out")
            return self._pending.popleft()

    def close(self) -> None:
        """Stop accepting; blocked accepts raise TransportError."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class MemoryStreamServiceMixin:
    """Stream service over in-memory pipes, keyed by string address."""

    def __init__(self) -> None:
        self._listeners: Dict[str, MemoryStreamListener] = {}
        self._listener_lock = threading.Lock()
        self._listener_seq = 0

    def listen(self, address=None) -> MemoryStreamListener:
        """Open a listener (``None`` picks a fresh string address)."""
        with self._listener_lock:
            if address is None:
                self._listener_seq += 1
                address = f"{self.name}-listener-{self._listener_seq}"
            if address in self._listeners:
                raise TransportError(
                    f"transport {self.name!r}: address {address!r} in use")
            listener = MemoryStreamListener(address)
            self._listeners[address] = listener
            return listener

    def connect(self, address) -> MemoryStreamConnection:
        """Connect to a listener's address, returning the client end."""
        with self._listener_lock:
            listener = self._listeners.get(address)
        if listener is None:
            raise TransportError(
                f"transport {self.name!r}: nothing listening on {address!r}")
        client_end, server_end = memory_stream_pair()
        listener._offer(server_end)
        return client_end

    def _close_listeners(self) -> None:
        with self._listener_lock:
            listeners = list(self._listeners.values())
            self._listeners.clear()
        for listener in listeners:
            listener.close()


class LoopbackTransport(MemoryStreamServiceMixin, Transport):
    """Zero-config in-memory transport (lossless, single-process)."""

    name = "loopback"

    def __init__(self) -> None:
        MemoryStreamServiceMixin.__init__(self)
        self._channels: Dict[str, LoopbackChannel] = {}
        self._channel_lock = threading.Lock()

    def open_channel(self, name: str = "default", **_options) -> LoopbackChannel:
        """Create (or look up) the named lossless channel."""
        with self._channel_lock:
            channel = self._channels.get(name)
            if channel is None:
                channel = LoopbackChannel(name)
                self._channels[name] = channel
            return channel

    def close(self) -> None:
        """Close every channel and listener (idempotent)."""
        with self._channel_lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for channel in channels:
            channel.close()
        self._close_listeners()
