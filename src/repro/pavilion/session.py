"""Collaborative browsing sessions (Pavilion's default mode).

This module assembles the pieces of Figure 1: a leadership protocol for
floor control, per-participant browser interfaces, a resource store standing
in for the web, a multicast protocol for wired participants, and — for
wireless participants — a RAPIDware proxy whose filter chain adapts the
content to the wireless segment (compression by default, and anything else
an administrator inserts through the ControlThread while the session runs).
"""

from __future__ import annotations

import queue
import threading
import zlib
from dataclasses import dataclass
from time import monotonic as _monotonic
from time import sleep as _sleep
from typing import Dict, List, Optional

from ..core import CallableSource, ControlThread, Proxy
from ..filters import ZlibCompressFilter
from ..net import MulticastGroup, WirelessLAN
from ..proxies.transcoding_proxy import DeviceDescriptor
from ..transport import TransportSink, open_wireless_channel
from .browser import BrowserInterface, BrowseMessage, MESSAGE_CONTENT
from .leadership import LeadershipProtocol
from .resources import Resource, ResourceStore


class SessionError(RuntimeError):
    """Raised for invalid session operations (unknown member, not leader...)."""


@dataclass
class Participant:
    """One session member and its delivery path."""

    name: str
    device: DeviceDescriptor
    browser: BrowserInterface
    wireless: bool = False
    distance_m: Optional[float] = None
    bytes_over_air: int = 0


class CollaborativeSession:
    """A Pavilion-style collaborative browsing session.

    Wired participants receive content over the reliable multicast group;
    wireless participants receive it through the session's wireless proxy
    (a live RAPIDware filter chain) and the wireless *transport channel* —
    the simulated WLAN by default, or any registered transport via
    ``transport=`` (``"loopback"``, ``"udp"``; note that only the inproc
    channel applies per-receiver loss models and distances).  The session
    leader is the only member allowed to drive browsing; leadership moves
    via the floor-control protocol.
    """

    def __init__(self, store: Optional[ResourceStore] = None,
                 wlan: Optional[WirelessLAN] = None,
                 compress_wireless: bool = True,
                 seed: int = 3,
                 engine=None,
                 transport=None) -> None:
        from .resources import build_demo_site

        self.store = store or build_demo_site(seed=seed)
        self.leadership = LeadershipProtocol()
        self.multicast = MulticastGroup("pavilion-content")
        self._participants: Dict[str, Participant] = {}
        self.compress_wireless = compress_wireless

        # The leader-side wireless proxy: everything bound for wireless
        # participants flows through this live filter chain.  A ``None`` on
        # the queue is the end-of-stream sentinel, so the source blocks on
        # the queue instead of polling it.
        self._queue: "queue.Queue[Optional[bytes]]" = queue.Queue()
        self._source_done = threading.Event()
        self._wireless_enqueued = 0
        self.proxy = Proxy("pavilion-wireless-proxy", engine=engine,
                           transport=transport)
        # Explicit ``wlan`` wins; otherwise the transport selection
        # (argument / REPRO_TRANSPORT / default) decides, as for Proxy.
        self.channel, self.wlan, self._simulated = open_wireless_channel(
            self.proxy, "pavilion-wireless", wlan=wlan, seed=seed)
        self._wireless_receivers: Dict[str, object] = {}
        self._source = CallableSource(self._pull, name="content-in",
                                      frame_output=True)
        self._sink = TransportSink(self.channel, name="wireless-out",
                                   expect_frames=True)
        self.control: ControlThread = self.proxy.add_stream(
            self._source, self._sink, name="content", auto_start=False)
        if compress_wireless:
            self.control.add(ZlibCompressFilter(name="wireless-zlib"))
        self.control.start()

        self.pages_browsed = 0
        self.wired_bytes_delivered = 0

    # -- plumbing --------------------------------------------------------------------

    def _pull(self) -> Optional[bytes]:
        item = self._queue.get()
        return None if item is None else item

    def _wireless_deliver(self, participant_name: str, data: bytes) -> None:
        """Mobile-host middleware: undo wireless-segment encoding, hand to browser."""
        participant = self._participants[participant_name]
        participant.bytes_over_air += len(data)
        if self.compress_wireless:
            try:
                data = zlib.decompress(data)
            except zlib.error:
                participant.browser.protocol_errors += 1
                return
        participant.browser.receive(data)

    # -- membership --------------------------------------------------------------------

    def join(self, name: str, device: Optional[DeviceDescriptor] = None,
             wireless: bool = False, distance_m: float = 10.0,
             now_s: float = 0.0) -> Participant:
        """Add a participant; the first to join becomes the session leader."""
        if name in self._participants:
            raise SessionError(f"participant {name!r} already joined")
        device = device or (DeviceDescriptor.laptop() if wireless
                            else DeviceDescriptor.workstation())
        participant = Participant(name=name, device=device,
                                  browser=BrowserInterface(name),
                                  wireless=wireless,
                                  distance_m=distance_m if wireless else None)
        self._participants[name] = participant
        self.leadership.join(name, now_s=now_s)
        if wireless:
            # queue_payloads=False: delivery is purely via the callback, so
            # the receiver must not accumulate a second copy of every page
            # for the session's lifetime.
            self._wireless_receivers[name] = self.channel.join(
                name, distance_m=distance_m, queue_payloads=False,
                on_receive=lambda data, _n=name: self._wireless_deliver(_n, data))
        else:
            self.multicast.subscribe(name, participant.browser.receive)
        return participant

    def leave(self, name: str, now_s: float = 0.0) -> Optional[str]:
        """Remove a participant; returns the new leader if leadership moved."""
        if name not in self._participants:
            raise SessionError(f"participant {name!r} is not in the session")
        participant = self._participants.pop(name)
        if participant.wireless:
            self._wireless_receivers.pop(name, None)
            self.channel.leave(name)
        else:
            self.multicast.unsubscribe(name)
        return self.leadership.leave(name, now_s=now_s)

    def participants(self) -> List[str]:
        return sorted(self._participants)

    def participant(self, name: str) -> Participant:
        if name not in self._participants:
            raise SessionError(f"participant {name!r} is not in the session")
        return self._participants[name]

    @property
    def leader(self) -> Optional[str]:
        return self.leadership.leader

    def request_floor(self, name: str, now_s: float = 0.0) -> bool:
        """A member asks to lead; returns True if granted immediately."""
        return self.leadership.request(name, now_s=now_s)

    def grant_floor(self, member: Optional[str] = None, now_s: float = 0.0) -> str:
        """The current leader grants the floor (to ``member`` or queue head)."""
        if self.leader is None:
            raise SessionError("the session has no leader")
        return self.leadership.grant(self.leader, member, now_s=now_s)

    # -- browsing ----------------------------------------------------------------------

    def browse(self, member: str, url: str,
               wait_timeout_s: float = 10.0) -> Resource:
        """The leader loads ``url``: fetch it and deliver it to every member.

        Raises :class:`SessionError` if ``member`` does not hold the floor.
        Returns the fetched resource.
        """
        if member not in self._participants:
            raise SessionError(f"participant {member!r} is not in the session")
        if not self.leadership.is_leader(member):
            raise SessionError(
                f"{member!r} is not the leader (the leader is {self.leader!r})")
        leader = self._participants[member]
        resource = self.store.fetch(url)

        announcement = leader.browser.announce_url(url)
        content = leader.browser.content_message(url, resource.content_type,
                                                 resource.body)
        for message in (announcement, content):
            self._deliver(message, exclude=member)
        self.pages_browsed += 1
        self.wait_for_wireless_delivery(timeout=wait_timeout_s)
        return resource

    def _deliver(self, message: BrowseMessage, exclude: str) -> None:
        packed = message.pack()
        # Wired participants: reliable multicast.
        self.multicast.send(packed, exclude=exclude)
        if message.message_type == MESSAGE_CONTENT:
            self.wired_bytes_delivered += len(packed)
        # Wireless participants: through the proxy chain and the WLAN.
        if any(p.wireless for p in self._participants.values()):
            self._wireless_enqueued += 1
            self._queue.put(packed)

    def wait_for_wireless_delivery(self, timeout: float = 10.0,
                                   poll_interval: Optional[float] = None) -> bool:
        """Wait until the wireless proxy chain has drained *and* delivered.

        The chain wait is condition-driven (every element signals after
        each unit of work); ``poll_interval`` is kept for API compatibility
        and ignored.  Push transports (inproc, loopback) deliver to the
        participants' callbacks during ``send``; pull transports (udp) are
        drained here — ``pending()`` ingests whatever the kernel has
        buffered, firing the callbacks — until the per-receiver delivery
        counters go quiet.
        """
        del poll_interval
        deadline = _monotonic() + timeout
        drained = self.control.wait_idle(
            timeout=timeout,
            extra=lambda: (self._queue.empty()
                           and self._source.items_produced
                           >= self._wireless_enqueued))
        if not drained:
            return False
        receivers = list(self._wireless_receivers.values())
        if receivers and not self._simulated:
            # Pull transports only (push transports delivered during send):
            # the sink's send returns while a datagram can still be in
            # flight, so require the counters stable across a settle pause,
            # and never outlive the caller's deadline.  A deadline exit is
            # a failure, same as the wait_idle path.
            last_total = -1
            stable = 0
            while True:
                for receiver in receivers:
                    receiver.pending()  # ingest + fire on_receive callbacks
                total = sum(r.packets_received for r in receivers)
                if total == last_total:
                    stable += 1
                    if stable >= 2:
                        break
                else:
                    stable = 0
                    last_total = total
                if _monotonic() >= deadline:
                    return False
                _sleep(0.005)
        return True

    # -- reporting ----------------------------------------------------------------------

    def delivery_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-participant delivery summary (pages, bytes, errors)."""
        summary = {}
        for name, participant in self._participants.items():
            entry = participant.browser.summary()
            entry["over_air_bytes"] = participant.bytes_over_air
            summary[name] = entry
        return summary

    def wireless_compression_ratio(self) -> float:
        """Bytes sent on the wireless channel relative to the content bytes."""
        original = self.wired_bytes_delivered
        if original == 0:
            return 1.0
        over_air = self.channel.bytes_sent
        return over_air / original if original else 1.0

    def shutdown(self) -> None:
        """End the session and stop the wireless proxy."""
        self._source_done.set()
        self._queue.put(None)  # unblock the source's queue wait
        self.proxy.shutdown()
