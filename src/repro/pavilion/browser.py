"""Browser interfaces and the content distribution protocol messages.

In Pavilion "a browser interface component monitors the activities of the
leader's web browser and multicasts URL requests to corresponding interface
components on receiving systems; the requested resources themselves are
multicast by the leader's HTTP proxy as they are retrieved".  This module
models the browser interface component and the two message types it
exchanges (URL announcements and content deliveries), serialised so they can
travel through proxy filter chains like any other packet stream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

MESSAGE_URL = "url"
MESSAGE_CONTENT = "content"


class BrowserProtocolError(ValueError):
    """Raised when a browsing message cannot be parsed."""


@dataclass(frozen=True)
class BrowseMessage:
    """One message of the collaborative-browsing protocol."""

    message_type: str
    sender: str
    url: str
    sequence: int
    content_type: str = ""
    body: bytes = b""

    def pack(self) -> bytes:
        """Serialise: a JSON header line followed by the raw body."""
        header = json.dumps({
            "type": self.message_type, "sender": self.sender, "url": self.url,
            "sequence": self.sequence, "content_type": self.content_type,
            "body_length": len(self.body),
        }).encode("utf-8")
        return header + b"\n" + self.body

    @classmethod
    def unpack(cls, data: bytes) -> "BrowseMessage":
        newline = data.find(b"\n")
        if newline < 0:
            raise BrowserProtocolError("missing header terminator")
        try:
            header = json.loads(data[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BrowserProtocolError(f"malformed browse header: {exc}") from exc
        body = data[newline + 1:]
        if len(body) != int(header.get("body_length", len(body))):
            raise BrowserProtocolError("body length mismatch")
        return cls(message_type=str(header["type"]), sender=str(header["sender"]),
                   url=str(header["url"]), sequence=int(header["sequence"]),
                   content_type=str(header.get("content_type", "")), body=body)


@dataclass
class PageView:
    """A page as seen by one participant's browser."""

    url: str
    content_type: str
    body: bytes
    received_from: str
    sequence: int


class BrowserInterface:
    """The per-participant browser interface component.

    The leader's interface announces URL loads; every interface (including
    the leader's) records the content deliveries it receives, building the
    participant's page history — the moral equivalent of rendering the page
    in Netscape or Internet Explorer.
    """

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self.history: List[PageView] = []
        self.announced_urls: List[str] = []
        self.urls_seen: List[str] = []
        self._next_sequence = 0
        self.protocol_errors = 0

    # -- leader side -------------------------------------------------------------

    def announce_url(self, url: str) -> BrowseMessage:
        """The local user loaded ``url``: build the announcement message."""
        message = BrowseMessage(message_type=MESSAGE_URL, sender=self.owner,
                                url=url, sequence=self._next_sequence)
        self._next_sequence += 1
        self.announced_urls.append(url)
        return message

    def content_message(self, url: str, content_type: str,
                        body: bytes) -> BrowseMessage:
        """Build the content-delivery message for a fetched resource."""
        message = BrowseMessage(message_type=MESSAGE_CONTENT, sender=self.owner,
                                url=url, sequence=self._next_sequence,
                                content_type=content_type, body=body)
        self._next_sequence += 1
        return message

    # -- receiver side -------------------------------------------------------------

    def receive(self, data: bytes) -> Optional[BrowseMessage]:
        """Handle one raw protocol message (as delivered by the transport)."""
        try:
            message = BrowseMessage.unpack(data)
        except BrowserProtocolError:
            self.protocol_errors += 1
            return None
        if message.message_type == MESSAGE_URL:
            self.urls_seen.append(message.url)
        elif message.message_type == MESSAGE_CONTENT:
            self.history.append(PageView(url=message.url,
                                         content_type=message.content_type,
                                         body=message.body,
                                         received_from=message.sender,
                                         sequence=message.sequence))
        return message

    # -- queries ---------------------------------------------------------------------

    def pages(self) -> List[str]:
        """URLs of the pages this participant has received, in order."""
        return [view.url for view in self.history]

    def page(self, url: str) -> PageView:
        for view in reversed(self.history):
            if view.url == url:
                return view
        raise KeyError(f"{self.owner} never received {url!r}")

    def bytes_received(self) -> int:
        return sum(len(view.body) for view in self.history)

    def summary(self) -> Dict[str, int]:
        return {"pages": len(self.history),
                "urls_seen": len(self.urls_seen),
                "bytes": self.bytes_received(),
                "errors": self.protocol_errors}
