"""Pavilion: the collaborative-computing substrate RAPIDware extends.

Provides the pieces of the paper's Figure 1 — a leadership (floor-control)
protocol, per-participant browser interfaces, a simulated web resource
store, and :class:`~repro.pavilion.session.CollaborativeSession`, which runs
collaborative browsing over the reliable multicast group for wired members
and through a RAPIDware proxy + simulated WLAN for wireless members.
"""

from .browser import (
    MESSAGE_CONTENT,
    MESSAGE_URL,
    BrowseMessage,
    BrowserInterface,
    BrowserProtocolError,
    PageView,
)
from .leadership import (
    DENY,
    GRANT,
    LEADER_CHANGED,
    RELEASE,
    REQUEST,
    LeadershipError,
    LeadershipEvent,
    LeadershipProtocol,
)
from .resources import (
    CONTENT_AUDIO,
    CONTENT_HTML,
    CONTENT_IMAGE,
    Resource,
    ResourceNotFound,
    ResourceStore,
    build_demo_site,
)
from .session import CollaborativeSession, Participant, SessionError

__all__ = [
    "LeadershipProtocol",
    "LeadershipEvent",
    "LeadershipError",
    "REQUEST",
    "GRANT",
    "DENY",
    "RELEASE",
    "LEADER_CHANGED",
    "BrowserInterface",
    "BrowseMessage",
    "BrowserProtocolError",
    "PageView",
    "MESSAGE_URL",
    "MESSAGE_CONTENT",
    "ResourceStore",
    "Resource",
    "ResourceNotFound",
    "build_demo_site",
    "CONTENT_HTML",
    "CONTENT_IMAGE",
    "CONTENT_AUDIO",
    "CollaborativeSession",
    "Participant",
    "SessionError",
]
