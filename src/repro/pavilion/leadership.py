"""Pavilion's leadership (session floor control) protocol.

In Pavilion "a leadership protocol for session floor control" decides which
participant's browser drives the collaborative session: the leader's URL
loads are multicast to everyone else.  Figure 1 shows the message exchange —
a participant sends a *request*, the current leader sends a *grant*, and the
requester becomes the new leader.

This module implements that token-style protocol with an explicit request
queue, grant/deny decisions, leader-departure recovery, and a full event
history so tests and examples can assert on the exact sequence of handoffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

REQUEST = "request"
GRANT = "grant"
DENY = "deny"
RELEASE = "release"
LEADER_CHANGED = "leader-changed"


class LeadershipError(RuntimeError):
    """Raised for invalid protocol operations (unknown member, etc.)."""


@dataclass(frozen=True)
class LeadershipEvent:
    """One protocol event, recorded for the session history."""

    event_type: str
    member: str
    leader: Optional[str]
    time_s: float = 0.0


@dataclass
class _Member:
    name: str
    joined_at: float = 0.0
    grants_received: int = 0
    requests_made: int = 0


class LeadershipProtocol:
    """Floor control for one collaborative session.

    The first member to join becomes the leader.  Later members request the
    floor; the leader (through this object, which in a deployment lives on
    the leader's host) grants it, making the requester the new leader.
    Requests queue in FIFO order; a departing leader hands the floor to the
    head of the queue, or to the longest-joined member when no requests are
    pending.
    """

    def __init__(self, auto_grant: bool = False) -> None:
        self._members: dict = {}
        self._leader: Optional[str] = None
        self._requests: List[str] = []
        self.auto_grant = auto_grant
        self.history: List[LeadershipEvent] = []

    # -- membership -------------------------------------------------------------

    def join(self, member: str, now_s: float = 0.0) -> bool:
        """Add a member; returns True when the member became the leader."""
        if member in self._members:
            raise LeadershipError(f"member {member!r} already joined")
        self._members[member] = _Member(name=member, joined_at=now_s)
        if self._leader is None:
            self._set_leader(member, now_s)
            return True
        return False

    def leave(self, member: str, now_s: float = 0.0) -> Optional[str]:
        """Remove a member; returns the new leader if leadership moved."""
        if member not in self._members:
            raise LeadershipError(f"member {member!r} is not in the session")
        del self._members[member]
        self._requests = [name for name in self._requests if name != member]
        if member != self._leader:
            return None
        # The leader left: promote the first requester, else the oldest member.
        if self._requests:
            successor = self._requests.pop(0)
        elif self._members:
            successor = min(self._members.values(),
                            key=lambda m: (m.joined_at, m.name)).name
        else:
            self._leader = None
            return None
        self._set_leader(successor, now_s)
        return successor

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    @property
    def leader(self) -> Optional[str]:
        return self._leader

    def is_leader(self, member: str) -> bool:
        return member == self._leader

    # -- floor control -------------------------------------------------------------

    def request(self, member: str, now_s: float = 0.0) -> bool:
        """Request the floor.  Returns True if leadership was granted at once.

        With ``auto_grant`` the request is granted immediately (as in a
        free-for-all browsing session); otherwise it queues until the current
        leader calls :meth:`grant`.
        """
        if member not in self._members:
            raise LeadershipError(f"member {member!r} is not in the session")
        if member == self._leader:
            return True
        self._members[member].requests_made += 1
        self.history.append(LeadershipEvent(REQUEST, member, self._leader, now_s))
        if self.auto_grant:
            self._set_leader(member, now_s)
            return True
        if member not in self._requests:
            self._requests.append(member)
        return False

    def grant(self, granting_leader: str, member: Optional[str] = None,
              now_s: float = 0.0) -> str:
        """The current leader grants the floor.

        ``member`` defaults to the head of the request queue.  Returns the
        new leader's name.
        """
        if granting_leader != self._leader:
            raise LeadershipError(
                f"{granting_leader!r} cannot grant: the leader is {self._leader!r}")
        if member is None:
            if not self._requests:
                raise LeadershipError("no pending floor requests to grant")
            member = self._requests.pop(0)
        else:
            if member not in self._members:
                raise LeadershipError(f"member {member!r} is not in the session")
            if member in self._requests:
                self._requests.remove(member)
        self.history.append(LeadershipEvent(GRANT, member, self._leader, now_s))
        self._set_leader(member, now_s)
        return member

    def deny(self, denying_leader: str, member: str, now_s: float = 0.0) -> None:
        """The current leader refuses a pending request."""
        if denying_leader != self._leader:
            raise LeadershipError(
                f"{denying_leader!r} cannot deny: the leader is {self._leader!r}")
        if member in self._requests:
            self._requests.remove(member)
        self.history.append(LeadershipEvent(DENY, member, self._leader, now_s))

    def release(self, member: str, now_s: float = 0.0) -> Optional[str]:
        """The leader voluntarily gives up the floor."""
        if member != self._leader:
            raise LeadershipError(f"{member!r} is not the leader")
        self.history.append(LeadershipEvent(RELEASE, member, self._leader, now_s))
        if self._requests:
            successor = self._requests.pop(0)
            self._set_leader(successor, now_s)
            return successor
        return self._leader

    def pending_requests(self) -> List[str]:
        return list(self._requests)

    # -- internals -------------------------------------------------------------------

    def _set_leader(self, member: str, now_s: float) -> None:
        self._leader = member
        self._members[member].grants_received += 1
        self.history.append(LeadershipEvent(LEADER_CHANGED, member, member, now_s))

    def leader_changes(self) -> List[str]:
        """The sequence of leaders over the session's lifetime."""
        return [event.member for event in self.history
                if event.event_type == LEADER_CHANGED]
