"""A simulated web: the resources a Pavilion session browses.

Pavilion's default mode is collaborative web browsing: the leader's HTTP
proxy fetches resources and multicasts them to every participant.  Without a
network, this module provides the content — a deterministic, seeded
collection of HTML pages and embedded objects with realistic size
distributions, plus a tiny fetch API with latency accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

CONTENT_HTML = "text/html"
CONTENT_IMAGE = "image/png"
CONTENT_AUDIO = "audio/wav"


class ResourceNotFound(KeyError):
    """Raised when a URL is not present in the store."""


@dataclass(frozen=True)
class Resource:
    """One fetchable resource."""

    url: str
    content_type: str
    body: bytes

    @property
    def size(self) -> int:
        return len(self.body)


class ResourceStore:
    """An in-memory collection of resources addressed by URL."""

    def __init__(self) -> None:
        self._resources: Dict[str, Resource] = {}
        self.fetch_count = 0
        self.bytes_served = 0

    def put(self, url: str, body: bytes,
            content_type: str = CONTENT_HTML) -> Resource:
        """Add (or replace) a resource."""
        resource = Resource(url=url, content_type=content_type, body=bytes(body))
        self._resources[url] = resource
        return resource

    def fetch(self, url: str) -> Resource:
        """Fetch a resource; raises :class:`ResourceNotFound` for unknown URLs."""
        if url not in self._resources:
            raise ResourceNotFound(url)
        resource = self._resources[url]
        self.fetch_count += 1
        self.bytes_served += resource.size
        return resource

    def has(self, url: str) -> bool:
        return url in self._resources

    def urls(self) -> List[str]:
        return sorted(self._resources)

    def __len__(self) -> int:
        return len(self._resources)


def _page_body(rng: random.Random, url: str, links: List[str],
               paragraph_count: int) -> bytes:
    paragraphs = []
    for index in range(paragraph_count):
        words = ["word%d" % rng.randrange(1000) for _ in range(rng.randrange(40, 120))]
        paragraphs.append("<p>%s</p>" % " ".join(words))
    link_markup = "".join(f'<a href="{target}">{target}</a>' for target in links)
    html = (f"<html><head><title>{url}</title></head><body>"
            f"<h1>{url}</h1>{''.join(paragraphs)}{link_markup}</body></html>")
    return html.encode("utf-8")


def build_demo_site(page_count: int = 20, images_per_page: int = 2,
                    seed: int = 42, host: str = "http://collab.example") -> ResourceStore:
    """Build a deterministic pseudo-website for collaborative browsing runs.

    Pages link to each other (so a browsing session can follow links) and
    embed a couple of binary "images" each, giving the proxies a mix of
    compressible text and incompressible binary content to transcode.
    """
    if page_count < 1:
        raise ValueError("page_count must be >= 1")
    rng = random.Random(seed)
    store = ResourceStore()
    page_urls = [f"{host}/page{index}.html" for index in range(page_count)]
    for index, url in enumerate(page_urls):
        link_targets = rng.sample(page_urls, k=min(3, page_count))
        store.put(url, _page_body(rng, url, link_targets,
                                  paragraph_count=rng.randrange(3, 10)))
        for image_index in range(images_per_page):
            image_url = f"{host}/page{index}_img{image_index}.png"
            image_body = bytes(rng.randrange(256)
                               for _ in range(rng.randrange(2_000, 20_000)))
            store.put(image_url, image_body, content_type=CONTENT_IMAGE)
    return store
