"""Detachable streams — the paper's core mechanism.

``DetachableOutputStream`` (DOS) and ``DetachableInputStream`` (DIS) are the
Python counterparts of the paper's extensions of ``java.io.PipedOutputStream``
and ``java.io.PipedInputStream``.  A DOS/DIS pair behaves like an ordinary
pipe — data written to the DOS is buffered at the DIS and retrieved with
``read()`` — but, unlike an ordinary pipe, a connection can be

* **paused**: new writes block, in-flight data is drained from the DIS
  buffer, and both halves are marked disconnected ("switching" in the
  paper's terminology), then
* **reconnected**: either half can be attached to a *different* partner and
  the flow of data resumes.

This is the "glue" that lets a ControlThread splice a new filter into a
running data stream without disturbing the stream's endpoints: the paper's
``add()`` does ``Left.DOS.pause(); Left.DOS.reconnect(F.DIS);
Right.DIS.reconnect(F.DOS)``, and this module supports exactly that call
sequence (see :mod:`repro.core.control_thread`).

State model
-----------

Each half is in one of three externally visible states:

``connected``    a live partner exists; reads and writes flow.
``detached``     no partner (freshly constructed, or paused/disconnected);
                 writes block until a reconnect (or raise after a timeout),
                 reads block until data arrives via a new partner.
``closed``       the stream is finished for good; writes raise, reads drain
                 the residual buffer and then return ``b""``.

The paper exposes the transient pause state through a ``swflag`` ("switch
flag"); here it is the :attr:`switching` property.
"""

from __future__ import annotations

import threading
from time import monotonic as _monotonic
from typing import Callable, Iterable, List, Optional

from .buffer import DEFAULT_CAPACITY, StreamBuffer
from .exceptions import (
    AlreadyConnectedError,
    NotConnectedError,
    StreamClosedError,
    StreamTimeoutError,
)

#: Default time (seconds) a write will wait for a paused stream to be
#: reconnected before raising ``NotConnectedError``.  ``None`` would wait
#: forever; a finite default keeps runaway tests from hanging.
DEFAULT_RECONNECT_WAIT = 30.0

#: Default time the pause protocol waits for the DIS buffer to drain.
DEFAULT_DRAIN_TIMEOUT = 30.0

#: A stream-event subscriber: a zero-argument callable invoked after the
#: stream's externally observable state changed (data arrived, the source
#: closed, the half was reattached or closed).  Used by event-driven
#: execution engines (:mod:`repro.runtime.event`) as a readiness signal.
StreamListener = Callable[[], None]

_counter_lock = threading.Lock()
_counter = 0


def _any_payload(batch) -> bool:
    """True when any item in ``batch`` carries bytes (C-speed scan)."""
    try:
        return any(map(len, batch))
    except TypeError:
        # Unsized items get materialised by the buffer; treat as payload.
        return True


class _ListenerMixin:
    """Shared subscribe/unsubscribe plumbing for both stream halves."""

    _listeners: List[StreamListener]

    def subscribe(self, listener: StreamListener) -> None:
        """Register ``listener`` to be called on stream events.

        Listeners must be fast and must not call back into the stream; they
        are fired outside the stream's internal lock, so a listener observes
        the post-event state but may race with further events.  Registering
        the same listener twice is a no-op.
        """
        if listener is None:
            raise ValueError("listener must be callable, not None")
        # Equality, not identity: each `obj.method` access creates a fresh
        # bound-method object, and bound methods compare equal by (func,
        # self) — the semantics re-subscription and unsubscribe need.
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: StreamListener) -> None:
        """Remove a previously registered listener (missing is a no-op)."""
        self._listeners = [cb for cb in self._listeners if cb != listener]

    def _fire_listeners(self) -> None:
        if not self._listeners:
            return  # keep the unsubscribed (threaded-engine) path free
        for listener in list(self._listeners):
            try:
                listener()
            except Exception:  # noqa: BLE001 - listeners must not break the pipe
                pass


def _next_id() -> int:
    global _counter
    with _counter_lock:
        _counter += 1
        return _counter


class DetachableOutputStream(_ListenerMixin):
    """The writing half of a detachable stream connection.

    Data written here is delivered to the connected
    :class:`DetachableInputStream`'s buffer via its ``receive`` method, just
    as ``PipedOutputStream.write`` calls ``PipedInputStream.receive`` in the
    JDK.

    Subscribers registered with :meth:`subscribe` are notified when the DOS
    is (re)attached to a sink and when it is closed — the signals an
    event-driven pump needs to retry output that was parked across a splice.
    """

    def __init__(self, name: Optional[str] = None,
                 reconnect_wait: Optional[float] = DEFAULT_RECONNECT_WAIT) -> None:
        self.name = name or f"DOS-{_next_id()}"
        self._lock = threading.RLock()
        self._state_changed = threading.Condition(self._lock)
        self._sink: Optional[DetachableInputStream] = None
        self._connected = False
        self._switching = False
        self._closed = False
        self._reconnect_wait = reconnect_wait
        self._bytes_written = 0
        self._listeners: List[StreamListener] = []

    # ------------------------------------------------------------ properties

    @property
    def sink(self) -> Optional["DetachableInputStream"]:
        """The DIS this DOS currently feeds, or ``None`` when detached."""
        return self._sink

    @property
    def connected(self) -> bool:
        return self._connected

    @property
    def switching(self) -> bool:
        """True while the stream is paused awaiting a reconnect (``swflag``)."""
        return self._switching

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def bytes_written(self) -> int:
        """Total bytes ever written through this DOS (across reconnects)."""
        return self._bytes_written

    # --------------------------------------------------------------- connect

    def connect(self, dis: "DetachableInputStream") -> None:
        """Associate this output stream with ``dis``.

        Both halves must be unconnected.  This mirrors the paper's
        ``connect()``: it sets ``DOS.sink`` and ``DIS.source`` and flips the
        connected flags on both sides.
        """
        if dis is None:
            raise ValueError("cannot connect to None")
        with self._lock:
            if self._closed:
                raise StreamClosedError(f"{self.name}: closed")
            if self._connected or dis.connected:
                raise AlreadyConnectedError(
                    f"{self.name}: already connected (DOS connected={self._connected}, "
                    f"DIS connected={dis.connected})"
                )
            self._attach(dis)
        self._fire_listeners()

    def reconnect(self, dis: "DetachableInputStream") -> None:
        """Attach this (paused or fresh) DOS to a new DIS.

        Follows the paper's ``reconnect()``: it is an error if either half is
        still in the connected state — ``pause()`` must have completed first.
        On success both switch flags are cleared and any threads blocked on
        either half are woken.
        """
        if dis is None:
            raise ValueError("cannot reconnect to None")
        with self._lock:
            if self._closed:
                raise StreamClosedError(f"{self.name}: closed")
            if self._connected or dis.connected:
                raise AlreadyConnectedError(
                    f"{self.name}: reconnect while still connected "
                    f"(DOS connected={self._connected}, DIS connected={dis.connected})"
                )
            self._attach(dis)
        self._fire_listeners()

    def _attach(self, dis: "DetachableInputStream") -> None:
        self._sink = dis
        self._connected = True
        self._switching = False
        dis._on_attached(self)
        self._state_changed.notify_all()

    def detach(self) -> Optional["DetachableInputStream"]:
        """Drop the current partner without pausing or draining.

        Intended for teardown paths and tests; the composition protocol uses
        :meth:`pause` + :meth:`reconnect` instead.  Returns the former sink.
        """
        with self._lock:
            sink = self._sink
            if sink is not None:
                sink._on_detached()
            self._sink = None
            self._connected = False
            self._switching = False
            self._state_changed.notify_all()
            return sink

    # ----------------------------------------------------------------- write

    def write(self, data: bytes, timeout: Optional[float] = None) -> int:
        """Write ``data`` to the connected DIS, blocking through pauses.

        If the stream is currently paused (switching) or momentarily
        detached, the call blocks until a reconnect occurs, for at most
        ``timeout`` seconds (default: the stream's ``reconnect_wait``).
        Raises :class:`StreamClosedError` if the stream has been closed and
        :class:`NotConnectedError` if no partner appears in time.
        """
        if data is None:
            raise ValueError("data must be bytes, not None")
        if not data:
            return 0
        wait = self._reconnect_wait if timeout is None else timeout
        # The delivery into the sink's buffer happens while holding this
        # DOS's lock so that a concurrent pause() (which also takes the lock)
        # cannot observe an empty buffer *between* our connectivity check and
        # our receive() call — pause() therefore always drains every byte of
        # an in-flight write before declaring the pipe quiescent.
        with self._lock:
            sink = self._wait_for_sink(wait)
            written = sink.receive(data)
            self._bytes_written += written
        return written

    def write_many(self, chunks: Iterable[bytes], timeout: Optional[float] = None) -> int:
        """Write a batch of chunks under one lock/connectivity round-trip.

        Each chunk is delivered to the sink exactly as a :meth:`write` of
        it would be (blocking through pauses and buffer back-pressure, with
        the same error semantics), but connectivity is checked and the DOS
        and buffer locks are taken once per *batch* rather than once per
        chunk — the hot-path saving that makes multi-chunk filter pumps
        cheap.  Returns the total number of bytes written.
        """
        if chunks is None:
            raise ValueError("chunks must be an iterable of bytes, not None")
        if not isinstance(chunks, (list, tuple)):
            chunks = list(chunks)
        # Empties are skipped by the buffer itself; only an effectively
        # empty batch short-circuits here (before any reconnect wait).
        batch = chunks
        if not batch or not _any_payload(batch):
            return 0
        wait = self._reconnect_wait if timeout is None else timeout
        # Delivery happens under this DOS's lock for the same reason as in
        # write(): a concurrent pause() must drain every byte of an
        # in-flight batch before declaring the pipe quiescent.
        with self._lock:
            sink = self._wait_for_sink(wait)
            # Account by the sink's own counter delta so chunks delivered
            # before a mid-batch failure (reader torn down) are still
            # counted, as they would be by per-chunk write() calls.
            before = sink.bytes_received
            try:
                written = sink.receive_many(batch)
            finally:
                self._bytes_written += sink.bytes_received - before
        return written

    def try_write(self, data: bytes) -> bool:
        """Deliver ``data`` to the sink without ever blocking.

        Returns ``False`` when the stream is momentarily detached (paused
        for a splice, or not yet connected) — the caller should retain the
        data and retry after a reattach notification (see :meth:`subscribe`).
        On success the bytes are force-delivered into the sink's buffer,
        overshooting its capacity if necessary, so a single-threaded
        cooperative pump can never deadlock against its own downstream;
        memory is bounded by the scheduler's high-water-mark gating rather
        than by blocking.  Raises :class:`StreamClosedError` once closed.
        """
        if data is None:
            raise ValueError("data must be bytes, not None")
        if not data:
            return True
        with self._lock:
            if self._closed:
                raise StreamClosedError(f"{self.name}: write on closed stream")
            sink = self._sink
            if not self._connected or sink is None:
                return False
            written = sink.receive(data, force=True)
            self._bytes_written += written
        return True

    def try_write_many(self, chunks: Iterable[bytes]) -> bool:
        """Deliver a batch of chunks without ever blocking (all-or-nothing).

        The batch counterpart of :meth:`try_write`: returns ``False`` —
        with *no* chunk delivered — when the stream is momentarily
        detached, so the caller can retain the whole batch and retry after
        a reattach notification.  On success every chunk is force-delivered
        into the sink's buffer under a single lock round-trip.  Raises
        :class:`StreamClosedError` once closed.
        """
        if chunks is None:
            raise ValueError("chunks must be an iterable of bytes, not None")
        if not isinstance(chunks, (list, tuple)):
            chunks = list(chunks)
        batch = chunks
        if not batch or not _any_payload(batch):
            return True
        with self._lock:
            if self._closed:
                raise StreamClosedError(f"{self.name}: write on closed stream")
            sink = self._sink
            if not self._connected or sink is None:
                return False
            written = sink.receive_many(batch, force=True)
            self._bytes_written += written
        return True

    def _wait_for_sink(self, timeout: Optional[float]) -> "DetachableInputStream":
        """Wait (under the lock) until the DOS has a live sink."""
        deadline = None if timeout is None else _monotonic() + timeout
        while True:
            if self._closed:
                raise StreamClosedError(f"{self.name}: write on closed stream")
            if self._connected and self._sink is not None:
                return self._sink
            remaining = None
            if deadline is not None:
                remaining = deadline - _monotonic()
                if remaining <= 0:
                    raise NotConnectedError(
                        f"{self.name}: not connected (timed out waiting for reconnect)"
                    )
            if not self._state_changed.wait(remaining):
                raise NotConnectedError(
                    f"{self.name}: not connected (timed out waiting for reconnect)"
                )

    def flush(self) -> None:
        """Force buffered bytes to the reader and notify waiting readers.

        The DIS buffers everything immediately, so flush only needs to nudge
        readers — mirroring the notification performed by the paper's
        ``flush()``.
        """
        with self._lock:
            sink = self._sink
        if sink is not None:
            sink._notify_readers()

    # ----------------------------------------------------------------- pause

    def pause(self, drain_timeout: Optional[float] = DEFAULT_DRAIN_TIMEOUT) -> None:
        """Pause the connection in preparation for a reconnect.

        Reproduces the paper's ``DOS.pause()``:

        1. set the switch flag and clear ``connected`` on the DOS side, so no
           new data enters the pipe;
        2. wait until the DIS buffer has been drained by its reader;
        3. set the switch flag and clear ``connected`` on the DIS side.

        After ``pause()`` returns, both halves are safe to ``reconnect()`` to
        new partners and no byte has been lost or left in flight.
        Pausing an already-paused or never-connected stream is a no-op.
        """
        with self._lock:
            sink = self._sink
            if self._closed:
                raise StreamClosedError(f"{self.name}: pause on closed stream")
            if not self._switching:
                self._switching = True
                self._connected = False
                self._state_changed.notify_all()
        if sink is None:
            return
        if not sink.wait_until_drained(drain_timeout):
            # Restore the connection so the caller can retry or tear down.
            with self._lock:
                self._switching = False
                self._connected = True
                self._state_changed.notify_all()
            raise StreamTimeoutError(
                f"{self.name}: DIS buffer failed to drain within {drain_timeout}s"
            )
        sink._on_paused()
        with self._lock:
            # The pair is now fully detached from each other.
            self._sink = None
            self._state_changed.notify_all()

    # ----------------------------------------------------------------- close

    def close(self) -> None:
        """Close the stream permanently, propagating end-of-stream.

        The connected DIS (if any) will return its residual buffered data and
        then ``b""`` from ``read()``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sink = self._sink
            self._sink = None
            self._connected = False
            self._switching = False
            self._state_changed.notify_all()
        if sink is not None:
            sink._on_source_closed()
        self._fire_listeners()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            "connected" if self._connected else ("switching" if self._switching else "detached"))
        return f"<DetachableOutputStream {self.name} {state}>"


class DetachableInputStream(_ListenerMixin):
    """The reading half of a detachable stream connection.

    All data is buffered here (on the DIS side, as in the paper and in the
    JDK piped streams).  ``read()`` blocks while the connection is merely
    paused, and returns ``b""`` only once the writing side has been *closed*
    and the buffer drained.

    Subscribers registered with :meth:`subscribe` are notified when bytes
    arrive, when the source closes (end of stream), and when the DIS itself
    is closed — the readiness signals an event-driven pump needs instead of
    polling ``read()`` with a timeout.
    """

    def __init__(self, name: Optional[str] = None,
                 capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        self.name = name or f"DIS-{_next_id()}"
        self._buffer = StreamBuffer(capacity=capacity, name=f"{self.name}.buffer")
        self._lock = threading.RLock()
        self._state_changed = threading.Condition(self._lock)
        self._source: Optional[DetachableOutputStream] = None
        self._connected = False
        self._switching = False
        self._closed = False
        self._source_closed = False
        self._listeners: List[StreamListener] = []

    # ------------------------------------------------------------ properties

    @property
    def source(self) -> Optional[DetachableOutputStream]:
        """The DOS currently feeding this DIS, or ``None`` when detached."""
        return self._source

    @property
    def connected(self) -> bool:
        return self._connected

    @property
    def switching(self) -> bool:
        return self._switching

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def buffer(self) -> StreamBuffer:
        """The underlying byte buffer (exposed for statistics and tests)."""
        return self._buffer

    @property
    def bytes_received(self) -> int:
        return self._buffer.bytes_written

    @property
    def bytes_delivered(self) -> int:
        return self._buffer.bytes_read

    # --------------------------------------------------------------- connect

    def connect(self, dos: DetachableOutputStream) -> None:
        """Connect to ``dos``; delegates to ``DOS.connect`` as in the paper."""
        dos.connect(self)

    def reconnect(self, dos: DetachableOutputStream) -> None:
        """Reconnect to ``dos``; delegates to ``DOS.reconnect`` as in the paper."""
        dos.reconnect(self)

    def pause(self, drain_timeout: Optional[float] = DEFAULT_DRAIN_TIMEOUT) -> None:
        """Pause the connection; delegates to ``DOS.pause`` as in the paper."""
        with self._lock:
            source = self._source
        if source is None:
            # Nothing attached on the writing side: just mark ourselves paused.
            with self._lock:
                self._switching = True
                self._connected = False
                self._state_changed.notify_all()
            return
        source.pause(drain_timeout)

    # ------------------------------------------- callbacks from the DOS side

    def _on_attached(self, dos: DetachableOutputStream) -> None:
        with self._lock:
            if self._closed:
                raise StreamClosedError(f"{self.name}: closed")
            self._source = dos
            self._connected = True
            self._switching = False
            self._source_closed = False
            self._state_changed.notify_all()

    def _on_paused(self) -> None:
        with self._lock:
            self._switching = True
            self._connected = False
            self._source = None
            self._state_changed.notify_all()

    def _on_detached(self) -> None:
        with self._lock:
            self._connected = False
            self._source = None
            self._state_changed.notify_all()

    def _on_source_closed(self) -> None:
        with self._lock:
            self._source_closed = True
            self._connected = False
            self._source = None
            self._state_changed.notify_all()
        self._buffer.close_for_writing()
        self._fire_listeners()

    def _notify_readers(self) -> None:
        with self._lock:
            self._state_changed.notify_all()
        self._fire_listeners()

    # --------------------------------------------------------------- receive

    def receive(self, data: bytes, timeout: Optional[float] = None,
                force: bool = False) -> int:
        """Accept ``data`` from the writing side into the buffer.

        Called by :meth:`DetachableOutputStream.write`; exposed publicly so
        EndPoints and tests can inject data directly, exactly as the paper's
        ``DIS.receive()`` is callable from the DOS.  ``force=True`` bypasses
        the capacity bound (see :meth:`StreamBuffer.write`).
        """
        if self._closed:
            raise StreamClosedError(f"{self.name}: receive on closed stream")
        written = self._buffer.write(data, timeout=timeout, force=force)
        if written:
            self._fire_listeners()
        return written

    def receive_many(self, chunks: Iterable[bytes], timeout: Optional[float] = None,
                     force: bool = False) -> int:
        """Accept a batch of chunks from the writing side into the buffer.

        The batch counterpart of :meth:`receive`: one buffer lock
        acquisition queues every chunk, and subscribers are notified once
        per batch rather than once per chunk.
        """
        if self._closed:
            raise StreamClosedError(f"{self.name}: receive on closed stream")
        before = self._buffer.bytes_written
        try:
            written = self._buffer.write_chunks(chunks, timeout=timeout,
                                                force=force)
        except BaseException:
            # Chunks queued before a mid-batch failure are readable, so
            # subscribers must still hear about them.
            if self._buffer.bytes_written != before:
                self._fire_listeners()
            raise
        if written:
            self._fire_listeners()
        return written

    # ------------------------------------------------------------------ read

    def available(self) -> int:
        """Number of bytes that can be read without blocking."""
        return self._buffer.available()

    def read(self, max_bytes: int = 65536, timeout: Optional[float] = None) -> bytes:
        """Read up to ``max_bytes`` from the buffer.

        Blocks while the buffer is empty — including across a pause and
        reconnect — and returns ``b""`` only at true end-of-stream (the
        writer called ``close()`` and the buffer has drained, or this DIS was
        itself closed).  Raises :class:`StreamTimeoutError` when ``timeout``
        elapses first.
        """
        if self._closed and self._buffer.is_empty():
            return b""
        try:
            chunk = self._buffer.read(max_bytes, timeout=timeout)
        except StreamTimeoutError:
            if self._closed:
                return b""
            raise
        if chunk:
            # Buffer level dropped: wake subscribers (an event engine gates
            # upstream elements on this buffer's high-water mark).
            self._fire_listeners()
        return chunk

    def read_chunks(self, max_bytes: int = 65536, timeout: Optional[float] = None,
                    max_chunk: Optional[int] = None) -> "List[bytes]":
        """Read a batch of whole buffered chunks (see
        :meth:`StreamBuffer.read_chunks`).

        Blocks while the buffer is empty, exactly like :meth:`read`, and
        returns ``[]`` only at true end-of-stream.  ``max_chunk`` caps the
        size of each returned piece so transform units stay bounded.
        """
        if self._closed and self._buffer.is_empty():
            return []
        try:
            chunks = self._buffer.read_chunks(max_bytes, timeout=timeout,
                                              max_chunk=max_chunk)
        except StreamTimeoutError:
            if self._closed:
                return []
            raise
        if chunks:
            # Buffer level dropped: wake subscribers (an event engine gates
            # upstream elements on this buffer's high-water mark).
            self._fire_listeners()
        return chunks

    def read_exactly(self, nbytes: int, timeout: Optional[float] = None) -> bytes:
        """Read exactly ``nbytes`` (short only at end-of-stream)."""
        return self._buffer.read_exactly(nbytes, timeout=timeout)

    def peek(self, max_bytes: int = 65536) -> bytes:
        """Inspect buffered bytes without consuming them."""
        return self._buffer.peek(max_bytes)

    def wait_until_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until the reader has consumed everything in the buffer."""
        return self._buffer.wait_until_empty(timeout)

    # ----------------------------------------------------------------- close

    def close(self) -> None:
        """Close the reading side permanently.

        Any residual buffered data is discarded and a connected writer is
        detached (its next write raises ``NotConnectedError`` after its
        reconnect wait, or it can be closed by its owner).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            source = self._source
            self._source = None
            self._connected = False
            self._switching = False
            self._state_changed.notify_all()
        self._buffer.mark_broken()
        self._buffer.clear()
        if source is not None:
            source.detach()
        self._fire_listeners()

    def at_eof(self) -> bool:
        """True when no byte will ever be readable again."""
        if self._closed:
            return self._buffer.is_empty()
        return self._source_closed and self._buffer.is_empty()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            "connected" if self._connected else ("switching" if self._switching else "detached"))
        return f"<DetachableInputStream {self.name} {state} buffered={self.available()}>"


def connect(dos: DetachableOutputStream, dis: DetachableInputStream) -> None:
    """Convenience function: connect a DOS to a DIS."""
    dos.connect(dis)


def make_pipe(name: str = "pipe", capacity: Optional[int] = DEFAULT_CAPACITY
              ) -> "tuple[DetachableOutputStream, DetachableInputStream]":
    """Create a connected (DOS, DIS) pair — the detachable analogue of
    ``os.pipe()``."""
    dos = DetachableOutputStream(name=f"{name}.out")
    dis = DetachableInputStream(name=f"{name}.in", capacity=capacity)
    dos.connect(dis)
    return dos, dis
