"""Awaitable readiness for detachable streams.

The detachable streams were built for threads: readers block on a
condition variable, and non-blocking callers poll ``available()`` or hang
a ``subscribe()`` listener.  This module adds the third idiom — *awaiting*
— so asyncio code (the :mod:`repro.ingress` front door, application
coroutines running next to an :class:`~repro.runtime.AsyncioEngine`) can
wait for stream readiness without burning a thread per stream.

The bridge is deliberately thin: :class:`AsyncStreamEvent` turns any
object with ``subscribe()``/``unsubscribe()`` (a DIS, a DOS, a transport
receiver) into an ``asyncio.Event`` that is set — threadsafely, from
whatever thread fired the listener — whenever the subject reports an
event.  The helpers built on it (:func:`wait_readable`,
:func:`read_async`, :func:`read_chunks_async`, :func:`write_async`)
follow the classic subscribe → recheck → await pattern so a notification
landing between the predicate check and the await is never lost.

Nothing here changes the streams themselves: the condition-variable path
and the listener path are untouched, and the two can be mixed freely
(e.g. a threaded filter writing into a DOS that an asyncio reader
awaits).
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional

from .exceptions import StreamTimeoutError

__all__ = [
    "AsyncStreamEvent",
    "wait_readable",
    "wait_writable",
    "read_async",
    "read_chunks_async",
    "write_async",
]

#: Upper bound on one predicate re-check interval while awaiting.  Every
#: relevant state change fires a listener, so this is a lost-wakeup safety
#: net (the awaitable twin of the engines' scheduler heartbeat).
DEFAULT_RECHECK_S = 0.5


class AsyncStreamEvent:
    """Bridge a ``subscribe()``-style subject onto an ``asyncio.Event``.

    The subject's listeners fire on arbitrary threads (a filter pump, a
    transport delivery thread); the event must only be touched on its
    loop.  ``call_soon_threadsafe`` does the marshalling, and a closed
    loop during teardown is swallowed — the waiter is gone anyway.

    Use as a context manager so the listener is always unsubscribed::

        with AsyncStreamEvent(dis) as ev:
            while not predicate():
                await ev.wait()
    """

    def __init__(self, subject,
                 loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._subject = subject
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._event = asyncio.Event()
        self._subscribed = False

    def __enter__(self) -> "AsyncStreamEvent":
        self._subject.subscribe(self._notify)
        self._subscribed = True
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Unsubscribe from the subject (idempotent)."""
        if self._subscribed:
            self._subject.unsubscribe(self._notify)
            self._subscribed = False

    def _notify(self) -> None:
        try:
            self._loop.call_soon_threadsafe(self._event.set)
        except RuntimeError:
            pass  # loop closed while the stream was tearing down

    def set(self) -> None:
        """Set the event directly (loop thread only)."""
        self._event.set()

    async def wait(self, timeout: Optional[float] = DEFAULT_RECHECK_S) -> None:
        """Wait until notified, or until ``timeout`` elapses, then reset.

        Waking on timeout is deliberate: callers re-check their predicate
        each wake, so a lost notification degrades to a bounded hiccup
        instead of a hang.
        """
        if timeout is None:
            await self._event.wait()
        else:
            try:
                await asyncio.wait_for(self._event.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        self._event.clear()


async def _await_predicate(subject, predicate: Callable[[], bool],
                           timeout: Optional[float]) -> bool:
    """subscribe → recheck → await until ``predicate()`` or ``timeout``."""
    if predicate():
        return True
    loop = asyncio.get_running_loop()
    deadline = None if timeout is None else loop.time() + timeout
    with AsyncStreamEvent(subject, loop=loop) as event:
        while True:
            # Re-check *after* subscribing: an event fired in between
            # would otherwise be lost.
            if predicate():
                return True
            wait_s = DEFAULT_RECHECK_S
            if deadline is not None:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    return predicate()
                wait_s = min(wait_s, remaining)
            await event.wait(wait_s)


async def wait_readable(dis, timeout: Optional[float] = None) -> bool:
    """Await until ``dis`` has buffered bytes or has reached EOF.

    Returns ``True`` when a read would make progress (data buffered, or
    EOF so a read returns ``b""`` immediately); ``False`` on timeout.
    """
    return await _await_predicate(
        dis, lambda: dis.available() > 0 or dis.at_eof(), timeout)


async def wait_writable(dos, timeout: Optional[float] = None) -> bool:
    """Await until a ``try_write`` on ``dos`` would be accepted.

    Writable means: attached to a sink whose buffer is under capacity
    (``try_write`` force-delivers, so at-capacity only means *waiting
    would be polite*, not that the write would fail — this helper is the
    polite path).  Returns ``False`` on timeout.
    """
    def _writable() -> bool:
        if not dos.connected:
            return False
        sink = dos.sink
        if sink is None:
            return False
        capacity = sink.buffer.capacity
        return capacity is None or sink.available() < capacity

    return await _await_predicate(dos, _writable, timeout)


async def read_async(dis, max_bytes: int = 65536,
                     timeout: Optional[float] = None) -> bytes:
    """Awaitable :meth:`DetachableInputStream.read`.

    Waits for readability without blocking the loop, then drains with the
    stream's own non-blocking read.  Returns ``b""`` at EOF; raises
    :class:`~repro.streams.exceptions.StreamTimeoutError` on timeout,
    mirroring the blocking API.
    """
    if not await wait_readable(dis, timeout):
        raise StreamTimeoutError("read_async timed out")
    return dis.read(max_bytes, timeout=0)


async def read_chunks_async(dis, max_bytes: int = 65536,
                            timeout: Optional[float] = None,
                            max_chunk: Optional[int] = None) -> List[bytes]:
    """Awaitable :meth:`DetachableInputStream.read_chunks`.

    Returns whole buffered chunks (``[]`` only at EOF); raises
    :class:`~repro.streams.exceptions.StreamTimeoutError` on timeout.
    """
    if not await wait_readable(dis, timeout):
        raise StreamTimeoutError("read_chunks_async timed out")
    return dis.read_chunks(max_bytes, timeout=0, max_chunk=max_chunk)


async def write_async(dos, data: bytes,
                      timeout: Optional[float] = None) -> bool:
    """Write ``data`` to ``dos``, awaiting downstream room first.

    The cooperative twin of the blocking ``write``: waits until the sink
    buffer is under capacity (back-pressure as an await, not a blocked
    thread), then delivers with ``try_write``.  Returns ``False`` when the
    stream stayed detached or over capacity for the whole ``timeout``.
    """
    if not await wait_writable(dos, timeout):
        return False
    return dos.try_write(data)
