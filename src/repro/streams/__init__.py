"""Detachable streams — the transport substrate for composable proxy filters.

This package reproduces the paper's detachable Java I/O streams in Python:

* :class:`~repro.streams.detachable.DetachableOutputStream` /
  :class:`~repro.streams.detachable.DetachableInputStream` — piped byte
  streams that can be paused, disconnected, reconnected and restarted;
* :class:`~repro.streams.buffer.StreamBuffer` — the bounded byte buffer held
  at the DIS side;
* :mod:`~repro.streams.framing` — length-prefixed packet framing so
  packet-oriented filters (FEC, transcoders) can ride on byte streams;
* :mod:`~repro.streams.awaitable` — asyncio adapters that turn the
  streams' ``subscribe()`` callbacks into awaitable readiness, so
  coroutine code (the asyncio engine, the ingress front door) can wait
  on a DIS/DOS without blocking a thread.
"""

from .awaitable import (
    DEFAULT_RECHECK_S,
    AsyncStreamEvent,
    read_async,
    read_chunks_async,
    wait_readable,
    wait_writable,
    write_async,
)

from .buffer import DEFAULT_CAPACITY, StreamBuffer
from .detachable import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_RECONNECT_WAIT,
    DetachableInputStream,
    DetachableOutputStream,
    connect,
    make_pipe,
)
from .exceptions import (
    AlreadyConnectedError,
    BrokenStreamError,
    FramingError,
    NotConnectedError,
    StreamClosedError,
    StreamError,
    StreamTimeoutError,
)
from .framing import (
    FRAME_MAGIC,
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    FrameDecoder,
    FrameReader,
    FrameWriter,
    encode_frame,
    encode_frames,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_RECONNECT_WAIT",
    "StreamBuffer",
    "DetachableInputStream",
    "DetachableOutputStream",
    "connect",
    "make_pipe",
    "StreamError",
    "AlreadyConnectedError",
    "NotConnectedError",
    "StreamClosedError",
    "StreamTimeoutError",
    "BrokenStreamError",
    "FramingError",
    "FrameDecoder",
    "FrameReader",
    "FrameWriter",
    "encode_frame",
    "encode_frames",
    "FRAME_MAGIC",
    "HEADER_SIZE",
    "MAX_FRAME_SIZE",
    "DEFAULT_RECHECK_S",
    "AsyncStreamEvent",
    "wait_readable",
    "wait_writable",
    "read_async",
    "read_chunks_async",
    "write_async",
]
