"""Packet framing over detachable byte streams.

Detachable streams carry raw bytes (they are modelled on Java I/O streams).
Many proxy filters, however, operate on *packets* — audio packets, FEC
groups, multicast datagrams.  This module provides a simple length-prefixed
framing layer so packet-oriented filters can be composed over the same
detachable-stream plumbing:

* each frame is ``MAGIC (1 byte) | length (4 bytes, big-endian) | payload``;
* the magic byte catches de-synchronisation (e.g. a filter that corrupted
  the byte stream) early rather than silently mis-parsing lengths;
* :class:`FrameWriter` / :class:`FrameReader` wrap a DOS / DIS respectively;
* :func:`encode_frame` / :class:`FrameDecoder` are the stateless /
  incremental building blocks used by the network simulator and the tests.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional

from .detachable import DetachableInputStream, DetachableOutputStream
from .exceptions import FramingError, StreamTimeoutError

#: Single sync byte prepended to every frame.
FRAME_MAGIC = 0xC5

#: Frames larger than this are rejected — catches corrupted length fields.
MAX_FRAME_SIZE = 16 * 1024 * 1024

_HEADER = struct.Struct(">BI")
HEADER_SIZE = _HEADER.size


def encode_frame(payload: bytes) -> bytes:
    """Encode a payload into a single framed byte string."""
    if payload is None:
        raise ValueError("payload must be bytes, not None")
    if len(payload) > MAX_FRAME_SIZE:
        raise FramingError(f"frame of {len(payload)} bytes exceeds MAX_FRAME_SIZE")
    return _HEADER.pack(FRAME_MAGIC, len(payload)) + bytes(payload)


def encode_frames(payloads: "List[bytes]") -> bytes:
    """Encode several payloads back-to-back into one byte string."""
    return b"".join(encode_frame(p) for p in payloads)


class FrameDecoder:
    """Incremental frame decoder.

    Feed arbitrary byte chunks with :meth:`feed`; complete payloads come out
    of :meth:`packets` (or are returned directly by ``feed``).  The decoder
    tolerates frames split across chunk boundaries, which is exactly what
    happens when a byte-oriented filter sits between two packet filters.
    """

    def __init__(self) -> None:
        self._pending = bytearray()
        self._ready: List[bytes] = []
        self.frames_decoded = 0
        self.bytes_consumed = 0

    def feed(self, chunk: bytes) -> List[bytes]:
        """Add ``chunk`` and return the list of payloads completed by it."""
        if chunk:
            self._pending.extend(chunk)
            self.bytes_consumed += len(chunk)
        out: List[bytes] = []
        while True:
            payload = self._try_extract()
            if payload is None:
                break
            out.append(payload)
        self._ready.extend(out)
        return out

    def _try_extract(self) -> Optional[bytes]:
        if len(self._pending) < HEADER_SIZE:
            return None
        magic, length = _HEADER.unpack_from(self._pending, 0)
        if magic != FRAME_MAGIC:
            raise FramingError(
                f"bad frame magic 0x{magic:02x} (stream out of sync)")
        if length > MAX_FRAME_SIZE:
            raise FramingError(f"frame length {length} exceeds MAX_FRAME_SIZE")
        if len(self._pending) < HEADER_SIZE + length:
            return None
        payload = bytes(self._pending[HEADER_SIZE:HEADER_SIZE + length])
        del self._pending[:HEADER_SIZE + length]
        self.frames_decoded += 1
        return payload

    def packets(self) -> List[bytes]:
        """Return and clear all decoded-but-unclaimed payloads."""
        out, self._ready = self._ready, []
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._pending)

    def has_partial_frame(self) -> bool:
        return bool(self._pending)


class FrameWriter:
    """Write framed packets onto a :class:`DetachableOutputStream`."""

    def __init__(self, dos: DetachableOutputStream) -> None:
        self._dos = dos
        self.packets_written = 0

    @property
    def stream(self) -> DetachableOutputStream:
        return self._dos

    def write_packet(self, payload: bytes, timeout: Optional[float] = None) -> None:
        """Frame ``payload`` and write it to the underlying stream."""
        self._dos.write(encode_frame(payload), timeout=timeout)
        self.packets_written += 1

    def write_packets(self, payloads: "List[bytes]",
                      timeout: Optional[float] = None) -> None:
        for payload in payloads:
            self.write_packet(payload, timeout=timeout)

    def flush(self) -> None:
        self._dos.flush()

    def close(self) -> None:
        self._dos.close()


class FrameReader:
    """Read framed packets from a :class:`DetachableInputStream`.

    ``read_packet`` blocks until a complete frame is available, raises
    :class:`StreamTimeoutError` when ``timeout`` elapses first, and returns
    ``None`` at end-of-stream.  A truncated trailing frame at end-of-stream
    raises :class:`FramingError` because it means data was lost mid-frame.
    """

    def __init__(self, dis: DetachableInputStream) -> None:
        self._dis = dis
        self._decoder = FrameDecoder()
        self._queue: List[bytes] = []
        self.packets_read = 0

    @property
    def stream(self) -> DetachableInputStream:
        return self._dis

    def read_packet(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Return the next payload, ``None`` at end-of-stream."""
        while not self._queue:
            try:
                chunk = self._dis.read(65536, timeout=timeout)
            except StreamTimeoutError:
                raise
            if chunk == b"":
                if self._decoder.has_partial_frame():
                    raise FramingError(
                        "end of stream inside a frame "
                        f"({self._decoder.pending_bytes} bytes pending)")
                return None
            self._queue.extend(self._decoder.feed(chunk))
        self.packets_read += 1
        return self._queue.pop(0)

    def read_all(self, timeout: Optional[float] = None) -> List[bytes]:
        """Drain the stream to end-of-stream and return every payload."""
        out: List[bytes] = []
        while True:
            packet = self.read_packet(timeout=timeout)
            if packet is None:
                return out
            out.append(packet)

    def __iter__(self) -> Iterator[bytes]:
        while True:
            packet = self.read_packet()
            if packet is None:
                return
            yield packet
