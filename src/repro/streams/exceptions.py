"""Exception hierarchy for detachable streams.

The original paper surfaces most error conditions as ``java.io.IOException``.
This reproduction uses a small, explicit hierarchy instead so that callers
can distinguish the conditions that matter for composition logic (already
connected, not connected, closed, timed out) without string matching.
"""

from __future__ import annotations


class StreamError(Exception):
    """Base class for every error raised by the detachable stream layer."""


class AlreadyConnectedError(StreamError):
    """Raised when ``connect``/``reconnect`` targets a stream that is already
    part of a live connection.

    Mirrors the ``IOException("Already connected!")`` thrown by the paper's
    ``reconnect()`` implementation.
    """


class NotConnectedError(StreamError):
    """Raised when data is written to, or read from, a stream half that has
    no partner and is not in the paused ("switching") state."""


class StreamClosedError(StreamError):
    """Raised when an operation is attempted on a stream that has been
    closed for good (as opposed to merely paused)."""


class StreamTimeoutError(StreamError):
    """Raised when a blocking stream operation exceeds its timeout.

    Filters use short read timeouts to poll their stop flag, so this
    exception is part of the normal control flow of a filter thread.
    """


class BrokenStreamError(StreamError):
    """Raised when the other half of a connection disappeared while an
    operation was in flight (e.g. the reader side was closed while a writer
    was blocked on a full buffer)."""


class FramingError(StreamError):
    """Raised when the packet framing layer encounters a malformed or
    oversized frame header."""
