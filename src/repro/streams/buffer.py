"""Bounded, condition-signalled byte buffer.

The paper buffers data "at the DIS side", exactly as Java's
``PipedInputStream`` does.  ``StreamBuffer`` factors that buffer out so it
can be tested in isolation and reused by the network simulation.  It is a
thread-safe bounded byte FIFO with:

* blocking ``write`` (back-pressure when the buffer is full),
* blocking ``read`` (waits for data, or for end-of-stream),
* an end-of-stream marker (``close_for_writing``) so readers can
  distinguish "no data yet" from "no data ever again",
* ``wait_until_empty`` used by the pause protocol to drain in-flight data
  before a stream is disconnected.

Data-path design (the hot path of every chain hop):

* **Chunk deque, not a coalescing bytearray.**  ``write`` appends the
  caller's bytes-like object (``bytes``, ``bytearray`` or ``memoryview``)
  to a deque without copying it; a read whose ``max_bytes`` covers the
  head chunk pops the same object back out — the aligned fast path moves
  a chunk through the buffer with *zero* byte copies.
* **Buffer-protocol splits.**  A read smaller than the head chunk no
  longer slices ``bytes``: the head is wrapped in a ``memoryview`` once
  and both the returned piece and the queued remainder are O(1) views
  over the writer's original object.  Repeatedly carving a large chunk
  into ``max_chunk``-sized pieces therefore costs zero byte copies
  (previously each split re-copied the shrinking tail — quadratic in the
  chunk size).  Coalescing happens only when a caller demands a single
  contiguous result from several queued chunks (``read`` straddling
  chunk boundaries), never on the batch path.
* **Ownership contract.**  Writers hand over ownership: once a chunk is
  written it must not be mutated (a ``bytearray`` or writable view is
  queued by reference, and downstream readers may alias it).  Readers
  receive either the writer's object or a read-only view of it and must
  treat it as immutable; see ``docs/ARCHITECTURE.md``.
* **Batch APIs.**  :meth:`write_chunks` and :meth:`read_chunks` move many
  queued chunks per lock acquisition, so a filter pump pays one lock
  round-trip per *batch* instead of per chunk.
* **Waiter-gated notifies.**  Every condition keeps a count of actual
  waiters and signals with ``notify()`` only when that count is non-zero,
  so the uncontended fast path never touches a waiter queue — the same
  idiom as ``ControlThread.wait_idle``.
"""

from __future__ import annotations

import threading
from collections import deque
from itertools import repeat as _repeat
from time import monotonic as _monotonic
from typing import Deque, Iterable, List, Optional

from .exceptions import BrokenStreamError, StreamClosedError, StreamTimeoutError

DEFAULT_CAPACITY = 64 * 1024

#: The types queued by reference (anything else is materialised once on
#: entry).  Kept as a tuple so the hot-path isinstance check is one call.
_BYTES_LIKE = (bytes, bytearray, memoryview)


def _as_view(chunk) -> memoryview:
    """A memoryview over ``chunk``, reused as-is when it already is one."""
    return chunk if type(chunk) is memoryview else memoryview(chunk)


#: Infinite second argument for ``map(isinstance, chunks, ...)`` — an
#: all-bytes-like batch check that runs entirely in C.  A bare ``repeat``
#: is stateless, so one shared instance serves every concurrent scan.
_REPEAT_BYTES_LIKE = _repeat(_BYTES_LIKE)


class StreamBuffer:
    """A bounded byte FIFO shared by one writer side and one reader side.

    Parameters
    ----------
    capacity:
        Maximum number of bytes buffered before writers block.  ``None``
        means unbounded (useful for tests and for the network simulator).
    name:
        Optional label used in error messages.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY, name: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._capacity = capacity
        self._name = name or "StreamBuffer"
        self._chunks: Deque[bytes] = deque()
        self._size = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._empty = threading.Condition(self._lock)
        # Waiter counts gate every notify: with no waiter registered the
        # fast path skips the condition entirely.
        self._readers_waiting = 0
        self._writers_waiting = 0
        self._drain_waiting = 0
        self._eof = False
        self._broken = False
        self._bytes_in = 0
        self._bytes_out = 0

    # ------------------------------------------------------------------ info

    @property
    def name(self) -> str:
        return self._name

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def bytes_written(self) -> int:
        """Total number of bytes ever written into the buffer."""
        return self._bytes_in

    @property
    def bytes_read(self) -> int:
        """Total number of bytes ever read out of the buffer."""
        return self._bytes_out

    def available(self) -> int:
        """Number of bytes currently buffered (the paper's ``available()``)."""
        with self._lock:
            return self._size

    def is_empty(self) -> bool:
        with self._lock:
            return self._size == 0

    def at_eof(self) -> bool:
        """True when the writer closed the buffer and all data was consumed."""
        with self._lock:
            return self._eof and self._size == 0

    @property
    def closed_for_writing(self) -> bool:
        with self._lock:
            return self._eof

    # ----------------------------------------------------------------- write

    def write(self, data: bytes, timeout: Optional[float] = None,
              force: bool = False) -> int:
        """Append ``data``, blocking while the buffer is full.

        Returns the number of bytes written (always ``len(data)`` unless the
        data is empty).  Raises :class:`StreamClosedError` if the buffer was
        closed for writing, :class:`BrokenStreamError` if the reader side
        was torn down, and :class:`StreamTimeoutError` on timeout.

        A bytes-like payload (``bytes``, ``bytearray``, ``memoryview``)
        that fits the available room is queued by reference — no copy is
        made; it becomes the unit an aligned read pops back out, and the
        writer must not mutate it afterwards.  Only a write squeezed
        through a nearly full bounded buffer splits the payload, as O(1)
        views into the caller's object.

        With ``force=True`` the capacity bound is ignored and the call never
        blocks: the bytes are appended even if the buffer overshoots its
        capacity.  Cooperative schedulers use this so a pump step can never
        deadlock on a full pipe; they bound memory with high-water-mark
        scheduling instead of blocking (see :mod:`repro.runtime.event`).
        """
        if not data:
            return 0
        if not isinstance(data, _BYTES_LIKE):
            data = bytes(data)
        with self._lock:
            return self._write_locked(data, timeout, force)

    def write_chunks(self, chunks: Iterable[bytes], timeout: Optional[float] = None,
                     force: bool = False) -> int:
        """Append many chunks under a single lock acquisition.

        Each chunk is queued exactly as :meth:`write` would queue it (by
        reference, preserving chunk identity for the aligned read path);
        the blocking, timeout, closed and broken semantics are per chunk
        and identical to :meth:`write`.  Returns the total bytes written.
        """
        if not isinstance(chunks, (list, tuple)):
            chunks = list(chunks)
        with self._lock:
            # Bulk fast path: an all-bytes-like batch goes in as one
            # deque.extend — no per-chunk call into _write_locked.  A batch
            # that doesn't fit yet *waits for room and retries whole*
            # rather than dribbling chunks through the squeeze path: the
            # downstream reader drains in batches, so room arrives in
            # batch-sized steps too.
            if chunks and all(map(isinstance, chunks, _REPEAT_BYTES_LIKE)):
                batch_bytes = sum(map(len, chunks))
            else:
                batch_bytes = 0  # mixed batch: per-chunk slow path below
            while batch_bytes:
                if self._broken:
                    raise BrokenStreamError(f"{self._name}: reader side is gone")
                if self._eof:
                    raise StreamClosedError(
                        f"{self._name}: buffer closed for writing")
                if (self._capacity is None or force
                        or self._size + batch_bytes <= self._capacity):
                    if 0 in map(len, chunks):
                        # Empty chunks must never reach the deque (an empty
                        # head reads back as a spurious EOF).
                        chunks = [data for data in chunks if len(data)]
                    self._chunks.extend(chunks)
                    self._size += batch_bytes
                    self._bytes_in += batch_bytes
                    if self._readers_waiting:
                        self._not_empty.notify()
                    if self._writers_waiting and (
                            self._capacity is None
                            or self._size < self._capacity):
                        self._not_full.notify()
                    return batch_bytes
                if batch_bytes > self._capacity:
                    break  # can never fit whole; squeeze chunk by chunk
                self._writers_waiting += 1
                try:
                    woken = self._not_full.wait(timeout)
                finally:
                    self._writers_waiting -= 1
                if not woken:
                    raise StreamTimeoutError(
                        f"{self._name}: timed out waiting for buffer space")
            total = 0
            for data in chunks:
                if not data:
                    continue
                if not isinstance(data, _BYTES_LIKE):
                    data = bytes(data)
                total += self._write_locked(data, timeout, force)
            return total

    def _write_locked(self, data: bytes, timeout: Optional[float],
                      force: bool) -> int:
        """Queue one bytes-like payload; caller holds the lock."""
        written = 0
        total = len(data)
        view: Optional[memoryview] = None
        while written < total:
            if self._broken:
                raise BrokenStreamError(f"{self._name}: reader side is gone")
            if self._eof:
                raise StreamClosedError(f"{self._name}: buffer closed for writing")
            if self._capacity is None or force:
                room = total - written
            else:
                room = self._capacity - self._size
            if room <= 0:
                self._writers_waiting += 1
                try:
                    woken = self._not_full.wait(timeout)
                finally:
                    self._writers_waiting -= 1
                if not woken:
                    raise StreamTimeoutError(
                        f"{self._name}: timed out waiting for buffer space"
                    )
                continue
            if written == 0 and room >= total:
                chunk = data  # fast path: queue the caller's object, no copy
            else:
                if view is None:
                    view = _as_view(data)
                chunk = view[written:written + room]
            self._chunks.append(chunk)
            self._size += len(chunk)
            written += len(chunk)
            self._bytes_in += len(chunk)
            if self._readers_waiting:
                self._not_empty.notify()
        if self._writers_waiting and (
                self._capacity is None or self._size < self._capacity):
            # Chained wake: room remains and another writer is parked (the
            # read-side notify wakes only one writer at a time).
            self._not_full.notify()
        return written

    def close_for_writing(self) -> None:
        """Mark end-of-stream.  Readers drain remaining data, then see EOF."""
        with self._lock:
            self._eof = True
            if self._readers_waiting:
                self._not_empty.notify_all()
            if self._drain_waiting:
                self._empty.notify_all()

    def mark_broken(self) -> None:
        """Mark the buffer as broken: blocked writers and readers are woken
        and raise :class:`BrokenStreamError` / see EOF respectively."""
        with self._lock:
            self._broken = True
            self._eof = True
            if self._readers_waiting:
                self._not_empty.notify_all()
            if self._writers_waiting:
                self._not_full.notify_all()
            if self._drain_waiting:
                self._empty.notify_all()

    # ------------------------------------------------------------------ read

    def read(self, max_bytes: int = 65536, timeout: Optional[float] = None) -> bytes:
        """Read up to ``max_bytes``, blocking until data is available.

        Returns ``min(max_bytes, available)`` bytes, exactly as the old
        coalescing buffer did.  When a single queued chunk satisfies the
        read it is popped and returned *as the very object the writer
        queued* — the zero-copy aligned path; only a read that straddles
        chunk boundaries (or splits a chunk) coalesces, lazily, at read
        time.  Callers moving bulk data use :meth:`read_chunks`, which
        never coalesces.

        Returns ``b""`` once the buffer is closed for writing and fully
        drained (end of stream).  Raises :class:`StreamTimeoutError` when no
        data arrives within ``timeout`` seconds.
        """
        if max_bytes <= 0:
            return b""
        with self._lock:
            while not self._chunks:
                if self._eof:
                    return b""
                self._readers_waiting += 1
                try:
                    woken = self._not_empty.wait(timeout)
                finally:
                    self._readers_waiting -= 1
                if not woken:
                    raise StreamTimeoutError(f"{self._name}: read timed out")
            head = self._chunks[0]
            hlen = len(head)
            if hlen == max_bytes or (hlen < max_bytes and len(self._chunks) == 1):
                self._chunks.popleft()
                chunk = head  # aligned fast path: no copy, no slice
            elif hlen > max_bytes:
                view = _as_view(head)
                chunk = view[:max_bytes]
                self._chunks[0] = view[max_bytes:]
            else:
                parts: List[bytes] = []
                taken = 0
                while self._chunks and taken < max_bytes:
                    head = self._chunks[0]
                    room = max_bytes - taken
                    if len(head) <= room:
                        self._chunks.popleft()
                        parts.append(head)
                        taken += len(head)
                    else:
                        view = _as_view(head)
                        parts.append(view[:room])
                        self._chunks[0] = view[room:]
                        taken += room
                chunk = b"".join(parts)
            self._size -= len(chunk)
            self._bytes_out += len(chunk)
            self._after_read_locked()
            return chunk

    def read_chunks(self, max_bytes: int = 65536, timeout: Optional[float] = None,
                    max_chunk: Optional[int] = None) -> List[bytes]:
        """Pop whole queued chunks totalling at most ``max_bytes``.

        The batch counterpart of :meth:`read`: one lock acquisition moves
        as many whole chunks as fit the byte budget (always at least one
        piece once data is available, splitting the head chunk if it alone
        exceeds the budget).  ``max_chunk`` additionally caps the size of
        each returned piece, for callers that need bounded units (framing
        probes, tests); the filter pump does *not* use it — whole queued
        chunks are the transform units, so nothing is re-fragmented.

        Returns ``[]`` only at end of stream.  Raises
        :class:`StreamTimeoutError` when no data arrives in time.
        """
        if max_bytes <= 0:
            return []
        with self._lock:
            while not self._chunks:
                if self._eof:
                    return []
                self._readers_waiting += 1
                try:
                    woken = self._not_empty.wait(timeout)
                finally:
                    self._readers_waiting -= 1
                if not woken:
                    raise StreamTimeoutError(f"{self._name}: read timed out")
            if max_chunk is None and self._size <= max_bytes:
                # Bulk fast path: the byte budget covers everything queued
                # and no per-piece cap is in force — hand the whole deque
                # over in one list() + clear(), no per-chunk loop.  This is
                # the steady state of a batched chain hop, where the
                # reader's budget is sized to the writer's batch.
                chunks = list(self._chunks)
                self._chunks.clear()
                self._bytes_out += self._size
                self._size = 0
                self._after_read_locked()
                return chunks
            chunks: List[bytes] = []
            taken = 0
            while self._chunks and taken < max_bytes:
                head = self._chunks[0]
                allowance = max_bytes - taken
                if max_chunk is not None and max_chunk < allowance:
                    allowance = max_chunk
                if len(head) <= allowance:
                    self._chunks.popleft()
                    piece = head
                elif not chunks or (max_chunk is not None
                                    and len(head) > max_chunk
                                    and allowance == max_chunk):
                    # Split when the caller would otherwise get nothing, or
                    # when the per-piece cap (not the byte budget) is what
                    # the head exceeds — a filter batching a large upstream
                    # chunk keeps slicing full-size pieces off it rather
                    # than degrading to one piece per call.
                    view = _as_view(head)
                    piece = view[:allowance]
                    self._chunks[0] = view[allowance:]
                else:
                    break  # next whole chunk doesn't fit; leave it queued
                chunks.append(piece)
                taken += len(piece)
            self._size -= taken
            self._bytes_out += taken
            self._after_read_locked()
            return chunks

    def _after_read_locked(self) -> None:
        """Post-consumption signalling; caller holds the lock."""
        if self._writers_waiting:
            self._not_full.notify()
        if not self._chunks:
            if self._drain_waiting:
                self._empty.notify_all()
        elif self._readers_waiting:
            # Chained wake: data remains and another reader is parked.
            self._not_empty.notify()

    def read_exactly(self, nbytes: int, timeout: Optional[float] = None) -> bytes:
        """Read exactly ``nbytes``; returns a short result only at EOF."""
        parts = []
        remaining = nbytes
        while remaining > 0:
            chunk = self.read(remaining, timeout=timeout)
            if not chunk:
                break
            parts.append(chunk)
            remaining -= len(chunk)
        if len(parts) == 1:
            return parts[0]
        return b"".join(parts)

    def peek(self, max_bytes: int = 65536) -> bytes:
        """Return buffered data without consuming it (never blocks)."""
        if max_bytes <= 0:
            return b""
        with self._lock:
            if not self._chunks:
                return b""
            head = self._chunks[0]
            if len(head) >= max_bytes or len(self._chunks) == 1:
                return bytes(_as_view(head)[:max_bytes])
            parts: List[bytes] = []
            remaining = max_bytes
            for chunk in self._chunks:
                if remaining <= 0:
                    break
                parts.append(_as_view(chunk)[:remaining])
                remaining -= len(chunk)
            return b"".join(parts)

    def clear(self) -> int:
        """Discard all buffered data, returning the number of bytes dropped."""
        with self._lock:
            dropped = self._size
            self._chunks.clear()
            self._size = 0
            if self._writers_waiting:
                self._not_full.notify_all()
            if self._drain_waiting:
                self._empty.notify_all()
            return dropped

    # ----------------------------------------------------------------- drain

    def wait_until_empty(self, timeout: Optional[float] = None) -> bool:
        """Block until the buffer is empty (the pause protocol's drain step).

        Returns ``True`` if the buffer drained, ``False`` on timeout.
        """
        deadline = None if timeout is None else _monotonic() + timeout
        with self._lock:
            while self._chunks:
                if self._eof and self._broken:
                    return False
                remaining = None
                if deadline is not None:
                    remaining = deadline - _monotonic()
                    if remaining <= 0:
                        return False
                self._drain_waiting += 1
                try:
                    woken = self._empty.wait(remaining)
                finally:
                    self._drain_waiting -= 1
                if not woken:
                    return False
            return True

    def __len__(self) -> int:  # pragma: no cover - convenience
        return self.available()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamBuffer {self._name!r} size={self.available()} "
            f"capacity={self._capacity} eof={self._eof}>"
        )
