"""Bounded, condition-signalled byte buffer.

The paper buffers data "at the DIS side", exactly as Java's
``PipedInputStream`` does.  ``StreamBuffer`` factors that buffer out so it
can be tested in isolation and reused by the network simulation.  It is a
thread-safe bounded byte FIFO with:

* blocking ``write`` (back-pressure when the buffer is full),
* blocking ``read`` (waits for data, or for end-of-stream),
* an end-of-stream marker (``close_for_writing``) so readers can
  distinguish "no data yet" from "no data ever again",
* ``wait_until_empty`` used by the pause protocol to drain in-flight data
  before a stream is disconnected.
"""

from __future__ import annotations

import threading
from typing import Optional

from .exceptions import BrokenStreamError, StreamClosedError, StreamTimeoutError

DEFAULT_CAPACITY = 64 * 1024


class StreamBuffer:
    """A bounded byte FIFO shared by one writer side and one reader side.

    Parameters
    ----------
    capacity:
        Maximum number of bytes buffered before writers block.  ``None``
        means unbounded (useful for tests and for the network simulator).
    name:
        Optional label used in error messages.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY, name: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._capacity = capacity
        self._name = name or "StreamBuffer"
        self._data = bytearray()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._empty = threading.Condition(self._lock)
        self._eof = False
        self._broken = False
        self._bytes_in = 0
        self._bytes_out = 0

    # ------------------------------------------------------------------ info

    @property
    def name(self) -> str:
        return self._name

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def bytes_written(self) -> int:
        """Total number of bytes ever written into the buffer."""
        return self._bytes_in

    @property
    def bytes_read(self) -> int:
        """Total number of bytes ever read out of the buffer."""
        return self._bytes_out

    def available(self) -> int:
        """Number of bytes currently buffered (the paper's ``available()``)."""
        with self._lock:
            return len(self._data)

    def is_empty(self) -> bool:
        with self._lock:
            return not self._data

    def at_eof(self) -> bool:
        """True when the writer closed the buffer and all data was consumed."""
        with self._lock:
            return self._eof and not self._data

    @property
    def closed_for_writing(self) -> bool:
        with self._lock:
            return self._eof

    # ----------------------------------------------------------------- write

    def write(self, data: bytes, timeout: Optional[float] = None,
              force: bool = False) -> int:
        """Append ``data``, blocking while the buffer is full.

        Returns the number of bytes written (always ``len(data)`` unless the
        data is empty).  Raises :class:`StreamClosedError` if the buffer was
        closed for writing, :class:`BrokenStreamError` if the reader side
        was torn down, and :class:`StreamTimeoutError` on timeout.

        With ``force=True`` the capacity bound is ignored and the call never
        blocks: the bytes are appended even if the buffer overshoots its
        capacity.  Cooperative schedulers use this so a pump step can never
        deadlock on a full pipe; they bound memory with high-water-mark
        scheduling instead of blocking (see :mod:`repro.runtime.event`).
        """
        if not data:
            return 0
        view = memoryview(bytes(data))
        written = 0
        with self._lock:
            while written < len(view):
                if self._broken:
                    raise BrokenStreamError(f"{self._name}: reader side is gone")
                if self._eof:
                    raise StreamClosedError(f"{self._name}: buffer closed for writing")
                if self._capacity is None or force:
                    room = len(view) - written
                else:
                    room = self._capacity - len(self._data)
                if room <= 0:
                    if not self._not_full.wait(timeout):
                        raise StreamTimeoutError(
                            f"{self._name}: timed out waiting for buffer space"
                        )
                    continue
                chunk = view[written:written + room]
                self._data.extend(chunk)
                written += len(chunk)
                self._bytes_in += len(chunk)
                self._not_empty.notify_all()
        return written

    def close_for_writing(self) -> None:
        """Mark end-of-stream.  Readers drain remaining data, then see EOF."""
        with self._lock:
            self._eof = True
            self._not_empty.notify_all()
            self._empty.notify_all()

    def mark_broken(self) -> None:
        """Mark the buffer as broken: blocked writers and readers are woken
        and raise :class:`BrokenStreamError` / see EOF respectively."""
        with self._lock:
            self._broken = True
            self._eof = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
            self._empty.notify_all()

    # ------------------------------------------------------------------ read

    def read(self, max_bytes: int = 65536, timeout: Optional[float] = None) -> bytes:
        """Read up to ``max_bytes``, blocking until data is available.

        Returns ``b""`` once the buffer is closed for writing and fully
        drained (end of stream).  Raises :class:`StreamTimeoutError` when no
        data arrives within ``timeout`` seconds.
        """
        if max_bytes <= 0:
            return b""
        with self._lock:
            while not self._data:
                if self._eof:
                    return b""
                if not self._not_empty.wait(timeout):
                    raise StreamTimeoutError(f"{self._name}: read timed out")
            chunk = bytes(self._data[:max_bytes])
            del self._data[:max_bytes]
            self._bytes_out += len(chunk)
            self._not_full.notify_all()
            if not self._data:
                self._empty.notify_all()
            return chunk

    def read_exactly(self, nbytes: int, timeout: Optional[float] = None) -> bytes:
        """Read exactly ``nbytes``; returns a short result only at EOF."""
        parts = []
        remaining = nbytes
        while remaining > 0:
            chunk = self.read(remaining, timeout=timeout)
            if not chunk:
                break
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    def peek(self, max_bytes: int = 65536) -> bytes:
        """Return buffered data without consuming it (never blocks)."""
        with self._lock:
            return bytes(self._data[:max_bytes])

    def clear(self) -> int:
        """Discard all buffered data, returning the number of bytes dropped."""
        with self._lock:
            dropped = len(self._data)
            del self._data[:]
            self._not_full.notify_all()
            self._empty.notify_all()
            return dropped

    # ----------------------------------------------------------------- drain

    def wait_until_empty(self, timeout: Optional[float] = None) -> bool:
        """Block until the buffer is empty (the pause protocol's drain step).

        Returns ``True`` if the buffer drained, ``False`` on timeout.
        """
        deadline = None if timeout is None else _monotonic() + timeout
        with self._lock:
            while self._data:
                if self._eof and self._broken:
                    return False
                remaining = None
                if deadline is not None:
                    remaining = deadline - _monotonic()
                    if remaining <= 0:
                        return False
                if not self._empty.wait(remaining):
                    return False
            return True

    def __len__(self) -> int:  # pragma: no cover - convenience
        return self.available()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamBuffer {self._name!r} size={self.available()} "
            f"capacity={self._capacity} eof={self._eof}>"
        )


def _monotonic() -> float:
    import time

    return time.monotonic()
