#!/usr/bin/env python3
"""Verify that relative links in the repo's markdown docs resolve.

Scans ``README.md`` and every ``docs/*.md`` file for markdown links and
checks that each **relative** target exists in the checkout (external
``http(s)``/``mailto`` links are skipped — CI must not depend on the
network). Fragment-only links and fragments on existing files are
accepted without anchor validation; a missing *file* is what rots
silently.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link). Run as::

    python tools/check_doc_links.py
"""

from __future__ import annotations

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown inline links: [text](target). Images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Fenced code blocks, where link-looking text is just text.
_FENCE_RE = re.compile(r"^(```|~~~)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files() -> "list[str]":
    files = [os.path.join(REPO_ROOT, "README.md")]
    files += sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))
    return [f for f in files if os.path.isfile(f)]


def links_in(path: str) -> "list[tuple[int, str]]":
    found = []
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if _FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK_RE.finditer(line):
                found.append((lineno, match.group(1)))
    return found


def check_file(path: str) -> "list[str]":
    errors = []
    base = os.path.dirname(path)
    for lineno, target in links_in(path):
        if target.startswith(SKIP_SCHEMES):
            continue
        if target.startswith("#"):
            continue  # same-file anchor
        file_part = target.split("#", 1)[0]
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            rel = os.path.relpath(path, REPO_ROOT)
            errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def main() -> int:
    files = doc_files()
    all_errors = []
    total_links = 0
    for path in files:
        total_links += len(links_in(path))
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error)
    checked = ", ".join(os.path.relpath(f, REPO_ROOT) for f in files)
    print(f"checked {total_links} links across {len(files)} files "
          f"({checked}): {len(all_errors)} broken")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
