"""Hung-worker recovery: RPC deadlines, retries, heartbeats, termination.

A *crashed* worker fires its process sentinel and the supervisor restarts
it (test_crash_recovery).  A *hung* worker is nastier: the process is
alive, the sentinel never fires, and before RPC deadlines existed one
wedged control loop blocked the parent forever.  These tests pin the
deadline plumbing end to end: a deadline on every call, retries with
backoff on the connection, heartbeat probes from the supervisor, and the
``worker-unresponsive`` declaration that routes a hang into the ordinary
restart/spill path.
"""

import socket
import threading
import time

import pytest

from repro.cluster import ProxyCluster, StreamSpec, default_rpc_timeout
from repro.cluster.rpc import (
    DEFAULT_RPC_TIMEOUT_S,
    RPC_TIMEOUT_ENV_VAR,
    RpcConnection,
    RpcError,
)
from repro.obs.events import (
    EVENT_WORKER_EXIT,
    EVENT_WORKER_RESTART,
    EVENT_WORKER_UNRESPONSIVE,
    get_event_log,
)
from repro.obs.metrics import default_registry


def _wait_for_restart(handle, old_pid, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if handle.pid != old_pid and handle.connection is not None:
            return True
        time.sleep(0.05)
    return False


def _retry_metric(op):
    counter = default_registry().counter(
        "repro_rpc_retries_total",
        "Cluster RPC attempts re-sent after a deadline timeout",
        label_names=("op",))
    return counter.labels(op=op).value


class TestRpcDeadlines:
    def test_env_default_timeout(self, monkeypatch):
        monkeypatch.delenv(RPC_TIMEOUT_ENV_VAR, raising=False)
        assert default_rpc_timeout() == DEFAULT_RPC_TIMEOUT_S
        monkeypatch.setenv(RPC_TIMEOUT_ENV_VAR, "7.5")
        assert default_rpc_timeout() == 7.5
        # 0 or negative disables the deadline (block forever).
        monkeypatch.setenv(RPC_TIMEOUT_ENV_VAR, "0")
        assert default_rpc_timeout() is None
        monkeypatch.setenv(RPC_TIMEOUT_ENV_VAR, "-1")
        assert default_rpc_timeout() is None

    def test_env_invalid_value_raises(self, monkeypatch):
        monkeypatch.setenv(RPC_TIMEOUT_ENV_VAR, "soonish")
        with pytest.raises(RpcError):
            default_rpc_timeout()

    def test_silent_peer_trips_the_deadline(self):
        ours, theirs = socket.socketpair()
        connection = RpcConnection(ours)
        try:
            started = time.monotonic()
            with pytest.raises(TimeoutError):
                connection.request("ping", timeout=0.3)
            assert time.monotonic() - started < 2.0
        finally:
            connection.close()
            theirs.close()

    def test_env_deadline_applies_when_call_names_none(self, monkeypatch):
        monkeypatch.setenv(RPC_TIMEOUT_ENV_VAR, "0.3")
        ours, theirs = socket.socketpair()
        connection = RpcConnection(ours)
        try:
            started = time.monotonic()
            with pytest.raises(TimeoutError):
                connection.request("ping")  # no explicit timeout: env rules
            assert time.monotonic() - started < 2.0
        finally:
            connection.close()
            theirs.close()

    def test_retries_resend_and_count(self):
        # The responder ignores the first attempt and answers the second:
        # the caller's retry must succeed and be counted in the metric.
        ours, theirs = socket.socketpair()
        connection = RpcConnection(ours)
        responder = RpcConnection(theirs)
        seen = []

        def serve():
            while len(seen) < 2:
                try:
                    request = responder.receive(timeout=10.0)
                except (RpcError, TimeoutError, OSError):
                    return
                seen.append(request["id"])
                if len(seen) >= 2:
                    responder.respond(request, {"echo": request["op"]})

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        before = _retry_metric("poke")
        try:
            result = connection.request("poke", timeout=0.3, retries=2,
                                        backoff_s=0.01, jitter_s=0.0)
            assert result == {"echo": "poke"}
            assert len(seen) == 2
            assert seen[0] != seen[1]  # each attempt gets a fresh id
            assert _retry_metric("poke") == before + 1
        finally:
            connection.close()
            responder.close()
            thread.join(timeout=5.0)

    def test_exhausted_retries_raise_timeout(self):
        ours, theirs = socket.socketpair()
        connection = RpcConnection(ours)
        before = _retry_metric("void")
        try:
            with pytest.raises(TimeoutError):
                connection.request("void", timeout=0.1, retries=2,
                                   backoff_s=0.01, jitter_s=0.0)
            assert _retry_metric("void") == before + 2
        finally:
            connection.close()
            theirs.close()

    def test_try_request_never_queues_behind_inflight_call(self):
        ours, theirs = socket.socketpair()
        connection = RpcConnection(ours)
        blocker = threading.Thread(
            target=lambda: pytest.raises(
                TimeoutError, connection.request, "slow", timeout=1.0),
            daemon=True)
        blocker.start()
        time.sleep(0.1)  # let the blocking request take the lock
        try:
            started = time.monotonic()
            assert connection.try_request("ping", timeout=5.0) is None
            assert time.monotonic() - started < 0.5
        finally:
            blocker.join(timeout=5.0)
            connection.close()
            theirs.close()


class TestHungWorkerRecovery:
    def test_deadline_declares_hung_worker_and_restarts_it(self):
        get_event_log().clear()
        with ProxyCluster(workers=2, name="hang-cluster") as cluster:
            handle = cluster.worker(0)
            old_pid = handle.pid
            # The worker's control loop goes to sleep for an hour; only
            # the caller's deadline can notice.
            with pytest.raises(TimeoutError):
                handle.request("hang", seconds=3600.0, timeout=1.0)

            assert _wait_for_restart(handle, old_pid), "worker never restarted"
            assert handle.restarts == 1
            assert not cluster.ring.is_down(0)
            assert handle.request("ping", timeout=10.0)["worker"] == 0

            log = get_event_log()
            cid = handle.correlation_id
            declared = [r for r in log.records(event=EVENT_WORKER_UNRESPONSIVE)
                        if r["cid"] == cid]
            assert len(declared) == 1
            assert declared[0]["worker"] == 0
            assert declared[0]["pid"] == old_pid
            assert declared[0]["op"] == "hang"
            exits = [r for r in log.records(event=EVENT_WORKER_EXIT)
                     if r["cid"] == cid]
            assert len(exits) == 1
            assert exits[0]["exitcode"] != 0  # SIGTERM, not a clean exit
            restarts = [r for r in log.records(event=EVENT_WORKER_RESTART)
                        if r["cid"] == cid]
            assert len(restarts) == 1
            cluster.shutdown(timeout=10.0, drain=False)

    def test_heartbeat_catches_a_silent_hang(self):
        get_event_log().clear()
        with ProxyCluster(workers=1, name="hb-cluster", heartbeat_s=0.3,
                          heartbeat_timeout_s=1.0) as cluster:
            handle = cluster.worker(0)
            old_pid = handle.pid
            # Wedge the worker without letting the request's own deadline
            # report it: the heartbeat probe must find the hang on its own.
            hook, handle.on_timeout = handle.on_timeout, None
            try:
                with pytest.raises(TimeoutError):
                    handle.request("hang", seconds=3600.0, timeout=0.5)
            finally:
                handle.on_timeout = hook

            assert _wait_for_restart(handle, old_pid), "worker never restarted"
            declared = get_event_log().records(
                event=EVENT_WORKER_UNRESPONSIVE)
            assert len(declared) == 1
            assert declared[0]["op"] == "ping"
            cluster.shutdown(timeout=10.0, drain=False)

    def test_heartbeat_timestamps_feed_health_checks(self):
        with ProxyCluster(workers=1, name="hb2-cluster",
                          heartbeat_s=0.2) as cluster:
            handle = cluster.worker(0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and handle.last_heartbeat is None:
                time.sleep(0.05)
            assert handle.last_heartbeat is not None
            health = cluster._health_check()
            assert health["healthy"]
            assert health["workers"]["0"]["up"]
            assert "heartbeat_age_s" in health["workers"]["0"]
            cluster.shutdown(timeout=10.0, drain=False)

    def test_hung_worker_spills_streams_to_ring_successor(self):
        # Without restarts, a hang must behave exactly like a crash:
        # the shard goes down and new placements spill to the successor.
        with ProxyCluster(workers=2, name="hang-spill-cluster",
                          restart_workers=False) as cluster:
            name = next(f"spill-{i}" for i in range(100)
                        if cluster.worker_for(f"spill-{i}") == 0)
            handle = cluster.worker(0)
            with pytest.raises(TimeoutError):
                handle.request("hang", seconds=3600.0, timeout=1.0)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and not cluster.ring.is_down(0):
                time.sleep(0.05)
            assert cluster.ring.is_down(0)
            assert cluster.worker_for(name) == 1
            spec = StreamSpec.from_pattern(name, seed=3, packets=10,
                                           packet_size=64)
            assert cluster.open_stream(spec) == 1
            assert cluster.wait_stream(name, timeout=15.0)
            cluster.shutdown(timeout=10.0, drain=False)


class TestPolicyOverTheWire:
    def test_stream_spec_carries_error_policy(self):
        from repro.core import ErrorPolicy

        policy = ErrorPolicy(mode="restart-filter", max_restarts=2)
        spec = StreamSpec.from_pattern("s", seed=1, packets=5,
                                       packet_size=32)
        spec = spec.with_policy(policy.to_dict())
        rebuilt = StreamSpec.from_dict(spec.to_dict())
        assert rebuilt.policy == policy.to_dict()
        assert ErrorPolicy.resolve(rebuilt.policy) == policy

    def test_supervised_stream_recovers_inside_a_worker(self):
        # A crash-at-chunk filter rides the spec to a worker under
        # restart-filter policy: the stream must survive and complete.
        from repro.core import ErrorPolicy
        from repro.core.registry import FilterSpec

        with ProxyCluster(workers=1, name="policy-cluster") as cluster:
            spec = StreamSpec.from_pattern(
                "survivor", seed=11, packets=40, packet_size=128,
                pacing_s=0.01)
            spec = spec.with_filter(FilterSpec(
                type_name="fault-injection",
                args={"crash_at_chunk": 5},
                name="boom"))
            spec = spec.with_policy(
                ErrorPolicy(mode="restart-filter", backoff_s=0.01).to_dict())
            cluster.open_stream(spec)
            assert cluster.wait_stream("survivor", timeout=30.0)
            families = {f.name: f for f in cluster.collect_metric_families()}
            restarts = families.get("repro_stream_filter_restarts_total")
            assert restarts is not None
            assert sum(value for _, value in restarts.samples) >= 1
            cluster.shutdown(timeout=10.0, drain=False)
