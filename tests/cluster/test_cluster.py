"""ProxyCluster: round trips, equivalence, fleet splice, fleet observability."""

import pytest

from repro.cluster import ProxyCluster, StreamSpec, digest, pattern_packets
from repro.core.registry import FilterSpec
from repro.core.stats import ChainSnapshot
from repro.obs.exporter import render
from repro.obs.metrics import default_registry


@pytest.fixture(scope="module")
def cluster():
    with ProxyCluster(workers=2, name="test-cluster") as c:
        yield c


def _worker_labels(families):
    return {value
            for family in families
            for pairs, _ in family.samples
            for key, value in pairs
            if key == "worker"}


class TestRoundTrip:
    def test_streams_shard_across_both_workers(self, cluster):
        specs = [StreamSpec.from_pattern(f"rt-{i}", seed=i, packets=20,
                                         packet_size=256)
                 for i in range(12)]
        placement = cluster.open_streams(specs)
        assert set(placement.values()) == {0, 1}
        cluster.drain(timeout=20.0)
        for spec in specs:
            result = cluster.stream_result(spec.name)
            assert result["digest"] == digest(
                pattern_packets(spec.source["seed"], 20, 256))
            assert cluster.stream_worker(spec.name) == placement[spec.name]

    def test_placement_follows_the_shard_ring(self, cluster):
        for name in ("ring-check-a", "ring-check-b", "ring-check-c"):
            assert cluster.worker_for(name) == cluster.ring.worker_for(name)

    def test_explicit_packet_list_round_trips(self, cluster):
        items = [b"alpha", b"beta", b"\x00" * 100, b"gamma"]
        spec = StreamSpec.from_bytes("explicit-bytes", items)
        cluster.open_stream(spec)
        assert cluster.wait_stream("explicit-bytes", timeout=15.0)
        result = cluster.stream_result("explicit-bytes", include_data=True)
        import base64

        assert [base64.b64decode(i) for i in result["data"]] == items


class TestEquivalence:
    def test_cluster_bytes_identical_to_single_process_proxy(self, cluster):
        """The acceptance pin: same spec, cluster vs in-process proxy.

        The filtered stream (FEC-encoded with a pinned start group id,
        then zlib-compressed) must deliver byte-identical output whether
        it runs in a cluster worker or a plain single-process Proxy.
        """
        spec = StreamSpec.from_pattern(
            "equiv", seed=42, packets=60, packet_size=512,
            filters=[
                FilterSpec("fec-encoder",
                           {"k": 4, "n": 6, "start_group_id": 0}).to_dict(),
                FilterSpec("zlib-compress", {"level": 6}).to_dict(),
            ])
        reference = spec.expected_output()
        assert reference, "single-process reference produced no output"
        cluster.open_stream(spec)
        assert cluster.wait_stream("equiv", timeout=20.0)
        result = cluster.stream_result("equiv")
        assert result["digest"] == digest(reference)
        assert result["bytes"] == sum(map(len, reference))
        assert result["items"] == len(reference)


class TestFleetSplice:
    def test_splice_insert_and_remove_hit_every_stream(self, cluster):
        # Paced streams stay live long enough to be spliced mid-flight.
        specs = [StreamSpec.from_pattern(f"splice-{i}", seed=i, packets=150,
                                         packet_size=128, pacing_s=0.01)
                 for i in range(4)]
        cluster.open_streams(specs)
        inserted = cluster.splice_insert(
            FilterSpec("zlib-compress", {"level": 1}, name="fleet-zlib"))
        spliced = {name for positions in inserted.values()
                   for name in positions}
        assert {s.name for s in specs} <= spliced
        # Every worker's snapshot shows the filter composed in.
        for streams in cluster.snapshots().values():
            for name, payload in streams.items():
                if name.startswith("splice-"):
                    assert "fleet-zlib" in payload["filter_names"]
        removed = cluster.splice_remove("fleet-zlib")
        assert {name for r in removed.values() for name in r} >= {
            s.name for s in specs}
        cluster.drain(timeout=20.0)


class TestFleetObservability:
    def test_metrics_carry_worker_label_for_both_ids(self, cluster):
        families = cluster.collect_metric_families()
        assert _worker_labels(families) == {"0", "1"}
        fleet = next(f for f in families if f.name == "repro_cluster_workers")
        assert fleet.samples[0][1] == 2.0

    def test_parent_metrics_endpoint_merges_worker_scrapes(self, cluster):
        # The default registry picks clusters up via register_cluster, so
        # the parent's /metrics text includes per-worker samples.
        text = render(default_registry())
        assert 'worker="0"' in text
        assert 'worker="1"' in text
        assert "repro_cluster_workers" in text

    def test_snapshot_sum_totals_the_fleet(self, cluster):
        specs = [StreamSpec.from_pattern(f"sum-{i}", seed=i, packets=25,
                                         packet_size=200)
                 for i in range(4)]
        cluster.open_streams(specs)
        cluster.drain(timeout=20.0)
        fleet = cluster.snapshot_sum()
        per_stream = [ChainSnapshot.from_dict(payload)
                      for streams in cluster.snapshots().values()
                      for payload in streams.values()]
        assert fleet.source_stats["bytes_out"] == sum(
            s.source_stats["bytes_out"] for s in per_stream)
        assert fleet.sink_stats["packets_in"] == sum(
            s.sink_stats["packets_in"] for s in per_stream)


class TestChainSnapshotSum:
    def _snap(self, name, types, bytes_out, running=False):
        return ChainSnapshot(
            stream_name=name, filter_names=[f"f-{t}" for t in types],
            filter_types=list(types),
            filter_stats=[{"bytes_in": 10} for _ in types],
            source_stats={"bytes_out": bytes_out},
            sink_stats={"bytes_in": bytes_out}, running=running)

    def test_congruent_chains_sum_per_filter(self):
        total = ChainSnapshot.sum(
            [self._snap("a", ["zlib-compress"], 100),
             self._snap("b", ["zlib-compress"], 50, running=True)],
            stream_name="fleet")
        assert total.stream_name == "fleet"
        assert total.source_stats["bytes_out"] == 150
        assert total.filter_stats == [{"bytes_in": 20}]
        assert total.running is True

    def test_heterogeneous_chains_drop_filter_breakdown(self):
        total = ChainSnapshot.sum(
            [self._snap("a", ["zlib-compress"], 100),
             self._snap("b", ["fec-encoder"], 50)])
        assert total.filter_types == []
        assert total.filter_stats == []
        assert total.source_stats["bytes_out"] == 150
