"""ShardRing: stable placement, balance, and down/up reassignment."""

import pytest

from repro.cluster import ShardRing


class TestPlacement:
    def test_placement_is_stable(self):
        ring = ShardRing([0, 1, 2, 3])
        names = [f"stream-{i}" for i in range(100)]
        first = [ring.worker_for(n) for n in names]
        second = [ring.worker_for(n) for n in names]
        assert first == second

    def test_placement_is_process_independent(self):
        # Two independently built rings agree — placement derives from
        # SHA-1, never from the salted builtin hash().
        a = ShardRing([0, 1, 2])
        b = ShardRing([0, 1, 2])
        names = [f"s-{i}" for i in range(200)]
        assert [a.worker_for(n) for n in names] == [b.worker_for(n) for n in names]

    def test_every_worker_gets_a_share(self):
        ring = ShardRing([0, 1, 2, 3])
        census = ring.census(f"stream-{i}" for i in range(400))
        assert set(census) == {0, 1, 2, 3}
        assert all(census.values()), census

    def test_single_worker_takes_everything(self):
        ring = ShardRing([0])
        assert {ring.worker_for(f"s-{i}") for i in range(50)} == {0}

    def test_empty_ring_rejected(self):
        ring = ShardRing([])
        with pytest.raises(RuntimeError):
            ring.worker_for("anything")

    def test_duplicate_worker_rejected(self):
        ring = ShardRing([0, 1])
        with pytest.raises(ValueError):
            ring.add_worker(1)


class TestDownUp:
    def test_down_worker_spills_only_its_streams(self):
        ring = ShardRing([0, 1, 2, 3])
        names = [f"stream-{i}" for i in range(300)]
        before = {n: ring.worker_for(n) for n in names}
        ring.mark_down(2)
        after = {n: ring.worker_for(n) for n in names}
        for name in names:
            if before[name] != 2:
                # Everyone else's placement is untouched — the consistent
                # hashing property a modulo shard does not have.
                assert after[name] == before[name]
            else:
                assert after[name] != 2

    def test_mark_up_restores_original_placement(self):
        ring = ShardRing([0, 1, 2])
        names = [f"s-{i}" for i in range(150)]
        before = {n: ring.worker_for(n) for n in names}
        ring.mark_down(1)
        ring.mark_up(1)
        assert {n: ring.worker_for(n) for n in names} == before

    def test_all_down_raises(self):
        ring = ShardRing([0, 1])
        ring.mark_down(0)
        ring.mark_down(1)
        with pytest.raises(RuntimeError):
            ring.worker_for("s")

    def test_live_workers_tracks_state(self):
        ring = ShardRing([0, 1, 2])
        assert ring.live_workers == [0, 1, 2]
        ring.mark_down(1)
        assert ring.live_workers == [0, 2]
        assert ring.is_down(1)
        ring.mark_up(1)
        assert ring.live_workers == [0, 1, 2]

    def test_unknown_worker_rejected(self):
        ring = ShardRing([0])
        with pytest.raises(ValueError):
            ring.mark_down(9)
