"""Worker crash recovery: restart, shard reassignment, event-log evidence."""

import time

import pytest

from repro.cluster import ProxyCluster, StreamSpec
from repro.cluster.rpc import RpcConnectionClosed, RpcError
from repro.obs.events import (
    EVENT_WORKER_EXIT,
    EVENT_WORKER_RESTART,
    EVENT_WORKER_START,
    get_event_log,
)


def _wait_for_restart(handle, old_pid, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if handle.pid != old_pid and handle.connection is not None:
            return True
        time.sleep(0.05)
    return False


class TestCrashRecovery:
    def test_crashed_worker_restarts_and_replays_its_stream(self):
        with ProxyCluster(workers=2, name="crash-cluster") as cluster:
            # A paced stream long enough to still be mid-flight at the kill.
            spec = StreamSpec.from_pattern("victim", seed=7, packets=2000,
                                           packet_size=256, pacing_s=0.005)
            worker_id = cluster.open_stream(spec)
            handle = cluster.worker(worker_id)
            old_pid = handle.pid
            with pytest.raises((RpcConnectionClosed, RpcError, TimeoutError)):
                handle.request("crash", timeout=5.0)

            assert _wait_for_restart(handle, old_pid), "worker never restarted"
            assert handle.pid != old_pid
            assert handle.restarts == 1
            # The shard is live again and the stream was replayed from its
            # spec onto the fresh process (at-least-once semantics).
            assert not cluster.ring.is_down(worker_id)
            pong = handle.request("ping", timeout=10.0)
            assert "victim" in pong["streams"]

            # Event-log evidence: worker-exit and worker-restart for this
            # incident share one correlation id (the slot's), and that cid
            # traces back to the slot's worker-start.
            log = get_event_log()
            cid = handle.correlation_id
            exits = [r for r in log.records(event=EVENT_WORKER_EXIT)
                     if r["cid"] == cid]
            restarts = [r for r in log.records(event=EVENT_WORKER_RESTART)
                        if r["cid"] == cid]
            starts = [r for r in log.records(event=EVENT_WORKER_START)
                      if r["cid"] == cid]
            assert len(exits) == 1
            assert len(restarts) == 1
            assert len(starts) == 2  # original spawn + restart spawn
            assert exits[0]["worker"] == worker_id
            assert exits[0]["pid"] == old_pid
            assert "victim" in exits[0]["streams"]
            assert restarts[0]["worker"] == worker_id
            assert restarts[0]["pid"] == handle.pid
            assert "victim" in restarts[0]["replayed_streams"]
            cluster.shutdown(timeout=10.0, drain=False)

    def test_interim_reassignment_spills_to_live_worker(self):
        with ProxyCluster(workers=2, name="spill-cluster",
                          restart_workers=False) as cluster:
            # Find a stream id owned by worker 0, then kill worker 0.
            name = next(f"spill-{i}" for i in range(100)
                        if cluster.worker_for(f"spill-{i}") == 0)
            handle = cluster.worker(0)
            with pytest.raises((RpcConnectionClosed, RpcError, TimeoutError)):
                handle.request("crash", timeout=5.0)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and not cluster.ring.is_down(0):
                time.sleep(0.05)
            assert cluster.ring.is_down(0)
            # With the shard down, placement spills to the ring successor.
            assert cluster.worker_for(name) == 1
            spec = StreamSpec.from_pattern(name, seed=3, packets=10,
                                           packet_size=64)
            assert cluster.open_stream(spec) == 1
            assert cluster.wait_stream(name, timeout=15.0)
            cluster.shutdown(timeout=10.0, drain=False)
