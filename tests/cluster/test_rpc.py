"""Control-plane RPC: frame layout, request/response, failure modes."""

import socket
import struct
import threading

import pytest

from repro.cluster import (
    MAX_RPC_FRAME,
    RPC_MAGIC,
    RpcConnection,
    RpcConnectionClosed,
    RpcError,
    decode_header,
    encode_message,
)
from repro.streams import FRAME_MAGIC


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    left, right = RpcConnection(a), RpcConnection(b)
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_frame_layout(self):
        frame = encode_message({"op": "ping"})
        magic, length = struct.unpack(">BI", frame[:5])
        assert magic == RPC_MAGIC
        assert length == len(frame) - 5

    def test_rpc_magic_differs_from_stream_framing(self):
        # A control frame cross-plugged into a data socket (or vice versa)
        # must fail the magic check, not half-parse.
        assert RPC_MAGIC != FRAME_MAGIC

    def test_decode_round_trip(self):
        frame = encode_message({"id": 1, "op": "x"})
        assert decode_header(frame[:5]) == len(frame) - 5

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_message({"op": "x"}))
        frame[0] = FRAME_MAGIC
        with pytest.raises(RpcError):
            decode_header(bytes(frame[:5]))

    def test_short_header_rejected(self):
        with pytest.raises(RpcError):
            decode_header(b"\x9c\x00")

    def test_oversized_length_rejected(self):
        header = struct.pack(">BI", RPC_MAGIC, MAX_RPC_FRAME + 1)
        with pytest.raises(RpcError):
            decode_header(header)


class TestMessaging:
    def test_send_receive_round_trip(self, pair):
        left, right = pair
        left.send({"op": "hello", "worker": 3})
        message = right.receive(timeout=5.0)
        assert message == {"op": "hello", "worker": 3}

    def test_request_response(self, pair):
        left, right = pair

        def server():
            request = right.receive(timeout=5.0)
            right.respond(request, {"echo": request["op"]})

        thread = threading.Thread(target=server)
        thread.start()
        result = left.request("ping", timeout=5.0)
        thread.join()
        assert result == {"echo": "ping"}

    def test_error_response_raises_with_peer_text(self, pair):
        left, right = pair

        def server():
            request = right.receive(timeout=5.0)
            right.respond_error(request, "no such stream")

        thread = threading.Thread(target=server)
        thread.start()
        with pytest.raises(RpcError, match="no such stream"):
            left.request("open-stream", timeout=5.0)
        thread.join()

    def test_non_object_body_rejected(self, pair):
        left, right = pair
        body = b'["not", "an", "object"]'
        left._socket.sendall(struct.pack(">BI", RPC_MAGIC, len(body)) + body)
        with pytest.raises(RpcError, match="JSON object"):
            right.receive(timeout=5.0)

    def test_peer_close_raises_connection_closed(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(RpcConnectionClosed):
            right.receive(timeout=5.0)

    def test_receive_timeout(self, pair):
        left, right = pair
        with pytest.raises(TimeoutError):
            right.receive(timeout=0.05)

    def test_stale_response_skipped(self, pair):
        # A response with a wrong id (from an earlier timed-out request)
        # must be dropped, not returned for the current request.
        left, right = pair

        def server():
            request = right.receive(timeout=5.0)
            right.send({"id": -99, "ok": True, "result": "stale"})
            right.respond(request, "fresh")

        thread = threading.Thread(target=server)
        thread.start()
        assert left.request("ping", timeout=5.0) == "fresh"
        thread.join()
