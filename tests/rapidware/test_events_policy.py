"""Unit tests for the RAPIDware event bus, policies and raplet bases."""

import pytest

from repro.rapidware import (
    AdaptationLimits,
    Event,
    EventBus,
    EVENT_LOSS_RATE,
    FecPolicy,
    ObserverRaplet,
    ResponderRaplet,
    UserPreferences,
)


class TestEventBus:
    def test_subscribe_and_publish(self):
        bus = EventBus()
        seen = []
        bus.subscribe(EVENT_LOSS_RATE, seen.append)
        event = Event(event_type=EVENT_LOSS_RATE, source="test",
                      data={"loss_rate": 0.1})
        assert bus.publish(event) == 1
        assert seen == [event]
        assert bus.events_published == 1

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe(None, seen.append)
        bus.publish(Event(event_type="anything", source="x"))
        bus.publish(Event(event_type="other", source="y"))
        assert len(seen) == 2

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe("t", seen.append)
        bus.unsubscribe("t", seen.append)
        bus.publish(Event(event_type="t", source="x"))
        assert seen == []

    def test_handler_errors_isolated(self):
        bus = EventBus()
        seen = []

        def bad(_event):
            raise RuntimeError("handler bug")

        bus.subscribe("t", bad)
        bus.subscribe("t", seen.append)
        assert bus.publish(Event(event_type="t", source="x")) == 1
        assert bus.handler_errors == 1
        assert len(seen) == 1

    def test_history_and_filtering(self):
        bus = EventBus()
        bus.publish(Event(event_type="a", source="s"))
        bus.publish(Event(event_type="b", source="s"))
        bus.publish(Event(event_type="a", source="s"))
        assert len(bus.events_of_type("a")) == 2

    def test_event_value_accessor(self):
        event = Event(event_type="t", source="s", data={"x": 5})
        assert event.value("x") == 5
        assert event.value("missing", 9) == 9


class TestFecPolicy:
    def test_hysteresis_band(self):
        policy = FecPolicy(insert_threshold=0.02, remove_threshold=0.005)
        assert not policy.should_insert(0.01, fec_active=False)
        assert policy.should_insert(0.03, fec_active=False)
        # Once active, FEC stays on inside the band.
        assert policy.should_insert(0.01, fec_active=True)
        assert not policy.should_remove(0.01, fec_active=True)
        assert policy.should_remove(0.001, fec_active=True)
        assert not policy.should_remove(0.001, fec_active=False)

    def test_ladder_selection(self):
        policy = FecPolicy()
        assert policy.code_for(0.01) == (4, 5)
        assert policy.code_for(0.08) == (4, 6)
        assert policy.code_for(0.30) == (4, 8)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            FecPolicy(insert_threshold=0.001, remove_threshold=0.01)
        with pytest.raises(ValueError):
            FecPolicy(ladder=())
        with pytest.raises(ValueError):
            FecPolicy(ladder=((0.0, 4, 6), (0.0, 4, 8)))
        with pytest.raises(ValueError):
            FecPolicy(ladder=((0.0, 4, 2),))


class TestAdaptationLimits:
    def test_min_interval_enforced(self):
        limits = AdaptationLimits(min_interval_s=5.0)
        assert limits.permits(0.0)
        limits.record_action(0.0)
        assert not limits.permits(3.0)
        assert limits.permits(5.0)

    def test_max_actions_enforced(self):
        limits = AdaptationLimits(min_interval_s=0.0, max_actions=2)
        limits.record_action(0.0)
        limits.record_action(1.0)
        assert not limits.permits(2.0)
        assert limits.actions_taken == 2


class TestUserPreferences:
    def test_permitted_codes_respect_overhead_cap(self):
        prefs = UserPreferences(max_redundancy_overhead=0.5)
        codes = prefs.permitted_codes(FecPolicy())
        assert (4, 6) in codes
        assert (4, 8) not in codes


class TestRapletBases:
    def test_observer_publishes_measurements(self):
        bus = EventBus()

        class CountingObserver(ObserverRaplet):
            def measure(self, now_s):
                return [Event(event_type="tick", source=self.name,
                              time_s=now_s)]

        observer = CountingObserver("counter", bus)
        observer.observe(1.0)
        observer.observe(2.0)
        assert observer.observations == 2
        assert observer.events_emitted == 2
        assert len(bus.events_of_type("tick")) == 2

    def test_disabled_observer_is_silent(self):
        bus = EventBus()

        class Noisy(ObserverRaplet):
            def measure(self, now_s):
                return [Event(event_type="tick", source=self.name)]

        observer = Noisy("noisy", bus)
        observer.disable()
        assert observer.observe(0.0) == []
        assert bus.events_published == 0

    def test_responder_subscription_and_counting(self):
        bus = EventBus()

        class EchoResponder(ResponderRaplet):
            subscriptions = ("tick",)

            def respond(self, event):
                return event.value("act", False)

        responder = EchoResponder("echo", bus)
        bus.publish(Event(event_type="tick", source="t", data={"act": True}))
        bus.publish(Event(event_type="tick", source="t", data={"act": False}))
        bus.publish(Event(event_type="other", source="t"))
        assert responder.events_seen == 2
        assert responder.actions_taken == 1
        info = responder.describe()
        assert info["kind"] == "responder"
        assert info["actions_taken"] == 1

    def test_disabled_responder_ignores_events(self):
        bus = EventBus()

        class AlwaysActs(ResponderRaplet):
            subscriptions = ("tick",)

            def respond(self, event):
                return True

        responder = AlwaysActs("acts", bus)
        responder.disable()
        bus.publish(Event(event_type="tick", source="t"))
        assert responder.actions_taken == 0

    def test_responder_unregister(self):
        bus = EventBus()

        class AlwaysActs(ResponderRaplet):
            subscriptions = ("tick",)

            def respond(self, event):
                return True

        responder = AlwaysActs("acts", bus)
        responder.unregister()
        bus.publish(Event(event_type="tick", source="t"))
        assert responder.events_seen == 0
