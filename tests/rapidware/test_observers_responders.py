"""Unit tests for the concrete observers, responders and the adaptive session."""

import pytest

from repro.core import CollectorSink, IterableSource, null_proxy
from repro.net import (
    AccessPoint,
    FixedPatternLoss,
    LinearWalk,
    NoLoss,
)
from repro.rapidware import (
    AdaptationLimits,
    BandwidthObserver,
    EVENT_DEVICE_JOINED,
    EVENT_FILTER_INSERTED,
    EVENT_HANDOFF,
    EVENT_LOSS_RATE,
    Event,
    EventBus,
    FecPolicy,
    FecResponder,
    LossRateObserver,
    MembershipObserver,
    MigrationObserver,
    SEVERITY_CRITICAL,
    SEVERITY_DEGRADED,
    SEVERITY_INFO,
    TranscoderResponder,
    run_adaptive_walk_experiment,
)


def lossy_receiver(loss_model):
    ap = AccessPoint()
    receiver = ap.add_receiver("r", loss_model=loss_model)
    return ap, receiver


class TestLossRateObserver:
    def test_no_event_until_enough_samples(self):
        _ap, receiver = lossy_receiver(NoLoss())
        bus = EventBus()
        observer = LossRateObserver(receiver, bus, min_sample_packets=50)
        assert observer.observe(0.0) == []

    def test_clean_link_reports_info(self):
        ap, receiver = lossy_receiver(NoLoss())
        bus = EventBus()
        observer = LossRateObserver(receiver, bus, min_sample_packets=10)
        for _ in range(20):
            ap.multicast(b"pkt")
        events = observer.observe(1.0)
        assert len(events) == 1
        assert events[0].severity == SEVERITY_INFO
        assert events[0].value("loss_rate") == 0.0

    def test_lossy_link_reports_degraded_or_critical(self):
        ap, receiver = lossy_receiver(FixedPatternLoss([True, False]))
        bus = EventBus()
        observer = LossRateObserver(receiver, bus, min_sample_packets=10,
                                    smoothing=1.0)
        for _ in range(40):
            ap.multicast(b"pkt")
        events = observer.observe(1.0)
        assert events[0].severity == SEVERITY_CRITICAL
        assert events[0].value("loss_rate") == pytest.approx(0.5)

    def test_smoothing_decays_gradually(self):
        ap, receiver = lossy_receiver(FixedPatternLoss([True], repeat=False))
        bus = EventBus()
        observer = LossRateObserver(receiver, bus, min_sample_packets=5,
                                    smoothing=0.5)
        for _ in range(10):
            ap.multicast(b"pkt")
        observer.observe(0.0)
        first_estimate = observer.last_loss_rate
        assert first_estimate > 0.0
        for _ in range(10):
            ap.multicast(b"pkt")  # all delivered now
        observer.observe(1.0)
        assert 0.0 < observer.last_loss_rate < first_estimate

    def test_invalid_thresholds_rejected(self):
        _ap, receiver = lossy_receiver(NoLoss())
        with pytest.raises(ValueError):
            LossRateObserver(receiver, EventBus(), degraded_threshold=0.5,
                             critical_threshold=0.1)
        with pytest.raises(ValueError):
            LossRateObserver(receiver, EventBus(), smoothing=0.0)


class TestBandwidthObserver:
    def test_reports_utilisation(self):
        ap = AccessPoint(bandwidth_bps=2_000_000, per_packet_overhead_s=0.0)
        ap.add_receiver("r", loss_model=NoLoss())
        bus = EventBus()
        observer = BandwidthObserver(ap, bus)
        assert observer.observe(0.0) == []  # first call establishes a baseline
        # 2 Mbps for 0.5 s = 125000 bytes fills half of a 1-second interval.
        for _ in range(500):
            ap.multicast(b"\x00" * 250)
        events = observer.observe(1.0)
        assert events[0].value("utilisation") == pytest.approx(0.5, abs=0.05)
        assert events[0].severity == SEVERITY_INFO

    def test_critical_when_saturated(self):
        ap = AccessPoint(bandwidth_bps=1_000_000, per_packet_overhead_s=0.0)
        ap.add_receiver("r", loss_model=NoLoss())
        bus = EventBus()
        observer = BandwidthObserver(ap, bus)
        observer.observe(0.0)
        for _ in range(1000):
            ap.multicast(b"\x00" * 125)
        events = observer.observe(1.0)
        assert events[0].severity == SEVERITY_CRITICAL


class TestMigrationObserver:
    def test_handoff_event_on_zone_crossing(self):
        ap = AccessPoint()
        receiver = ap.add_receiver("mobile", distance_m=5.0)
        bus = EventBus()
        observer = MigrationObserver(receiver, bus,
                                     boundary_distances_m=(15.0, 30.0))
        assert observer.observe(0.0) == []  # establishes the initial zone
        receiver.move_to(20.0)
        events = observer.observe(1.0)
        assert len(events) == 1
        assert events[0].event_type == EVENT_HANDOFF
        assert events[0].severity == SEVERITY_DEGRADED
        receiver.move_to(22.0)
        assert observer.observe(2.0) == []  # same zone: no event
        receiver.move_to(5.0)
        back = observer.observe(3.0)
        assert back[0].severity == SEVERITY_INFO

    def test_non_distance_receiver_ignored(self):
        ap = AccessPoint()
        receiver = ap.add_receiver("fixed", loss_model=NoLoss())
        observer = MigrationObserver(receiver, EventBus())
        assert observer.observe(0.0) == []


class TestMembershipObserver:
    def test_join_and_leave_events(self):
        bus = EventBus()
        observer = MembershipObserver(bus)
        observer.join("palmtop", {"limited": True}, now_s=1.0)
        observer.join("workstation", {}, now_s=2.0)
        events = observer.observe(2.0)
        assert [e.event_type for e in events] == [EVENT_DEVICE_JOINED] * 2
        assert observer.members() == ["palmtop", "workstation"]
        observer.leave("palmtop", now_s=3.0)
        events = observer.observe(3.0)
        assert events[0].value("device") == "palmtop"
        assert observer.members() == ["workstation"]


def make_live_stream(chunk_count=20000, pacing_s=0.001):
    source = IterableSource(
        [f"chunk-{i};".encode() for i in range(chunk_count)], pacing_s=pacing_s)
    sink = CollectorSink()
    return null_proxy(source, sink), sink


class TestFecResponder:
    def test_inserts_on_high_loss_and_removes_on_recovery(self):
        control, _sink = make_live_stream()
        bus = EventBus()
        responder = FecResponder(control, bus, policy=FecPolicy(),
                                 limits=AdaptationLimits(min_interval_s=0.0))
        bus.publish(Event(event_type=EVENT_LOSS_RATE, source="obs",
                          data={"loss_rate": 0.05}, time_s=1.0))
        assert responder.fec_active
        assert responder.current_code == (4, 6)
        assert control.filter_count() == 1
        bus.publish(Event(event_type=EVENT_LOSS_RATE, source="obs",
                          data={"loss_rate": 0.0}, time_s=2.0))
        assert not responder.fec_active
        assert control.filter_count() == 0
        assert len(bus.events_of_type(EVENT_FILTER_INSERTED)) == 1
        control.shutdown()

    def test_upgrades_code_as_loss_worsens(self):
        control, _sink = make_live_stream()
        bus = EventBus()
        responder = FecResponder(control, bus,
                                 limits=AdaptationLimits(min_interval_s=0.0))
        bus.publish(Event(event_type=EVENT_LOSS_RATE, source="obs",
                          data={"loss_rate": 0.03}, time_s=1.0))
        assert responder.current_code == (4, 5)
        bus.publish(Event(event_type=EVENT_LOSS_RATE, source="obs",
                          data={"loss_rate": 0.2}, time_s=2.0))
        assert responder.current_code == (4, 8)
        assert responder.upgrades == 1
        control.shutdown()

    def test_rate_limited(self):
        control, _sink = make_live_stream()
        bus = EventBus()
        responder = FecResponder(control, bus,
                                 limits=AdaptationLimits(min_interval_s=10.0))
        bus.publish(Event(event_type=EVENT_LOSS_RATE, source="obs",
                          data={"loss_rate": 0.05}, time_s=0.0))
        bus.publish(Event(event_type=EVENT_LOSS_RATE, source="obs",
                          data={"loss_rate": 0.0}, time_s=1.0))
        # Removal suppressed: only 1 second has elapsed since the insertion.
        assert responder.fec_active
        control.shutdown()

    def test_handoff_event_triggers_proactive_fec(self):
        control, _sink = make_live_stream()
        bus = EventBus()
        responder = FecResponder(control, bus,
                                 limits=AdaptationLimits(min_interval_s=0.0))
        bus.publish(Event(event_type=EVENT_HANDOFF, source="obs",
                          data={"distance_m": 40.0, "receiver": "mobile"},
                          time_s=1.0))
        assert responder.fec_active
        control.shutdown()

    def test_preferences_can_forbid_fec(self):
        from repro.rapidware import UserPreferences

        control, _sink = make_live_stream(chunk_count=100)
        bus = EventBus()
        responder = FecResponder(control, bus,
                                 preferences=UserPreferences(allow_fec=False))
        bus.publish(Event(event_type=EVENT_LOSS_RATE, source="obs",
                          data={"loss_rate": 0.5}, time_s=1.0))
        assert not responder.fec_active
        control.shutdown()


class TestTranscoderResponder:
    def test_limited_device_triggers_transcoding(self):
        control, _sink = make_live_stream()
        bus = EventBus()
        responder = TranscoderResponder(control, bus)
        bus.publish(Event(event_type=EVENT_DEVICE_JOINED, source="m",
                          data={"device": "palmtop",
                                "descriptor": {"limited": True,
                                               "max_audio_channels": 1}},
                          time_s=0.0))
        assert responder.transcoding_active
        assert control.filter_count() >= 1
        bus.publish(Event(event_type="device-left", source="m",
                          data={"device": "palmtop"}, time_s=1.0))
        assert not responder.transcoding_active
        assert control.filter_count() == 0
        control.shutdown()

    def test_capable_device_ignored(self):
        control, _sink = make_live_stream(chunk_count=100)
        bus = EventBus()
        responder = TranscoderResponder(control, bus)
        bus.publish(Event(event_type=EVENT_DEVICE_JOINED, source="m",
                          data={"device": "workstation", "descriptor": {}},
                          time_s=0.0))
        assert not responder.transcoding_active
        control.shutdown()


class TestAdaptiveWalkExperiment:
    def test_fec_engages_as_user_walks_away(self):
        result = run_adaptive_walk_experiment(
            walk=LinearWalk(start_distance_m=5.0, end_distance_m=40.0,
                            duration_s=8.0), wlan_seed=21)
        assert result.report is not None
        activation = result.fec_activation_time()
        assert activation is not None
        assert activation > 0.0          # not active at the start (clean link)
        assert result.insertions >= 1
        assert result.report.reconstructed_percent >= result.report.received_percent

    def test_adaptive_beats_unprotected_baseline(self):
        walk = LinearWalk(start_distance_m=20.0, end_distance_m=42.0,
                          duration_s=8.0)
        adaptive = run_adaptive_walk_experiment(walk=walk, wlan_seed=5)
        baseline = run_adaptive_walk_experiment(walk=walk, adaptive=False,
                                                wlan_seed=5)
        assert baseline.insertions == 0
        assert (adaptive.report.reconstructed_percent
                > baseline.report.reconstructed_percent)

    def test_step_records_cover_the_walk(self):
        result = run_adaptive_walk_experiment(
            walk=LinearWalk(5.0, 30.0, 4.0), wlan_seed=2)
        assert len(result.steps) == 10  # 4 s / 0.4 s steps
        assert result.steps[0].distance_m == pytest.approx(5.0)
        assert result.steps[-1].distance_m <= 30.0
