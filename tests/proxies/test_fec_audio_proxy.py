"""Unit tests for the FEC audio proxy and the Figure 7 experiment driver."""

import pytest

from repro.media import AudioPacketizer, ToneSource
from repro.net import BernoulliLoss, FixedPatternLoss, NoLoss, WirelessLAN
from repro.proxies import (
    FecAudioProxy,
    FecAudioProxyConfig,
    WirelessAudioReceiver,
    run_fec_audio_experiment,
)


def audio_packets(duration_s=1.0):
    return AudioPacketizer(ToneSource(duration=duration_s)).packet_list()


class TestFecAudioProxy:
    def test_lossless_link_delivers_everything(self):
        packets = audio_packets(1.0)
        wlan = WirelessLAN()
        wlan.add_receiver("host", loss_model=NoLoss())
        proxy = FecAudioProxy(packets, wlan).start()
        assert proxy.wait_for_completion(timeout=30.0)
        proxy.shutdown()

        receiver = WirelessAudioReceiver("host")
        receiver.process(wlan.access_point.receiver("host").take())
        receiver.finish()
        report = receiver.delivery_report(len(packets))
        assert report.received_percent == pytest.approx(100.0)
        assert report.reconstructed_percent == pytest.approx(100.0)

    def test_fec_expands_traffic_by_n_over_k(self):
        packets = audio_packets(1.0)  # 50 packets
        wlan = WirelessLAN()
        wlan.add_receiver("host", loss_model=NoLoss())
        proxy = FecAudioProxy(packets, wlan,
                              FecAudioProxyConfig(k=4, n=6)).start()
        proxy.wait_for_completion(timeout=30.0)
        proxy.shutdown()
        # 50 payloads = 12 full groups (72 packets) + 2 uncoded tail packets.
        assert wlan.access_point.packets_sent == 12 * 6 + 2

    def test_without_fec_traffic_is_unexpanded(self):
        packets = audio_packets(1.0)
        wlan = WirelessLAN()
        wlan.add_receiver("host", loss_model=NoLoss())
        proxy = FecAudioProxy(packets, wlan,
                              FecAudioProxyConfig(fec_enabled=False)).start()
        proxy.wait_for_completion(timeout=30.0)
        proxy.shutdown()
        assert wlan.access_point.packets_sent == len(packets)

    def test_fec_recovers_single_losses_per_group(self):
        # 0.96 s = 48 packets = 12 complete FEC(6,4) groups, no uncoded tail,
        # so a strictly periodic one-in-six loss is always repairable.
        packets = audio_packets(0.96)
        wlan = WirelessLAN()
        # Lose exactly one packet in six, always recoverable with FEC(6,4).
        wlan.add_receiver("host", loss_model=FixedPatternLoss(
            [True, False, False, False, False, False]))
        proxy = FecAudioProxy(packets, wlan).start()
        proxy.wait_for_completion(timeout=30.0)
        proxy.shutdown()

        receiver = WirelessAudioReceiver("host")
        receiver.process(wlan.access_point.receiver("host").take())
        receiver.finish()
        report = receiver.delivery_report(len(packets))
        assert report.received_percent < 100.0
        assert report.reconstructed_percent == pytest.approx(100.0)

    def test_enable_and_disable_fec_on_live_stream(self):
        packets = audio_packets(4.0)
        wlan = WirelessLAN()
        wlan.add_receiver("host", loss_model=NoLoss())
        proxy = FecAudioProxy(packets, wlan,
                              FecAudioProxyConfig(fec_enabled=False))
        # Pace the source so the stream is still live while we reconfigure.
        proxy._source.pacing_s = 0.001
        proxy.start()
        assert not proxy.fec_active
        proxy.enable_fec()
        assert proxy.fec_active
        proxy.enable_fec()  # idempotent
        proxy.disable_fec()
        assert not proxy.fec_active
        proxy.disable_fec()  # idempotent
        proxy.enable_fec()
        assert proxy.wait_for_completion(timeout=60.0)
        proxy.shutdown()

        receiver = WirelessAudioReceiver("host")
        receiver.process(wlan.access_point.receiver("host").take())
        receiver.finish()
        report = receiver.delivery_report(len(packets))
        # Reconfiguration on a lossless link must not lose anything.
        assert report.reconstructed_percent == pytest.approx(100.0)


class TestRunFecAudioExperiment:
    def test_paper_configuration_shape(self):
        """The headline reproduction: raw ~98.5%, reconstructed ~100%."""
        result = run_fec_audio_experiment(duration_s=20.0, distance_m=25.0,
                                          receiver_count=3, seed=99)
        assert result.total_packets == 1000
        assert len(result.reports) == 3
        assert 97.0 <= result.average_received_percent() <= 99.5
        assert result.average_reconstructed_percent() >= 99.8
        assert result.average_reconstructed_percent() >= result.average_received_percent()

    def test_without_fec_reconstructed_equals_received(self):
        result = run_fec_audio_experiment(duration_s=5.0, distance_m=25.0,
                                          receiver_count=1, fec_enabled=False,
                                          seed=5)
        report = next(iter(result.reports.values()))
        assert report.reconstructed_percent == pytest.approx(report.received_percent)

    def test_custom_loss_model_factory(self):
        result = run_fec_audio_experiment(
            duration_s=5.0, receiver_count=2,
            loss_model_factory=lambda i: BernoulliLoss(0.05, seed=i), seed=1)
        assert result.average_received_percent() < 99.0
        assert result.average_reconstructed_percent() > result.average_received_percent()

    def test_airtime_overhead_of_fec(self):
        with_fec = run_fec_audio_experiment(duration_s=5.0, receiver_count=1,
                                            seed=3)
        without = run_fec_audio_experiment(duration_s=5.0, receiver_count=1,
                                           fec_enabled=False, seed=3)
        assert with_fec.bytes_on_air > without.bytes_on_air
        # Redundancy should cost roughly n/k = 1.5x the bytes (plus headers).
        ratio = with_fec.bytes_on_air / without.bytes_on_air
        assert 1.3 < ratio < 1.8

    def test_invalid_receiver_count(self):
        with pytest.raises(ValueError):
            run_fec_audio_experiment(duration_s=1.0, receiver_count=0)

    def test_windowed_report_matches_figure7_format(self):
        result = run_fec_audio_experiment(duration_s=10.0, distance_m=25.0,
                                          receiver_count=1, seed=7)
        report = next(iter(result.reports.values()))
        points = report.windowed(window_size=100)
        assert len(points) == 5
        for point in points:
            assert point.reconstructed_percent >= point.received_percent
