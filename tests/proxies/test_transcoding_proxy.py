"""Unit tests for the transcoding and video proxies."""


from repro.media import (
    AudioPacketizer,
    FRAME_B,
    FRAME_I,
    MediaPacket,
    ToneSource,
    VideoSource,
)
from repro.proxies import DeviceDescriptor, TranscodingProxy, VideoProxy, transcoder_chain_for
from repro.fec import FecPacket, FecPacketError


class TestDeviceDescriptors:
    def test_workstation_needs_no_transcoding(self):
        assert transcoder_chain_for(DeviceDescriptor.workstation()) == []

    def test_palmtop_needs_full_chain(self):
        chain = transcoder_chain_for(DeviceDescriptor.palmtop())
        types = [f.type_name for f in chain]
        assert "audio-mono" in types
        assert "audio-downsample" in types
        assert "video-bframe-drop" in types
        assert "video-frame-thinning" in types
        assert "zlib-compress" in types

    def test_laptop_only_compresses(self):
        chain = transcoder_chain_for(DeviceDescriptor.laptop())
        assert [f.type_name for f in chain] == ["zlib-compress"]


class TestTranscodingProxy:
    def test_palmtop_stream_is_smaller(self):
        packets = AudioPacketizer(ToneSource(duration=1.0)).packet_list()
        original_bytes = sum(len(p.payload) for p in packets)

        delivered = []
        proxy = TranscodingProxy(packets, DeviceDescriptor.palmtop(),
                                 delivered.append).start()
        assert proxy.wait_for_completion(timeout=30.0)
        proxy.shutdown()
        assert delivered
        assert sum(len(p) for p in delivered) < original_bytes

    def test_workstation_stream_is_identical(self):
        packets = AudioPacketizer(ToneSource(duration=0.5)).packet_list()
        delivered = []
        proxy = TranscodingProxy(packets, DeviceDescriptor.workstation(),
                                 delivered.append).start()
        assert proxy.wait_for_completion(timeout=30.0)
        proxy.shutdown()
        assert delivered == [p.pack() for p in packets]


class TestVideoProxy:
    def test_b_frame_dropping(self):
        video = VideoSource(duration=1.0)
        delivered = []
        proxy = VideoProxy(video, delivered.append)
        proxy.drop_b_frames()
        proxy.start()
        assert proxy.wait_for_completion(timeout=30.0)
        proxy.shutdown()
        markers = [MediaPacket.unpack(p).marker for p in delivered]
        assert FRAME_B not in markers
        assert FRAME_I in markers

    def test_fec_insertion_at_gop_boundary(self):
        """The paper's requirement: the FEC filter starts at a frame boundary.

        We insert while the stream is flowing and then verify that the first
        media packet the FEC encoder wrapped is an I frame (the start of a
        GOP), not a mid-GOP frame.
        """
        video = VideoSource(duration=3.0)  # 90 frames, 10 GOPs
        delivered = []
        proxy = VideoProxy(video, delivered.append, pacing_s=0.003)
        proxy.start()
        import time
        time.sleep(0.05)  # let some frames flow unprotected
        proxy.insert_fec_at_gop_boundary(k=3, n=4)
        assert proxy.wait_for_completion(timeout=60.0)
        proxy.shutdown()

        # Partition the delivered packets into plain media and FEC packets.
        first_fec_media = None
        for raw in delivered:
            try:
                fec = FecPacket.unpack(raw)
            except FecPacketError:
                continue
            if fec.is_data:
                from repro.fec import unpad_block
                media = MediaPacket.unpack(unpad_block(fec.payload))
                first_fec_media = media
                break
            if fec.is_uncoded:
                first_fec_media = MediaPacket.unpack(fec.payload)
                break
        assert first_fec_media is not None, "FEC never engaged"
        assert first_fec_media.marker == FRAME_I
        assert proxy.fec_filter is not None
