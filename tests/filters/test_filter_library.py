"""Unit tests for the concrete filter library.

These tests drive the filters through their packet/chunk transforms directly
(the chain-level behaviour is covered by the core and integration tests), so
each filter's data transformation can be checked precisely.
"""

import zlib

import pytest

from repro.fec import FecPacket
from repro.filters import (
    AudioDownsampleFilter,
    AudioMonoFilter,
    AudioRequantizeFilter,
    ByteCounterFilter,
    DelayFilter,
    DuplicateSuppressorFilter,
    FecDecoderFilter,
    FecEncoderFilter,
    PacketTapFilter,
    PassthroughFilter,
    RateLimiterFilter,
    ReorderingFilter,
    SequenceGapTapFilter,
    SequenceStamperFilter,
    UppercaseFilter,
    VideoBFrameDropFilter,
    VideoFrameThinningFilter,
    XorCipherFilter,
    ZlibCompressFilter,
    ZlibDecompressFilter,
)
from repro.media import (
    AudioFormat,
    FRAME_B,
    FRAME_I,
    MediaPacket,
    ToneSource,
    TYPE_AUDIO,
    VideoSource,
    packetize_pcm,
)


def audio_packets(duration=0.2):
    return packetize_pcm(ToneSource(duration=duration).pcm_bytes())


class TestSimpleFilters:
    def test_passthrough(self):
        assert PassthroughFilter().transform(b"abc") == b"abc"

    def test_uppercase(self):
        assert UppercaseFilter().transform(b"hello World") == b"HELLO WORLD"

    def test_delay_filter_validates(self):
        with pytest.raises(ValueError):
            DelayFilter(delay_s=-1)
        assert DelayFilter(delay_s=0).transform(b"x") == b"x"

    def test_byte_counter(self):
        counter = ByteCounterFilter()
        counter.transform(b"abc")
        counter.transform(b"de")
        assert counter.total_bytes == 5
        assert counter.total_chunks == 2


class TestFecFilters:
    def test_encoder_emits_groups(self):
        encoder = FecEncoderFilter(k=2, n=3)
        assert encoder.transform_packet(b"p0") == []
        group = encoder.transform_packet(b"p1")
        assert len(group) == 3
        parsed = [FecPacket.unpack(p) for p in group]
        assert [p.index for p in parsed] == [0, 1, 2]

    def test_encoder_flush_emits_uncoded_tail(self):
        encoder = FecEncoderFilter(k=4, n=6)
        encoder.transform_packet(b"only one")
        tail = encoder.finalize_packets()
        assert len(tail) == 1
        assert FecPacket.unpack(tail[0]).is_uncoded

    def test_encoder_decoder_round_trip(self):
        encoder = FecEncoderFilter(k=4, n=6)
        decoder = FecDecoderFilter()
        payloads = [f"payload-{i}".encode() for i in range(8)]
        encoded = []
        for payload in payloads:
            encoded.extend(encoder.transform_packet(payload))
        out = []
        for packet in encoded:
            out.extend(decoder.transform_packet(packet) or [])
        out.extend(decoder.finalize_packets() or [])
        assert out == payloads

    def test_decoder_recovers_losses(self):
        encoder = FecEncoderFilter(k=4, n=6)
        decoder = FecDecoderFilter()
        payloads = [f"pkt-{i}".encode() for i in range(4)]
        encoded = []
        for payload in payloads:
            encoded.extend(encoder.transform_packet(payload))
        # lose two of the six encoded packets
        survivors = [p for i, p in enumerate(encoded) if i not in (1, 4)]
        out = []
        for packet in survivors:
            out.extend(decoder.transform_packet(packet) or [])
        assert out == payloads
        assert decoder.decoder_stats.groups_repaired == 1

    def test_decoder_passthrough_of_non_fec_packets(self):
        decoder = FecDecoderFilter(passthrough_unknown=True)
        assert decoder.transform_packet(b"not fec at all") == [b"not fec at all"]
        assert decoder.unknown_packets == 1
        strict = FecDecoderFilter(passthrough_unknown=False)
        assert strict.transform_packet(b"not fec at all") == []

    def test_two_encoders_use_distinct_group_ids(self):
        first = FecEncoderFilter(k=1, n=1)
        second = FecEncoderFilter(k=1, n=1)
        id_a = FecPacket.unpack(first.transform_packet(b"x")[0]).group_id
        id_b = FecPacket.unpack(second.transform_packet(b"x")[0]).group_id
        assert id_a != id_b

    def test_describe_includes_fec_details(self):
        encoder = FecEncoderFilter(k=4, n=6)
        assert encoder.describe()["fec"]["k"] == 4
        decoder = FecDecoderFilter()
        assert "groups_decoded" in decoder.describe()["fec"]


class TestAudioTranscoders:
    def test_downsample_halves_payload(self):
        packet = audio_packets()[0]
        transcoded = AudioDownsampleFilter(factor=2).transform_media(packet)
        assert len(transcoded.payload) == len(packet.payload) // 2
        assert transcoded.sequence == packet.sequence

    def test_downsample_factor_one_is_identity(self):
        packet = audio_packets()[0]
        assert AudioDownsampleFilter(factor=1).transform_media(packet) is packet

    def test_downsample_validates_arguments(self):
        with pytest.raises(ValueError):
            AudioDownsampleFilter(factor=0)
        with pytest.raises(ValueError):
            AudioDownsampleFilter(channels=0)
        with pytest.raises(ValueError):
            AudioDownsampleFilter(sample_width=3)

    def test_mono_mix_halves_payload(self):
        packet = audio_packets()[0]
        mono = AudioMonoFilter().transform_media(packet)
        assert len(mono.payload) == len(packet.payload) // 2

    def test_requantize_halves_16bit_payload(self):
        fmt = AudioFormat(sample_rate=8000, channels=1, sample_width=2)
        pcm = ToneSource(duration=0.1, audio_format=fmt).pcm_bytes()
        packet = MediaPacket(sequence=0, timestamp_ms=0, payload=pcm,
                             media_type=TYPE_AUDIO)
        requantized = AudioRequantizeFilter().transform_media(packet)
        assert len(requantized.payload) == len(pcm) // 2

    def test_non_audio_packets_untouched(self):
        video_packet = VideoSource(duration=0.1).frame(0).to_packet()
        assert AudioDownsampleFilter().transform_media(video_packet) is video_packet

    def test_non_media_packets_pass_through_filter_api(self):
        downsampler = AudioDownsampleFilter()
        assert downsampler.transform_packet(b"opaque") == b"opaque"
        assert downsampler.non_media_packets == 1


class TestVideoTranscoders:
    def test_b_frames_dropped(self):
        video = VideoSource(duration=0.5)
        dropper = VideoBFrameDropFilter()
        kept = []
        for packet in video.packets():
            result = dropper.transform_media(packet)
            if result is not None:
                kept.append(result)
        assert all(p.marker != FRAME_B for p in kept)
        assert dropper.frames_dropped > 0
        assert any(p.marker == FRAME_I for p in kept)

    def test_frame_thinning_keeps_every_nth(self):
        video = VideoSource(duration=0.5)
        thinner = VideoFrameThinningFilter(keep_every=3)
        kept = [p for p in (thinner.transform_media(pkt) for pkt in video.packets())
                if p is not None]
        assert len(kept) == 5  # 15 frames / 3
        with pytest.raises(ValueError):
            VideoFrameThinningFilter(keep_every=0)

    def test_audio_untouched_by_video_filters(self):
        packet = audio_packets()[0]
        assert VideoBFrameDropFilter().transform_media(packet) is packet
        assert VideoFrameThinningFilter().transform_media(packet) is packet


class TestCompressionAndCipher:
    def test_zlib_round_trip(self):
        compressor = ZlibCompressFilter()
        decompressor = ZlibDecompressFilter()
        payload = b"collaborative web content " * 50
        compressed = compressor.transform_packet(payload)
        assert len(compressed) < len(payload)
        assert decompressor.transform_packet(compressed) == payload
        assert compressor.bytes_saved > 0

    def test_zlib_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            ZlibCompressFilter(level=10)

    def test_decompress_invalid_data(self):
        strict = ZlibDecompressFilter()
        with pytest.raises(zlib.error):
            strict.transform_packet(b"not compressed")
        lenient = ZlibDecompressFilter(passthrough_invalid=True)
        assert lenient.transform_packet(b"not compressed") == b"not compressed"
        assert lenient.invalid_packets == 1

    def test_xor_cipher_round_trips(self):
        cipher = XorCipherFilter(key=b"secret")
        payload = b"the quick brown fox"
        scrambled = cipher.transform_packet(payload)
        assert scrambled != payload
        assert cipher.transform_packet(scrambled) == payload

    def test_xor_cipher_empty_key_rejected(self):
        with pytest.raises(ValueError):
            XorCipherFilter(key=b"")


class TestTapsAndSequencing:
    def test_packet_tap_counts_and_calls_back(self):
        seen = []
        tap = PacketTapFilter(callback=seen.append)
        assert tap.transform_packet(b"one") == b"one"
        tap.transform_packet(b"two")
        assert tap.packets_seen == 2
        assert seen == [b"one", b"two"]

    def test_packet_tap_callback_errors_do_not_propagate(self):
        def explode(_packet):
            raise RuntimeError("observer bug")

        tap = PacketTapFilter(callback=explode)
        assert tap.transform_packet(b"x") == b"x"
        assert tap.stats.snapshot()["errors"] == 1

    def test_sequence_gap_tap_estimates_loss(self):
        tap = SequenceGapTapFilter(window=100)
        packets = audio_packets(duration=1.0)
        for packet in packets:
            if packet.sequence % 10 == 3:
                continue  # 10% loss
            tap.transform_packet(packet.pack())
        assert tap.recent_loss_rate() == pytest.approx(0.1, abs=0.03)

    def test_sequence_gap_tap_no_loss(self):
        tap = SequenceGapTapFilter()
        for packet in audio_packets(duration=0.2):
            tap.transform_packet(packet.pack())
        assert tap.recent_loss_rate() == 0.0

    def test_sequence_stamper_wraps_payloads(self):
        stamper = SequenceStamperFilter()
        first = MediaPacket.unpack(stamper.transform_packet(b"alpha"))
        second = MediaPacket.unpack(stamper.transform_packet(b"beta"))
        assert (first.sequence, second.sequence) == (0, 1)
        assert first.payload == b"alpha"

    def test_duplicate_suppressor(self):
        suppressor = DuplicateSuppressorFilter()
        packet = audio_packets()[0].pack()
        assert suppressor.transform_packet(packet) == packet
        assert suppressor.transform_packet(packet) is None
        assert suppressor.duplicates_dropped == 1

    def test_reordering_filter_restores_order(self):
        reorderer = ReorderingFilter(window=8)
        packets = [p.pack() for p in audio_packets(duration=0.2)]
        shuffled = [packets[1], packets[0], packets[3], packets[2]] + packets[4:]
        out = []
        for packet in shuffled:
            out.extend(reorderer.transform_packet(packet))
        out.extend(reorderer.finalize_packets())
        assert out == packets

    def test_reordering_filter_skips_after_window_fills(self):
        reorderer = ReorderingFilter(window=2)
        packets = [p.pack() for p in audio_packets(duration=0.2)]
        out = []
        for packet in packets[1:5]:  # packet 0 never arrives
            out.extend(reorderer.transform_packet(packet))
        assert reorderer.packets_skipped == 1
        assert out  # later packets were eventually released

    def test_rate_limiter_validates(self):
        with pytest.raises(ValueError):
            RateLimiterFilter(bytes_per_second=0)
        limiter = RateLimiterFilter(bytes_per_second=1e9)
        assert limiter.transform(b"x" * 100) == b"x" * 100
