"""Unit tests for the content cache and the browse-cache filter."""

import pytest

from repro.filters import BrowseCacheFilter, LruContentCache
from repro.pavilion import BrowserInterface


def content_packet(url, body, sender="leader"):
    return BrowserInterface(sender).content_message(url, "text/html", body).pack()


class TestLruContentCache:
    def test_put_get_round_trip(self):
        cache = LruContentCache(capacity_bytes=1000)
        cache.put("u1", b"body-1")
        assert cache.get("u1") == b"body-1"
        assert cache.contains("u1")
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = LruContentCache()
        assert cache.get("missing") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.0

    def test_lru_eviction_order(self):
        cache = LruContentCache(capacity_bytes=30)
        cache.put("a", b"x" * 10)
        cache.put("b", b"y" * 10)
        cache.put("c", b"z" * 10)
        cache.get("a")                      # refresh a: b becomes LRU
        cache.put("d", b"w" * 10)           # evicts b
        assert cache.contains("a")
        assert not cache.contains("b")
        assert cache.contains("c") and cache.contains("d")
        assert cache.stats.evictions == 1

    def test_size_accounting_and_replacement(self):
        cache = LruContentCache(capacity_bytes=100)
        cache.put("a", b"x" * 40)
        cache.put("a", b"y" * 10)           # replacement shrinks usage
        assert cache.size_bytes == 10
        assert len(cache) == 1

    def test_oversized_object_not_stored(self):
        cache = LruContentCache(capacity_bytes=10)
        cache.put("huge", b"x" * 100)
        assert not cache.contains("huge")
        assert cache.size_bytes == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruContentCache(capacity_bytes=0)

    def test_urls_in_recency_order(self):
        cache = LruContentCache()
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")
        assert cache.urls() == ["b", "a"]


class TestBrowseCacheFilter:
    def test_caches_content_messages_and_forwards_unchanged(self):
        cache_filter = BrowseCacheFilter()
        packet = content_packet("http://x/a", b"<html>a</html>")
        assert cache_filter.transform_packet(packet) == packet
        assert cache_filter.content_messages_seen == 1
        assert cache_filter.serve("http://x/a") == b"<html>a</html>"

    def test_url_announcements_not_cached(self):
        cache_filter = BrowseCacheFilter()
        announcement = BrowserInterface("leader").announce_url("http://x/a").pack()
        cache_filter.transform_packet(announcement)
        assert cache_filter.serve("http://x/a") is None

    def test_non_browse_packets_pass_through(self):
        cache_filter = BrowseCacheFilter()
        assert cache_filter.transform_packet(b"opaque bytes") == b"opaque bytes"
        assert cache_filter.non_browse_packets == 1

    def test_describe_reports_cache_state(self):
        cache_filter = BrowseCacheFilter()
        cache_filter.transform_packet(content_packet("http://x/a", b"abc"))
        info = cache_filter.describe()
        assert info["cache"]["entries"] == 1
        assert info["cache"]["bytes"] == 3

    def test_in_chain_caching_on_live_stream(self):
        """Run the filter inside a proxy chain: the cache fills as pages flow."""
        from repro.core import CollectorSink, ControlThread, IterableSource

        pages = {f"http://site/p{i}": f"<html>page {i}</html>".encode() * 5
                 for i in range(6)}
        packets = [content_packet(url, body) for url, body in pages.items()]
        cache_filter = BrowseCacheFilter(name="cache")
        source = IterableSource(list(packets), frame_output=True)
        sink = CollectorSink(expect_frames=True)
        control = ControlThread(source, sink, auto_start=False)
        control.add(cache_filter)
        control.start()
        assert control.wait_for_completion(timeout=30.0)
        control.shutdown()
        assert sink.items() == packets
        for url, body in pages.items():
            assert cache_filter.serve(url) == body

    def test_registered_in_default_registry(self):
        from repro.core import default_registry

        assert "browse-cache" in default_registry().types()
