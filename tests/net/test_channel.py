"""Unit tests for the packet loss models."""

import pytest

from repro.net import (
    BernoulliLoss,
    CALIBRATION_DISTANCE_M,
    CALIBRATION_LOSS,
    DistanceLoss,
    FixedPatternLoss,
    GilbertElliottLoss,
    NoLoss,
    loss_probability_at_distance,
)


def observed_loss_rate(model, packets=20000):
    losses = sum(1 for _ in range(packets) if model.packet_lost())
    return losses / packets


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        assert not any(model.packet_lost() for _ in range(1000))
        assert model.expected_loss_rate() == 0.0


class TestBernoulliLoss:
    def test_zero_probability_never_drops(self):
        assert observed_loss_rate(BernoulliLoss(0.0, seed=1)) == 0.0

    def test_one_probability_always_drops(self):
        assert observed_loss_rate(BernoulliLoss(1.0, seed=1), packets=100) == 1.0

    def test_observed_rate_close_to_probability(self):
        rate = observed_loss_rate(BernoulliLoss(0.05, seed=42))
        assert rate == pytest.approx(0.05, abs=0.01)

    def test_seeded_reproducibility(self):
        a = [BernoulliLoss(0.3, seed=9).packet_lost() for _ in range(100)]
        b = [BernoulliLoss(0.3, seed=9).packet_lost() for _ in range(100)]
        assert a == b

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)


class TestGilbertElliott:
    def test_observed_rate_matches_expected(self):
        model = GilbertElliottLoss(p_good_to_bad=0.01, p_bad_to_good=0.2,
                                   good_loss=0.001, bad_loss=0.3, seed=7)
        rate = observed_loss_rate(model, packets=50000)
        assert rate == pytest.approx(model.expected_loss_rate(), abs=0.01)

    def test_losses_are_bursty(self):
        """Consecutive-loss runs should be longer than under Bernoulli."""
        from repro.net import loss_run_lengths

        ge = GilbertElliottLoss(p_good_to_bad=0.02, p_bad_to_good=0.1,
                                good_loss=0.0, bad_loss=0.5, seed=3)
        bernoulli = BernoulliLoss(ge.expected_loss_rate(), seed=3)
        ge_trace = [ge.packet_lost() for _ in range(20000)]
        be_trace = [bernoulli.packet_lost() for _ in range(20000)]
        ge_runs = loss_run_lengths(ge_trace)
        be_runs = loss_run_lengths(be_trace)
        assert sum(ge_runs) / len(ge_runs) > sum(be_runs) / len(be_runs)

    def test_reset_returns_to_good_state(self):
        model = GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0001,
                                   good_loss=0.0, bad_loss=1.0, seed=1)
        model.packet_lost()
        assert model.in_bad_state
        model.reset()
        assert not model.in_bad_state

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=2.0)
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=0.5, p_bad_to_good=0.0)

    def test_expected_rate_with_unreachable_bad_state(self):
        model = GilbertElliottLoss(p_good_to_bad=0.0, p_bad_to_good=0.0,
                                   good_loss=0.01, bad_loss=0.9)
        assert model.expected_loss_rate() == pytest.approx(0.01)


class TestDistanceCurve:
    def test_calibration_point(self):
        assert loss_probability_at_distance(CALIBRATION_DISTANCE_M) == pytest.approx(
            CALIBRATION_LOSS)

    def test_monotonically_increasing(self):
        distances = [0, 5, 10, 15, 20, 25, 30, 35, 40, 45]
        probabilities = [loss_probability_at_distance(d) for d in distances]
        assert probabilities == sorted(probabilities)

    def test_near_access_point_is_nearly_lossless(self):
        assert loss_probability_at_distance(5.0) < 0.001

    def test_dramatic_increase_over_a_few_metres(self):
        """The paper: loss changes dramatically over several meters."""
        at_25 = loss_probability_at_distance(25.0)
        at_35 = loss_probability_at_distance(35.0)
        assert at_35 / at_25 > 3.0

    def test_clamped_at_maximum(self):
        assert loss_probability_at_distance(200.0) <= 0.95

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            loss_probability_at_distance(-1.0)


class TestDistanceLoss:
    def test_observed_rate_at_paper_distance(self):
        model = DistanceLoss(25.0, seed=11)
        rate = observed_loss_rate(model, packets=50000)
        assert rate == pytest.approx(CALIBRATION_LOSS, abs=0.005)

    def test_moving_changes_loss(self):
        model = DistanceLoss(5.0, seed=2)
        near = observed_loss_rate(model, packets=5000)
        model.set_distance(40.0)
        far = observed_loss_rate(model, packets=5000)
        assert far > near + 0.05

    def test_distance_property(self):
        model = DistanceLoss(12.5)
        assert model.distance_m == 12.5
        assert model.expected_loss_rate() == pytest.approx(
            loss_probability_at_distance(12.5))

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            DistanceLoss(-3.0)


class TestFixedPatternLoss:
    def test_pattern_followed_exactly(self):
        model = FixedPatternLoss([True, False, False])
        assert [model.packet_lost() for _ in range(6)] == [
            True, False, False, True, False, False]

    def test_non_repeating_pattern(self):
        model = FixedPatternLoss([True, True], repeat=False)
        assert [model.packet_lost() for _ in range(4)] == [True, True, False, False]

    def test_empty_pattern_never_drops(self):
        model = FixedPatternLoss([])
        assert not model.packet_lost()
        assert model.expected_loss_rate() == 0.0

    def test_expected_rate_and_reset(self):
        model = FixedPatternLoss([True, False, False, False])
        assert model.expected_loss_rate() == pytest.approx(0.25)
        model.packet_lost()
        model.reset()
        assert model.packet_lost() is True
