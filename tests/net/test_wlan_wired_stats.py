"""Unit tests for the WLAN/wired simulations, multicast, stats and traces."""

import pytest

from repro.net import (
    AccessPoint,
    DeliveryReport,
    FIG7_WINDOW_SIZE,
    FixedPatternLoss,
    LinearWalk,
    MulticastGroup,
    NoLoss,
    PacketTrace,
    WiredLAN,
    WirelessLAN,
    loss_run_lengths,
    windowed_percentages,
)


class TestAccessPoint:
    def test_add_and_lookup_receivers(self):
        ap = AccessPoint()
        ap.add_receiver("a", distance_m=10.0)
        ap.add_receiver("b", loss_model=NoLoss())
        assert {r.name for r in ap.receivers} == {"a", "b"}
        assert ap.receiver("a").distance_m == 10.0

    def test_duplicate_receiver_rejected(self):
        ap = AccessPoint()
        ap.add_receiver("a")
        with pytest.raises(ValueError):
            ap.add_receiver("a")

    def test_multicast_delivers_to_all_lossless_receivers(self):
        ap = AccessPoint()
        ap.add_receiver("a", loss_model=NoLoss())
        ap.add_receiver("b", loss_model=NoLoss())
        record = ap.multicast(b"hello")
        assert sorted(record.delivered_to) == ["a", "b"]
        assert ap.receiver("a").take() == [b"hello"]
        assert ap.receiver("b").pending() == 1

    def test_per_receiver_independent_loss(self):
        ap = AccessPoint()
        ap.add_receiver("lossy", loss_model=FixedPatternLoss([True]))
        ap.add_receiver("clean", loss_model=NoLoss())
        record = ap.multicast(b"pkt")
        assert record.lost_by == ["lossy"]
        assert record.delivered_to == ["clean"]

    def test_stats_track_losses(self):
        ap = AccessPoint()
        ap.add_receiver("r", loss_model=FixedPatternLoss([True, False]))
        ap.multicast_many([b"a", b"b", b"c", b"d"])
        stats = ap.receiver("r").stats
        assert stats.packets_sent_to == 4
        assert stats.packets_lost == 2
        assert stats.delivery_ratio == pytest.approx(0.5)
        assert stats.loss_ratio == pytest.approx(0.5)

    def test_airtime_accounting(self):
        ap = AccessPoint(bandwidth_bps=2_000_000, per_packet_overhead_s=0.0)
        ap.add_receiver("r", loss_model=NoLoss())
        ap.multicast(b"\x00" * 250)  # 2000 bits at 2 Mbps = 1 ms
        assert ap.busy_time_s == pytest.approx(0.001)
        assert ap.bytes_sent == 250
        assert ap.utilisation(0.01) == pytest.approx(0.1)

    def test_unicast(self):
        ap = AccessPoint()
        ap.add_receiver("only", loss_model=NoLoss())
        assert ap.unicast("only", b"direct")
        assert ap.receiver("only").take() == [b"direct"]

    def test_receiver_callback(self):
        got = []
        wlan = WirelessLAN()
        wlan.add_receiver("cb", loss_model=NoLoss(), on_receive=got.append)
        wlan.send(b"payload")
        assert got == [b"payload"]

    def test_move_receiver_requires_distance_model(self):
        ap = AccessPoint()
        receiver = ap.add_receiver("fixed", loss_model=NoLoss())
        with pytest.raises(TypeError):
            receiver.move_to(30.0)
        mobile = ap.add_receiver("mobile", distance_m=5.0)
        mobile.move_to(35.0)
        assert mobile.distance_m == 35.0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            AccessPoint(bandwidth_bps=0)


class TestLinearWalk:
    def test_distance_interpolation(self):
        walk = LinearWalk(start_distance_m=5.0, end_distance_m=45.0, duration_s=40.0)
        assert walk.distance_at(0) == 5.0
        assert walk.distance_at(20) == pytest.approx(25.0)
        assert walk.distance_at(40) == 45.0
        assert walk.distance_at(100) == 45.0
        assert walk.distance_at(-5) == 5.0

    def test_positions_sampling(self):
        walk = LinearWalk(0.0, 10.0, 10.0)
        samples = walk.positions(step_s=2.5)
        assert len(samples) == 5
        assert samples[0] == (0.0, 0.0)
        assert samples[-1][1] == 10.0

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            LinearWalk().positions(0)


class TestWiredLAN:
    def test_unicast_and_broadcast(self):
        lan = WiredLAN()
        a = lan.add_host("a")
        b = lan.add_host("b")
        lan.unicast("b", b"direct")
        assert b.take() == [b"direct"]
        lan.broadcast(b"all", exclude="a")
        assert a.inbox == []
        assert b.take() == [b"all"]

    def test_multicast_groups(self):
        lan = WiredLAN()
        lan.add_host("a")
        lan.add_host("b")
        lan.add_host("c")
        lan.join_group("viewers", "a")
        lan.join_group("viewers", "b")
        delivered = lan.multicast("viewers", b"frame", exclude="a")
        assert delivered == ["b"]
        assert lan.group_members("viewers") == ["a", "b"]
        lan.leave_group("viewers", "b")
        assert lan.group_members("viewers") == ["a"]

    def test_duplicate_host_rejected(self):
        lan = WiredLAN()
        lan.add_host("a")
        with pytest.raises(ValueError):
            lan.add_host("a")

    def test_join_unknown_host_rejected(self):
        lan = WiredLAN()
        with pytest.raises(KeyError):
            lan.join_group("g", "ghost")

    def test_bandwidth_accounting(self):
        lan = WiredLAN(bandwidth_bps=100_000_000)
        lan.add_host("a")
        lan.unicast("a", b"\x00" * 12500)  # 1 ms at 100 Mbps
        assert lan.busy_time_s == pytest.approx(0.001)

    def test_host_callback(self):
        got = []
        lan = WiredLAN()
        lan.add_host("cb", on_receive=got.append)
        lan.unicast("cb", b"x")
        assert got == [b"x"]


class TestMulticastGroup:
    def test_send_to_all_but_sender(self):
        group = MulticastGroup("g")
        seen = {"a": [], "b": []}
        group.subscribe("a", seen["a"].append)
        group.subscribe("b", seen["b"].append)
        assert group.send("msg", exclude="a") == 1
        assert seen == {"a": [], "b": ["msg"]}

    def test_faulty_subscriber_does_not_break_others(self):
        group = MulticastGroup()
        good = []

        def bad(_message):
            raise RuntimeError("subscriber crashed")

        group.subscribe("bad", bad)
        group.subscribe("good", good.append)
        assert group.send("x") == 1
        assert good == ["x"]
        assert group.stats()["bad"]["errors"] == 1

    def test_unsubscribe(self):
        group = MulticastGroup()
        got = []
        group.subscribe("a", got.append)
        group.unsubscribe("a")
        group.send("x")
        assert got == []
        assert group.member_count() == 0


class TestDeliveryReport:
    def test_percentages(self):
        report = DeliveryReport(total_packets=100,
                                received=set(range(90)),
                                reconstructed=set(range(98)))
        assert report.received_percent == pytest.approx(90.0)
        assert report.reconstructed_percent == pytest.approx(98.0)
        assert report.repaired_count == 8

    def test_out_of_range_sequences_ignored(self):
        report = DeliveryReport(total_packets=10, received={0, 5, 99},
                                reconstructed={0, 5, 99, 200})
        assert report.received_percent == pytest.approx(20.0)
        assert report.reconstructed_percent == pytest.approx(20.0)

    def test_windowed_points(self):
        report = DeliveryReport(total_packets=2 * FIG7_WINDOW_SIZE,
                                received=set(range(FIG7_WINDOW_SIZE)),
                                reconstructed=set(range(2 * FIG7_WINDOW_SIZE)))
        points = report.windowed()
        assert len(points) == 2
        assert points[0].received_percent == pytest.approx(100.0)
        assert points[1].received_percent == pytest.approx(0.0)
        assert all(p.reconstructed_percent == pytest.approx(100.0) for p in points)

    def test_windowed_invalid_size(self):
        with pytest.raises(ValueError):
            DeliveryReport(total_packets=10).windowed(window_size=0)

    def test_empty_report(self):
        report = DeliveryReport(total_packets=0)
        assert report.received_percent == 100.0
        assert report.summary()["reconstructed_percent"] == 100.0

    def test_windowed_percentages_helper(self):
        values = windowed_percentages([0, 1, 2, 3, 8], total_packets=10,
                                      window_size=5)
        assert values == [pytest.approx(80.0), pytest.approx(20.0)]

    def test_loss_run_lengths(self):
        assert loss_run_lengths([False, True, True, False, True]) == [2, 1]
        assert loss_run_lengths([]) == []
        assert loss_run_lengths([True, True]) == [2]


class TestPacketTrace:
    def test_record_and_query(self):
        trace = PacketTrace()
        trace.record("sent", 0, time_s=0.0)
        trace.record("delivered", 0, time_s=0.001, receiver="a", size_bytes=100)
        trace.record("lost", 1, time_s=0.002, receiver="a")
        assert trace.count("sent") == 1
        assert trace.count("lost", receiver="a") == 1
        assert trace.sequences("delivered") == [0]
        assert trace.receivers() == ["a"]
        assert trace.summary() == {"sent": 1, "delivered": 1, "lost": 1}
        assert len(trace) == 3

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            PacketTrace().record("teleported", 0)

    def test_csv_round_trip(self):
        trace = PacketTrace("t")
        trace.record("sent", 3, time_s=1.5, receiver="x", size_bytes=42)
        trace.record("repaired", 3, time_s=1.6, receiver="x")
        restored = PacketTrace.from_csv(trace.to_csv())
        assert restored.events == trace.events
