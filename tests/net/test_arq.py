"""Unit tests for the ARQ (retransmission) baselines."""

import pytest

from repro.net import BernoulliLoss, FixedPatternLoss, NoLoss
from repro.net.arq import (
    compare_fec_with_arq,
    fec_transmission_overhead,
    simulate_multicast_arq,
    simulate_unicast_arq,
)


class TestMulticastArq:
    def test_lossless_channel_needs_one_round(self):
        result = simulate_multicast_arq(100, [NoLoss(), NoLoss()])
        assert result.transmissions == 100
        assert result.retransmissions == 0
        assert result.mean_rounds == 1.0
        assert result.transmission_overhead == 1.0
        assert result.delivery_ratio == 1.0

    def test_deterministic_single_loss_costs_one_retransmission(self):
        # Receiver loses exactly the first copy of every packet.
        result = simulate_multicast_arq(
            10, [FixedPatternLoss([True, False])])
        assert result.retransmissions == 10
        assert result.transmission_overhead == pytest.approx(2.0)
        assert result.max_rounds == 2
        assert result.delivery_ratio == 1.0

    def test_overhead_grows_with_receiver_count(self):
        few = simulate_multicast_arq(
            2000, [BernoulliLoss(0.05, seed=i) for i in range(2)])
        many = simulate_multicast_arq(
            2000, [BernoulliLoss(0.05, seed=i) for i in range(10)])
        assert many.transmission_overhead > few.transmission_overhead

    def test_max_rounds_bounds_delivery(self):
        result = simulate_multicast_arq(
            50, [FixedPatternLoss([True])], max_rounds=3)
        assert result.undelivered == 50
        assert result.delivery_ratio == 0.0
        assert result.max_rounds == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_multicast_arq(10, [])
        with pytest.raises(ValueError):
            simulate_multicast_arq(-1, [NoLoss()])
        with pytest.raises(ValueError):
            simulate_multicast_arq(10, [NoLoss()], max_rounds=0)


class TestUnicastArq:
    def test_cost_scales_with_receivers_even_without_loss(self):
        result = simulate_unicast_arq(100, [NoLoss()] * 4)
        assert result.transmissions == 400
        assert result.transmission_overhead == pytest.approx(4.0)

    def test_losses_add_retransmissions(self):
        result = simulate_unicast_arq(100, [FixedPatternLoss([True, False])])
        assert result.retransmissions == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_unicast_arq(10, [])


class TestFecComparison:
    def test_fec_overhead_is_n_over_k(self):
        assert fec_transmission_overhead(4, 6) == pytest.approx(1.5)
        assert fec_transmission_overhead(1, 1) == 1.0
        with pytest.raises(ValueError):
            fec_transmission_overhead(0, 4)
        with pytest.raises(ValueError):
            fec_transmission_overhead(4, 2)

    def test_fec_beats_unicast_arq_and_needs_one_round(self):
        comparison = compare_fec_with_arq(
            packet_count=1000, receiver_count=5,
            loss_model_factory=lambda i: BernoulliLoss(0.05, seed=i))
        assert comparison["fec_overhead"] < comparison["unicast_arq_overhead"]
        assert comparison["fec_rounds"] == 1.0
        assert comparison["multicast_arq_mean_rounds"] > 1.0
        # Multicast ARQ is bandwidth-frugal at low loss, but pays in rounds
        # (latency) — the reason the paper uses FEC for interactive audio.
        assert comparison["multicast_arq_max_rounds"] >= 2.0
